"""Detailed silicon profiler (the Nsight Compute stand-in).

Collects, per kernel launch, exactly the twelve microarchitecture-agnostic
counters of the paper's Table 2 plus the measured kernel duration.
Detailed profiling is *expensive*: Nsight Compute replays every kernel
many times, so profiling cost scales with kernel count and runtime — the
very intractability (Figure 1) that motivates two-level profiling.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import ProfilingError
from repro.gpu.kernels import KernelLaunch
from repro.sim.memory import build_memory_profile
from repro.sim.silicon import SiliconExecutor

__all__ = ["FEATURE_NAMES", "DetailedProfile", "DetailedProfiler", "collect_counters"]

#: The Table-2 counters, in feature-vector order.
FEATURE_NAMES: tuple[str, ...] = (
    "coalesced_global_loads",  # l1tex__t_sectors_pipe_lsu_mem_global_op_ld.sum
    "coalesced_global_stores",  # l1tex__t_sectors_pipe_lsu_mem_global_op_st.sum
    "coalesced_local_loads",  # l1tex__t_sectors_pipe_lsu_mem_local_op_ld.sum
    "thread_global_loads",  # smsp__inst_executed_op_global_ld.sum
    "thread_global_stores",  # smsp__inst_executed_op_global_st.sum
    "thread_local_loads",  # smsp__inst_executed_op_local_ld.sum
    "thread_shared_loads",  # smsp__inst_executed_op_shared_ld.sum
    "thread_shared_stores",  # smsp__inst_executed_op_shared_st.sum
    "thread_global_atomics",  # smsp__sass_inst_executed_op_global_atom.sum
    "instructions",  # smsp__inst_executed.sum
    "divergence_efficiency",  # smsp__thread_inst_executed_per_inst_executed.ratio
    "thread_blocks",  # launch_grid_size
)


@dataclass(frozen=True)
class DetailedProfile:
    """One kernel's Table-2 counter readings plus its measured duration.

    ``cycles`` is not part of the clustering feature vector (it is
    architecture-*dependent*); PKS uses it to weigh groups and compute the
    projection error during the K sweep.
    """

    launch_id: int
    kernel_name: str
    counters: tuple[float, ...]
    cycles: float

    def __post_init__(self) -> None:
        if len(self.counters) != len(FEATURE_NAMES):
            raise ProfilingError(
                f"expected {len(FEATURE_NAMES)} counters, got {len(self.counters)}"
            )

    def feature_vector(self) -> np.ndarray:
        """The 12-dimensional arch-agnostic feature vector for PCA."""
        return np.asarray(self.counters, dtype=np.float64)

    def counter(self, name: str) -> float:
        """Look one counter up by its Table-2 row name."""
        try:
            return self.counters[FEATURE_NAMES.index(name)]
        except ValueError as exc:
            raise ProfilingError(f"unknown counter {name!r}") from exc


# Different GPU generations compile to different machine ISAs, so absolute
# instruction counts differ slightly between the profiled binary of each
# generation (the paper's stated caveat).  A few-percent deterministic skew
# per (kernel, generation) models that.
_ISA_SKEW = 0.03


def _isa_factor(signature: int, generation: str) -> float:
    # zlib.crc32 is a stable string hash (Python's hash() is salted per
    # process, which would break reproducibility).
    import zlib

    generation_hash = zlib.crc32(generation.encode("utf-8"))
    rng = np.random.default_rng((signature ^ generation_hash) % 2**63)
    return float(1.0 + _ISA_SKEW * rng.uniform(-1.0, 1.0))


def collect_counters(launch: KernelLaunch, generation: str = "volta") -> tuple[float, ...]:
    """Derive the Table-2 counters of one launch from its kernel spec."""
    spec = launch.spec
    threads = launch.total_threads
    warps = threads / 32.0
    efficiency = spec.divergence_efficiency
    isa = _isa_factor(spec.signature(), generation)

    def warp_insts(per_thread: float) -> float:
        """Warp-level executed-instruction count for one opcode class."""
        return warps * per_thread / efficiency * isa

    global_load_accesses = warp_insts(spec.mix.global_loads)
    global_store_accesses = warp_insts(spec.mix.global_stores)
    local_load_accesses = warp_insts(spec.mix.local_loads)

    return (
        global_load_accesses * spec.sectors_per_global_access,
        global_store_accesses * spec.sectors_per_global_access,
        local_load_accesses,  # local memory coalesces perfectly
        global_load_accesses,
        global_store_accesses,
        local_load_accesses,
        warp_insts(spec.mix.shared_loads),
        warp_insts(spec.mix.shared_stores),
        warp_insts(spec.mix.global_atomics),
        warps * spec.mix.per_thread_total / efficiency * isa,
        32.0 * efficiency,
        float(launch.grid_blocks),
    )


class DetailedProfiler:
    """Profiles launches in "silicon", charging Nsight-Compute-like cost.

    Parameters
    ----------
    silicon:
        The silicon executor providing ground-truth kernel durations.
    replay_factor:
        How many times each kernel effectively re-executes under the
        profiler (Nsight Compute replays the kernel once per counter
        group).
    per_kernel_overhead_s:
        Fixed profiler cost per kernel (attach, flush, serialize).
    """

    def __init__(
        self,
        silicon: SiliconExecutor,
        *,
        replay_factor: float = 40.0,
        per_kernel_overhead_s: float = 0.8,
    ) -> None:
        self.silicon = silicon
        self.replay_factor = replay_factor
        self.per_kernel_overhead_s = per_kernel_overhead_s

    def profile(
        self,
        launches: Iterable[KernelLaunch],
        *,
        limit: int | None = None,
    ) -> list[DetailedProfile]:
        """Collect detailed profiles for the first ``limit`` launches."""
        generation = self.silicon.gpu.generation
        profiles: list[DetailedProfile] = []
        for index, launch in enumerate(launches):
            if limit is not None and index >= limit:
                break
            profiles.append(
                DetailedProfile(
                    launch_id=launch.launch_id,
                    kernel_name=launch.spec.name,
                    counters=collect_counters(launch, generation),
                    cycles=self.silicon.kernel_cycles(launch),
                )
            )
        return profiles

    def profiling_seconds(self, launches: Sequence[KernelLaunch]) -> float:
        """Wall-clock cost of detailed-profiling all given launches."""
        gpu = self.silicon.gpu
        total = 0.0
        for launch in launches:
            kernel_seconds = gpu.cycles_to_seconds(self.silicon.kernel_cycles(launch))
            total += kernel_seconds * self.replay_factor + self.per_kernel_overhead_s
        return total

    def dram_bytes(self, launch: KernelLaunch) -> float:
        """Ground-truth DRAM traffic, as the profiler would report it."""
        profile = build_memory_profile(launch.spec, self.silicon.gpu)
        return profile.dram_bytes_per_block * launch.grid_blocks
