"""Lightweight silicon profiler (the Nsight Systems + PyProf stand-in).

For workloads where detailed profiling is intractable, PKA profiles the
bulk of the kernels with a low-overhead tracer that records only the
kernel name and launch geometry; for PyTorch-based MLPerf workloads the
trace is augmented with PyProf-style NVTX annotations (tensor dimensions
and the owning network layer).  These records are all the two-level
classifier gets to see.
"""

from __future__ import annotations

import zlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.gpu.kernels import KernelLaunch
from repro.sim.silicon import SiliconExecutor

__all__ = [
    "LIGHT_FEATURE_DIM",
    "LightweightProfile",
    "LightweightProfiler",
    "light_feature_matrix",
]

# Feature layout: name-hash buckets + log grid + log block + tensor volume
# + layer-tag bucket.
_NAME_BUCKETS = 12
LIGHT_FEATURE_DIM = _NAME_BUCKETS + 4


@dataclass(frozen=True)
class LightweightProfile:
    """One kernel's lightweight trace record.

    Attributes
    ----------
    launch_id / kernel_name / grid_blocks / threads_per_block:
        What Nsight Systems reports for every launch.
    tensor_volume:
        Product of the NVTX-annotated tensor dimensions (0 when the
        workload is not PyProf-instrumented).
    layer_tag:
        The annotated network-layer name ("" when unavailable).
    """

    launch_id: int
    kernel_name: str
    grid_blocks: int
    threads_per_block: int
    tensor_volume: float = 0.0
    layer_tag: str = ""

    def feature_vector(self) -> np.ndarray:
        """Numeric features for the two-level group classifier.

        The kernel name is folded into a bag of hash buckets (a stable
        stand-in for learned name embeddings); geometry and tensor volume
        are log-compressed.
        """
        vector = np.zeros(LIGHT_FEATURE_DIM)
        name_hash = zlib.crc32(self.kernel_name.encode("utf-8"))
        # Two hash probes soften bucket collisions between names.
        vector[name_hash % _NAME_BUCKETS] += 1.0
        vector[(name_hash // _NAME_BUCKETS) % _NAME_BUCKETS] += 0.5
        vector[_NAME_BUCKETS] = np.log1p(self.grid_blocks)
        vector[_NAME_BUCKETS + 1] = np.log1p(self.threads_per_block)
        vector[_NAME_BUCKETS + 2] = np.log1p(self.tensor_volume)
        layer_hash = zlib.crc32(self.layer_tag.encode("utf-8")) if self.layer_tag else 0
        vector[_NAME_BUCKETS + 3] = (layer_hash % 97) / 97.0
        return vector


def light_feature_matrix(profiles: Sequence[LightweightProfile]) -> np.ndarray:
    """Stack lightweight feature vectors into a matrix."""
    if not profiles:
        return np.zeros((0, LIGHT_FEATURE_DIM))
    return np.stack([profile.feature_vector() for profile in profiles])


class LightweightProfiler:
    """Traces launches with Nsight-Systems-like (negligible) overhead.

    Parameters
    ----------
    silicon:
        Used only for cost accounting (tracing runs the app once).
    runtime_dilation:
        Multiplier on application runtime while tracing (~10% overhead).
    per_kernel_overhead_s:
        Fixed per-launch event cost.
    """

    def __init__(
        self,
        silicon: SiliconExecutor,
        *,
        runtime_dilation: float = 1.1,
        per_kernel_overhead_s: float = 20e-6,
    ) -> None:
        self.silicon = silicon
        self.runtime_dilation = runtime_dilation
        self.per_kernel_overhead_s = per_kernel_overhead_s

    def profile(self, launches: Iterable[KernelLaunch]) -> list[LightweightProfile]:
        """Trace every launch (lightweight profiling is never truncated)."""
        records = []
        for launch in launches:
            tensor_volume = float(launch.nvtx.get("tensor_volume", 0.0))
            records.append(
                LightweightProfile(
                    launch_id=launch.launch_id,
                    kernel_name=launch.spec.name,
                    grid_blocks=launch.grid_blocks,
                    threads_per_block=launch.spec.threads_per_block,
                    tensor_volume=tensor_volume,
                    layer_tag=launch.nvtx.get("layer", ""),
                )
            )
        return records

    def profiling_seconds(self, launches: Sequence[KernelLaunch]) -> float:
        """Wall-clock cost of tracing all given launches."""
        gpu = self.silicon.gpu
        app_seconds = sum(
            gpu.cycles_to_seconds(self.silicon.kernel_cycles(launch))
            for launch in launches
        )
        return app_seconds * self.runtime_dilation + len(launches) * (
            self.per_kernel_overhead_s
        )
