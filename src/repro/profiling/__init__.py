"""Silicon profiler models: detailed (Nsight Compute), lightweight
(Nsight Systems + PyProf) and the profiling-time cost landscape."""

from repro.profiling.cost import (
    SECONDS_PER_WEEK,
    TimeLandscape,
    compute_time_landscape,
)
from repro.profiling.detailed import (
    FEATURE_NAMES,
    DetailedProfile,
    DetailedProfiler,
    collect_counters,
)
from repro.profiling.lightweight import (
    LIGHT_FEATURE_DIM,
    LightweightProfile,
    LightweightProfiler,
    light_feature_matrix,
)

__all__ = [
    "DetailedProfile",
    "DetailedProfiler",
    "FEATURE_NAMES",
    "LIGHT_FEATURE_DIM",
    "LightweightProfile",
    "LightweightProfiler",
    "SECONDS_PER_WEEK",
    "TimeLandscape",
    "collect_counters",
    "compute_time_landscape",
    "light_feature_matrix",
]
