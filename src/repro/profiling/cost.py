"""Profiling- and simulation-time projections (the Figure-1 landscape).

Figure 1 of the paper plots, per workload, three wall-clock magnitudes:
raw silicon execution (microseconds to minutes), detailed in-silicon
profiling of 12 statistics (minutes to months), and projected cycle-level
simulation (hours to centuries).  This module computes all three from a
workload's launch list so the benchmark harness can regenerate the figure.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.gpu.kernels import KernelLaunch
from repro.profiling.detailed import DetailedProfiler
from repro.profiling.lightweight import LightweightProfiler
from repro.sim.perfmodel import KERNEL_LAUNCH_OVERHEAD
from repro.sim.silicon import SiliconExecutor

__all__ = ["TimeLandscape", "compute_time_landscape", "SECONDS_PER_WEEK"]

SECONDS_PER_WEEK = 7 * 24 * 3600.0
SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class TimeLandscape:
    """Projected wall-clock costs for one workload on one GPU.

    All values in seconds; ``scale`` has already been applied, so these
    are the magnitudes of the *unscaled* (paper-sized) workload.
    """

    workload: str
    silicon_seconds: float
    detailed_profiling_seconds: float
    lightweight_profiling_seconds: float
    full_simulation_seconds: float

    @property
    def silicon_hours(self) -> float:
        return self.silicon_seconds / 3600.0

    @property
    def profiling_hours(self) -> float:
        return self.detailed_profiling_seconds / 3600.0

    @property
    def simulation_hours(self) -> float:
        return self.full_simulation_seconds / 3600.0

    @property
    def simulation_years(self) -> float:
        return self.full_simulation_seconds / SECONDS_PER_YEAR

    @property
    def detailed_profiling_tractable(self) -> bool:
        """The paper's rule: detailed profiling over a week is intractable."""
        return self.detailed_profiling_seconds <= SECONDS_PER_WEEK


def compute_time_landscape(
    workload_name: str,
    launches: Sequence[KernelLaunch],
    silicon: SiliconExecutor,
    *,
    scale: float = 1.0,
) -> TimeLandscape:
    """Project silicon / profiling / simulation times for one workload.

    ``scale`` multiplies every per-launch cost, undoing the launch-count
    downscaling the synthetic MLPerf generators apply (see DESIGN.md).
    """
    gpu = silicon.gpu
    detailed = DetailedProfiler(silicon)
    lightweight = LightweightProfiler(silicon)

    total_cycles = sum(silicon.kernel_cycles(launch) for launch in launches)
    total_cycles += KERNEL_LAUNCH_OVERHEAD * len(launches)

    return TimeLandscape(
        workload=workload_name,
        silicon_seconds=gpu.cycles_to_seconds(total_cycles) * scale,
        detailed_profiling_seconds=detailed.profiling_seconds(launches) * scale,
        lightweight_profiling_seconds=lightweight.profiling_seconds(launches) * scale,
        full_simulation_seconds=gpu.cycles_to_sim_seconds(total_cycles) * scale,
    )
