"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotFittedError(ReproError):
    """An estimator was used before its ``fit`` method was called."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget."""


class ConfigurationError(ReproError):
    """A configuration object holds an invalid combination of values."""


class WorkloadError(ReproError):
    """A workload specification is malformed or references unknown data."""


class InputValidationError(ReproError, ValueError):
    """Input rejected at an ingestion boundary under strict validation.

    Carries the structured :class:`~repro.core.validation.ValidationIssue`
    diagnostics that triggered the rejection, so callers (and the sweep
    harness) can report *which* field of *which* record was bad instead of
    a bare message.  Also a :class:`ValueError` so pre-existing callers
    that guarded ingestion with ``except ValueError`` keep working.
    """

    def __init__(self, message: str, issues: tuple = ()) -> None:
        super().__init__(message)
        self.issues = tuple(issues)


class NonFiniteInputError(InputValidationError):
    """A numeric array handed to an estimator contains NaN or infinity.

    Raised by the mlkit estimators (kmeans, minibatch-kmeans, hierarchical,
    PCA, scaler) instead of letting non-finite values propagate through
    distance computations and produce garbage clusters.
    """


class SimulationError(ReproError):
    """The simulator was driven into an invalid state."""


class ProfilingError(ReproError):
    """A profiler was asked for data it cannot provide."""


class TaskFailureError(ReproError):
    """A unit of backend work failed in a way the runtime classified.

    Carries the failing task's identity so a sweep-level caller can
    quarantine exactly the right cell.  Subclasses distinguish *how*
    the task failed (timeout, dead worker, exhausted retries); the
    original cause, when one exists, rides along as ``__cause__``.

    Only ``message`` participates in pickling (``self.args``), so these
    exceptions survive the trip back from a worker process; the task
    identity attributes are parent-side annotations.
    """

    def __init__(
        self,
        message: str,
        *,
        task_index: int | None = None,
        task_label: str | None = None,
        attempts: int = 1,
    ) -> None:
        super().__init__(message)
        self.task_index = task_index
        self.task_label = task_label
        self.attempts = attempts


class TaskTimeoutError(TaskFailureError):
    """A task exceeded its :class:`~repro.sim.parallel.FaultPolicy` timeout."""


class WorkerCrashError(TaskFailureError):
    """A worker process died (segfault, ``os._exit``, OOM kill) mid-task."""


class RetryExhaustedError(TaskFailureError):
    """A task kept failing after every retry its policy allowed."""


class FaultInjectedError(ReproError):
    """An exception deliberately raised by the fault-injection harness."""


class ServiceError(ReproError):
    """Base class for errors raised by the evaluation service runtime.

    Everything the serving subsystem (:mod:`repro.service`) raises derives
    from this class, so embedding callers can fence off service faults
    from library faults with one ``except`` clause.  Each subclass maps
    onto one HTTP status the server returns, keeping the in-process and
    over-the-wire taxonomies identical.

    ``retry_after`` (seconds, or ``None``) is the server's advice on when
    a retry might succeed; the HTTP layer surfaces it as a ``Retry-After``
    header on 429/503 responses and the client parses it back onto the
    typed exception, so backoff advice survives the wire.
    """

    retry_after: float | None = None


class InvalidJobRequestError(ServiceError, ValueError):
    """A job submission is malformed (unknown workload/method/GPU, bad
    field types).  Maps to HTTP 400."""


class QueueFullError(ServiceError):
    """The job queue is at its bounded depth; the submission was refused.

    This is the service's backpressure signal (HTTP 429): the client
    should back off and retry rather than the server buffering without
    bound.  ``depth``/``max_depth`` describe the queue at refusal time.
    """

    def __init__(
        self,
        message: str,
        *,
        depth: int = 0,
        max_depth: int = 0,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.depth = depth
        self.max_depth = max_depth
        self.retry_after = retry_after


class ServiceDrainingError(ServiceError):
    """The service is draining for shutdown and accepts no new jobs.

    Maps to HTTP 503 — the same signal ``GET /readyz`` gives a load
    balancer, so clients and infrastructure see one consistent story.
    """


class DeadlineUnattainableError(ServiceError):
    """The job's predicted queue wait exceeds its admission deadline.

    Deadline-aware admission control (HTTP 429): the scheduler estimates
    how long a new cold job would wait behind the current backlog from
    the observed drain rate; when that estimate exceeds the client's
    ``deadline_s`` (or the server's default) the job is shed *now*
    instead of being accepted into a queue it cannot clear in time.
    ``retry_after`` is derived from the same estimate — roughly how long
    until the backlog has drained enough for the deadline to fit —
    rather than a static constant.  ``predicted_wait``/``deadline``
    carry the two sides of the refusal for diagnostics.
    """

    def __init__(
        self,
        message: str,
        *,
        predicted_wait: float | None = None,
        deadline: float | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.predicted_wait = predicted_wait
        self.deadline = deadline
        self.retry_after = retry_after


class WorkersUnavailableError(ServiceError):
    """Every fleet worker is down, so cold jobs cannot be computed.

    The circuit-breaker signal (HTTP 503): while the supervisor respawns
    workers the service degrades to warm-cache-only mode — submissions
    whose result is already in the run cache still complete, anything
    needing compute is shed with this error instead of queueing behind a
    dead fleet.  ``retry_after`` carries the supervisor's next-respawn
    estimate.
    """

    def __init__(self, message: str, *, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class JobNotFoundError(ServiceError, KeyError):
    """No job with the requested id exists on this server (HTTP 404)."""

    def __str__(self) -> str:  # KeyError quotes its args; keep the message
        return self.args[0] if self.args else ""


class JobNotFinishedError(ServiceError):
    """A result was requested for a job that has not reached a terminal
    state yet (HTTP 409); poll ``GET /v1/jobs/<id>`` until it does."""
