"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NotFittedError(ReproError):
    """An estimator was used before its ``fit`` method was called."""


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget."""


class ConfigurationError(ReproError):
    """A configuration object holds an invalid combination of values."""


class WorkloadError(ReproError):
    """A workload specification is malformed or references unknown data."""


class SimulationError(ReproError):
    """The simulator was driven into an invalid state."""


class ProfilingError(ReproError):
    """A profiler was asked for data it cannot provide."""
