"""Headline-metric collection for golden-number regression testing.

Calibration drift is the silent failure mode of a reproduction: a tweak
to a workload generator or the performance model can leave every unit
test green while the Figure-7/8 aggregates wander away from the paper.
``collect_headline_metrics`` gathers the numbers EXPERIMENTS.md reports
into one flat dict; ``tests/analysis/test_goldens.py`` compares them
against the checked-in ``goldens.json`` with explicit tolerances.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.figures import (
    figure7_speedups,
    figure9_volta_over_turing,
    figure10_half_sms,
)
from repro.analysis.harness import EvaluationHarness
from repro.analysis.metrics import geomean, mean
from repro.analysis.tables import table4_rows

__all__ = ["collect_headline_metrics", "load_goldens", "GOLDENS_PATH"]

GOLDENS_PATH = Path(__file__).resolve().parents[3] / "goldens.json"


def collect_headline_metrics(harness: EvaluationHarness) -> dict[str, float]:
    """Every aggregate EXPERIMENTS.md quotes, as one flat dict."""
    metrics: dict[str, float] = {}

    aggregate = figure7_speedups(harness)
    metrics["fig7.pka_speedup_geomean"] = aggregate.pka_speedup_geomean
    metrics["fig7.tbpoint_speedup_geomean"] = aggregate.tbpoint_speedup_geomean
    metrics["fig7.first1b_speedup_geomean"] = aggregate.first1b_speedup_geomean
    metrics["fig8.full_mean_error"] = aggregate.mean_error("full")
    metrics["fig8.pka_mean_error"] = aggregate.mean_error("pka")
    metrics["fig8.tbpoint_mean_error"] = aggregate.mean_error("tbpoint")
    metrics["fig8.first1b_mean_error"] = aggregate.mean_error("first1b")

    fig9 = figure9_volta_over_turing(harness)
    for method, value in fig9.geomeans.items():
        metrics[f"fig9.{method}_geomean"] = value

    fig10 = figure10_half_sms(harness)
    for method, value in fig10.geomeans.items():
        metrics[f"fig10.{method}_geomean"] = value
    for method, value in fig10.mae_wrt_silicon.items():
        metrics[f"fig10.{method}_mae"] = value
    metrics["fig10.mlperf_pka_only_mae"] = fig10.pka_only_mae

    rows = table4_rows(harness)
    by_suite: dict[str, list] = {}
    for row in rows:
        by_suite.setdefault(row.suite, []).append(row)
    for suite, suite_rows in by_suite.items():
        errors = [
            row.silicon_error["volta"]
            for row in suite_rows
            if row.silicon_error["volta"] is not None
        ]
        speedups = [
            row.silicon_speedup["volta"]
            for row in suite_rows
            if row.silicon_speedup["volta"] is not None
        ]
        metrics[f"table4.{suite}.silicon_error_mean"] = mean(errors)
        metrics[f"table4.{suite}.silicon_speedup_geomean"] = geomean(speedups)

    return metrics


def load_goldens(path: Path | None = None) -> dict[str, float]:
    """Read the checked-in golden values."""
    path = path if path is not None else GOLDENS_PATH
    return json.loads(path.read_text(encoding="utf-8"))
