"""Cross-workload semantic cache: similarity transfer above the digest cache.

The content-addressed :class:`~repro.analysis.persistence.RunCache`
answers only *bit-identical* resubmissions: change one instruction-mix
field by a percent and the launch digest — and therefore the cell digest
— changes, so a behaviourally near-identical application pays for a full
simulation again.  Real serving traffic is full of such near duplicates
(recompiled binaries, re-traced runs, tuned variants of one model), and
the paper's own premise — kernels with similar PKS feature vectors have
similar performance — says most of that work is redundant.

This module is the layer that recovers it.  Every *computed* run is
summarized into the **similarity index**: its launch stream is grouped by
kernel signature (clustered down with the mlkit k-means used by PKS when
an app has pathologically many distinct kernels), and each group is
stored as a raw Table-2 counter centroid plus its warp-instruction mass,
alongside the donor app's realized cycles-per-warp-instruction and
DRAM-bytes-per-warp-instruction rates.  On a digest miss the submission's
kernels are projected the same way and matched against the index:

* **coverage** — every query group must lie within
  ``transfer_threshold`` of some indexed group, where distance is the
  mean absolute difference of log-compressed counters (≈ mean relative
  counter deviation, so the threshold is interpretable and stable as the
  index grows);
* **bound** — the modeled transfer error
  ``floor + safety * Σ share_g * lipschitz * dist_g`` must stay within
  ``max_error_bound``.

When both hold, the query is answered by **transfer**: each group's
cycles are priced at its nearest donor's rate times the query's own warp
instructions (per-launch overhead added back), and the answer carries the
modeled bound so callers can judge it.  Otherwise the lookup
**escalates** and the DES runs as before.  Transfer answers are memoized
in memory only and never written back to the digest cache — the exact
cache stays exact.

Partitions are keyed by ``method @ gpu`` inside a per-context state
document, so a transfer can only ever draw on donors simulated under the
same method, GPU config and harness context fingerprint.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.features import FeaturePipeline
from repro.errors import ReproError
from repro.gpu.architectures import GPUConfig
from repro.gpu.kernels import KernelLaunch
from repro.mlkit import KMeans, MiniBatchKMeans
from repro.obs import obs_count
from repro.profiling.detailed import FEATURE_NAMES, collect_counters
from repro.sim.perfmodel import KERNEL_LAUNCH_OVERHEAD
from repro.sim.stats import AppRunResult

__all__ = [
    "SEMCACHE_STATE_VERSION",
    "TRANSFERABLE_METHODS",
    "SemanticCache",
    "SemanticCacheConfig",
    "TransferResult",
    "resolve_semcache_config",
]

#: Bump when the state document layout changes; mismatched states are
#: discarded (the index is a derived structure — rebuilding it only
#: costs warm-up, never correctness).
SEMCACHE_STATE_VERSION = 1

#: Methods whose results scale with the application's instruction stream
#: and may therefore donate to / receive from the index.  Selection
#: cells are not runs, and first_1b's budget-truncation semantics break
#: the rate model.
TRANSFERABLE_METHODS = (
    "silicon",
    "pks_silicon",
    "full_sim",
    "pks_sim",
    "pka_sim",
    "pka_sim_faithful",
    "tbpoint_sim",
)


@dataclass(frozen=True)
class TransferResult(AppRunResult):
    """An :class:`AppRunResult` answered by similarity transfer.

    ``simulated_cycles`` is zero — no simulator ran.
    ``transfer_error_bound`` is the modeled *relative* error bound on
    ``total_cycles`` advertised to the caller; ``transferred_from``
    names the donor workloads whose rates priced the answer.
    """

    transfer_error_bound: float = 0.0
    transferred_from: tuple[str, ...] = ()


@dataclass(frozen=True)
class SemanticCacheConfig:
    """Tuning knobs of the similarity-transfer layer.

    ``transfer_threshold`` is the coverage radius in mean-absolute
    log-counter distance — roughly the mean relative counter deviation a
    query kernel may have from its nearest indexed kernel (0.25 ≈ "every
    counter within ~30%" on average).  ``error_floor`` absorbs the
    irreducible per-kernel idiosyncrasy of the simulator's modeling
    error; ``lipschitz`` converts feature distance to predicted-cycle
    error; ``safety_factor`` widens the advertised bound over the model.
    ``max_error_bound`` escalates answers whose bound is too loose to be
    useful.  ``max_groups`` caps per-app summarization (k-means kicks in
    above it); ``max_apps_per_partition`` bounds index growth FIFO-style.
    """

    transfer_threshold: float = 0.25
    max_error_bound: float = 0.35
    error_floor: float = 0.15
    lipschitz: float = 1.0
    safety_factor: float = 2.0
    max_groups: int = 12
    max_apps_per_partition: int = 64
    methods: tuple[str, ...] = TRANSFERABLE_METHODS

    def __post_init__(self) -> None:
        if self.transfer_threshold <= 0:
            raise ReproError("transfer_threshold must be > 0")
        if self.max_error_bound <= 0:
            raise ReproError("max_error_bound must be > 0")
        if self.error_floor < 0 or self.lipschitz < 0:
            raise ReproError("error_floor and lipschitz must be >= 0")
        if self.safety_factor < 1.0:
            raise ReproError("safety_factor must be >= 1")
        if self.max_groups < 1:
            raise ReproError("max_groups must be >= 1")
        if self.max_apps_per_partition < 1:
            raise ReproError("max_apps_per_partition must be >= 1")


@dataclass(frozen=True)
class _GroupRow:
    """One indexed (or query) kernel group: counters + instruction mass."""

    counters: tuple[float, ...]
    warp_instructions: float
    launches: int

    @property
    def log_counters(self) -> np.ndarray:
        return np.log1p(np.asarray(self.counters, dtype=np.float64))


@dataclass
class _AppEntry:
    """One donor application inside a partition."""

    workload: str
    digest: str
    cycles_rate: float  # cycles per warp instruction, overhead excluded
    dram_rate: float  # DRAM bytes per warp instruction
    total_warp_instructions: float
    total_launches: int
    rows: list[_GroupRow] = field(default_factory=list)


def _group_launches(
    launches: list[KernelLaunch], generation: str, max_groups: int
) -> list[_GroupRow]:
    """Summarize a launch stream into at most ``max_groups`` rows.

    Launches are grouped by spec signature (the first launch of a
    signature donates the representative counter vector — symmetric
    between donor and query because near-duplicate derivation preserves
    stream order).  Streams with more distinct kernels than
    ``max_groups`` are clustered down with the same feature pipeline +
    k-means machinery PKS uses, merging counter centroids
    instruction-weighted.
    """
    order: list[int] = []
    reps: dict[int, tuple[float, ...]] = {}
    mass: dict[int, float] = {}
    count: dict[int, int] = {}
    for launch in launches:
        signature = launch.spec.signature()
        if signature not in reps:
            order.append(signature)
            reps[signature] = collect_counters(launch, generation)
            mass[signature] = 0.0
            count[signature] = 0
        mass[signature] += launch.warp_instructions
        count[signature] += 1
    rows = [
        _GroupRow(
            counters=reps[signature],
            warp_instructions=mass[signature],
            launches=count[signature],
        )
        for signature in order
    ]
    if len(rows) <= max_groups:
        return rows
    matrix = np.asarray([row.counters for row in rows], dtype=np.float64)
    reduced = FeaturePipeline().fit_transform(matrix)
    if len(rows) > 256:
        clusterer = MiniBatchKMeans(n_clusters=max_groups, clamp_k=True)
    else:
        clusterer = KMeans(n_clusters=max_groups, clamp_k=True)
    labels = clusterer.fit_predict(reduced)
    merged: list[_GroupRow] = []
    for label in sorted(set(labels.tolist())):
        members = [row for row, l in zip(rows, labels, strict=True) if l == label]
        weights = np.asarray([max(row.warp_instructions, 1.0) for row in members])
        centroid = np.average(
            np.asarray([row.counters for row in members]),
            axis=0,
            weights=weights,
        )
        merged.append(
            _GroupRow(
                counters=tuple(float(v) for v in centroid),
                warp_instructions=float(
                    sum(row.warp_instructions for row in members)
                ),
                launches=sum(row.launches for row in members),
            )
        )
    return merged


def _distance(query: _GroupRow, donor: _GroupRow) -> float:
    """Mean absolute log-counter difference (≈ mean relative deviation)."""
    return float(np.abs(query.log_counters - donor.log_counters).mean())


class SemanticCache:
    """The similarity index plus its transfer/escalation bookkeeping.

    One instance serves one harness (one context fingerprint).  State
    persists through the harness's run cache under
    ``<cache>/semcache/<context>.json`` — LRU-exempt like manifests —
    and is merged back on load, so worker processes sharing a cache
    directory pool their observations.  All public methods are
    thread-safe (the serving scheduler consults from request threads).
    """

    def __init__(self, config: SemanticCacheConfig, run_cache, context: str) -> None:
        self.config = config
        self.run_cache = run_cache
        self.context = context
        self._partitions: dict[str, dict[str, _AppEntry]] = {}
        self._predictions: dict[str, tuple[float, float]] = {}
        self._lock = threading.RLock()
        self._loaded = False
        self._state_mtime: float | None = None
        # Tallies (also mirrored into obs counters under "semcache.").
        self.lookups = 0
        self.transfers = 0
        self.escalations_coverage = 0
        self.escalations_bound = 0
        self.observations = 0
        self.observed_errors: list[float] = []
        self.observed_violations = 0

    # -- tallies ---------------------------------------------------------

    @property
    def escalations(self) -> int:
        return self.escalations_coverage + self.escalations_bound

    def snapshot(self) -> dict:
        """JSON-ready metrics section (the ``/metricsz`` ``semcache`` block).

        ``reconciles`` asserts the lookup ledger: every consult either
        transferred or escalated — ``transfers + escalations ==
        lookups`` exactly.
        """
        with self._lock:
            rows = sum(
                len(entry.rows)
                for partition in self._partitions.values()
                for entry in partition.values()
            )
            apps = sum(len(p) for p in self._partitions.values())
            errors = list(self.observed_errors)
            return {
                "enabled": True,
                "transfer_threshold": self.config.transfer_threshold,
                "max_error_bound": self.config.max_error_bound,
                "index_apps": apps,
                "index_rows": rows,
                "partitions": len(self._partitions),
                "lookups": self.lookups,
                "transfers": self.transfers,
                "escalations": self.escalations,
                "escalations_coverage": self.escalations_coverage,
                "escalations_bound": self.escalations_bound,
                "observations": self.observations,
                "reconciles": self.transfers + self.escalations == self.lookups,
                "transfer_error": {
                    "samples": len(errors),
                    "observed_mean": (
                        float(np.mean(errors)) if errors else None
                    ),
                    "observed_max": float(max(errors)) if errors else None,
                    "violations": self.observed_violations,
                },
            }

    # -- the transfer decision -------------------------------------------

    def consult(
        self,
        *,
        workload: str,
        method: str,
        gpu: GPUConfig,
        launches: list[KernelLaunch],
        digest: str,
    ) -> TransferResult | None:
        """Try to answer a digest miss by transfer; None escalates.

        Counts exactly one lookup, and exactly one of transfer /
        escalation — the ledger ``snapshot()`` reconciles.
        """
        if method not in self.config.methods:
            return None
        with self._lock:
            self._load_if_stale()
            self.lookups += 1
            obs_count("semcache.lookups")
            partition = self._partitions.get(self._partition_key(method, gpu))
            if not partition:
                return self._escalate("coverage")
            query = _group_launches(
                launches, gpu.generation, self.config.max_groups
            )
            total_mass = sum(row.warp_instructions for row in query)
            if not query or total_mass <= 0:
                return self._escalate("coverage")
            donors: list[tuple[_GroupRow, _AppEntry, float]] = []
            for row in query:
                best: tuple[float, _AppEntry] | None = None
                for entry in partition.values():
                    for donor_row in entry.rows:
                        dist = _distance(row, donor_row)
                        if best is None or dist < best[0]:
                            best = (dist, entry)
                if best is None or best[0] > self.config.transfer_threshold:
                    return self._escalate("coverage")
                donors.append((row, best[1], best[0]))
            bound = self.config.error_floor + self.config.safety_factor * sum(
                (row.warp_instructions / total_mass)
                * self.config.lipschitz
                * dist
                for row, _entry, dist in donors
            )
            if bound > self.config.max_error_bound:
                return self._escalate("bound")
            total_launches = sum(row.launches for row, _e, _d in donors)
            cycles = KERNEL_LAUNCH_OVERHEAD * total_launches + sum(
                entry.cycles_rate * row.warp_instructions
                for row, entry, _dist in donors
            )
            dram = sum(
                entry.dram_rate * row.warp_instructions
                for row, entry, _dist in donors
            )
            result = TransferResult(
                workload=workload,
                gpu=gpu,
                method=method,
                total_cycles=float(cycles),
                total_instructions=float(total_mass),
                total_dram_bytes=float(dram),
                simulated_cycles=0.0,
                transfer_error_bound=float(bound),
                transferred_from=tuple(
                    sorted({entry.workload for _r, entry, _d in donors})
                ),
            )
            self._predictions[digest] = (float(cycles), float(bound))
            self.transfers += 1
            obs_count("semcache.transfers")
            return result

    def _escalate(self, kind: str) -> None:
        if kind == "coverage":
            self.escalations_coverage += 1
        else:
            self.escalations_bound += 1
        obs_count("semcache.escalations")
        obs_count(f"semcache.escalations_{kind}")
        return None

    # -- index growth -----------------------------------------------------

    def observe(
        self,
        *,
        workload: str,
        method: str,
        gpu: GPUConfig,
        launches: list[KernelLaunch],
        digest: str,
        result: AppRunResult,
    ) -> None:
        """Ingest one *computed* run as a donor and persist the index.

        Transfer answers are never ingested (their error would compound
        through the index); runs with no instruction mass cannot price a
        rate and are skipped.
        """
        if method not in self.config.methods:
            return
        if isinstance(result, TransferResult):
            return
        if result.total_instructions <= 0:
            return
        with self._lock:
            self._load_if_stale()
            self._track_observed_error(digest, result)
            key = self._partition_key(method, gpu)
            partition = self._partitions.setdefault(key, {})
            rows = _group_launches(
                launches, gpu.generation, self.config.max_groups
            )
            total_launches = sum(row.launches for row in rows)
            overhead = KERNEL_LAUNCH_OVERHEAD * total_launches
            partition[digest] = _AppEntry(
                workload=workload,
                digest=digest,
                cycles_rate=max(0.0, result.total_cycles - overhead)
                / result.total_instructions,
                dram_rate=result.total_dram_bytes / result.total_instructions,
                total_warp_instructions=float(result.total_instructions),
                total_launches=total_launches,
                rows=rows,
            )
            while len(partition) > self.config.max_apps_per_partition:
                partition.pop(next(iter(partition)))
            self.observations += 1
            obs_count("semcache.observations")
            self._persist()

    def _track_observed_error(self, digest: str, result: AppRunResult) -> None:
        """A computed ground truth arrived for a digest we once answered
        by transfer (an operator disabled transfer, or another process
        escalated): record the realized error against the advertised
        bound."""
        prediction = self._predictions.pop(digest, None)
        if prediction is None or result.total_cycles <= 0:
            return
        predicted, bound = prediction
        error = abs(predicted - result.total_cycles) / result.total_cycles
        self.observed_errors.append(error)
        obs_count("semcache.observed_samples")
        if error > bound:
            self.observed_violations += 1
            obs_count("semcache.observed_violations")

    # -- persistence -------------------------------------------------------

    @staticmethod
    def _partition_key(method: str, gpu: GPUConfig) -> str:
        return f"{method}@{gpu.name}"

    def _load_if_stale(self) -> None:
        """Merge on-disk state written by other processes (mtime-gated)."""
        getter = getattr(self.run_cache, "get_semcache_state", None)
        if getter is None:
            self._loaded = True
            return
        mtime = getattr(self.run_cache, "semcache_state_mtime", None)
        current = mtime(self.context) if mtime is not None else None
        if self._loaded and current == self._state_mtime:
            return
        document = getter(self.context)
        self._loaded = True
        self._state_mtime = current
        if not document or document.get("version") != SEMCACHE_STATE_VERSION:
            return
        for key, apps in document.get("partitions", {}).items():
            partition = self._partitions.setdefault(key, {})
            for digest, entry in apps.items():
                if digest in partition:
                    continue
                try:
                    partition[digest] = _AppEntry(
                        workload=entry["workload"],
                        digest=digest,
                        cycles_rate=float(entry["cycles_rate"]),
                        dram_rate=float(entry["dram_rate"]),
                        total_warp_instructions=float(
                            entry["total_warp_instructions"]
                        ),
                        total_launches=int(entry["total_launches"]),
                        rows=[
                            _GroupRow(
                                counters=tuple(float(v) for v in row["counters"]),
                                warp_instructions=float(row["warp_instructions"]),
                                launches=int(row["launches"]),
                            )
                            for row in entry["rows"]
                            if len(row["counters"]) == len(FEATURE_NAMES)
                        ],
                    )
                except (KeyError, TypeError, ValueError):
                    continue  # one malformed donor must not poison the index

    def _persist(self) -> None:
        putter = getattr(self.run_cache, "put_semcache_state", None)
        if putter is None:
            return
        document = {
            "version": SEMCACHE_STATE_VERSION,
            "context": self.context,
            "partitions": {
                key: {
                    digest: {
                        "workload": entry.workload,
                        "cycles_rate": entry.cycles_rate,
                        "dram_rate": entry.dram_rate,
                        "total_warp_instructions": entry.total_warp_instructions,
                        "total_launches": entry.total_launches,
                        "rows": [
                            {
                                "counters": list(row.counters),
                                "warp_instructions": row.warp_instructions,
                                "launches": row.launches,
                            }
                            for row in entry.rows
                        ],
                    }
                    for digest, entry in partition.items()
                }
                for key, partition in self._partitions.items()
            },
        }
        putter(self.context, document)
        mtime = getattr(self.run_cache, "semcache_state_mtime", None)
        if mtime is not None:
            self._state_mtime = mtime(self.context)


def resolve_semcache_config(
    semcache: SemanticCacheConfig | bool | None,
    transfer_threshold: float | None = None,
) -> SemanticCacheConfig | None:
    """Normalize the harness/CLI-facing spec into a config (or None=off)."""
    if isinstance(semcache, SemanticCacheConfig):
        config = semcache
    elif semcache:
        config = SemanticCacheConfig()
    else:
        return None
    if transfer_threshold is not None:
        config = replace(config, transfer_threshold=transfer_threshold)
    return config
