"""Markdown report generation: the whole evaluation in one document.

``render_report`` regenerates the paper's headline artifacts from an
:class:`EvaluationHarness` and renders them as a single markdown document
— the reproduction-side equivalent of the artifact's ``Run_PKA.sh``
producing "the big table".
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.analysis.figures import (
    figure1_time_landscape,
    figure7_speedups,
    figure9_volta_over_turing,
    figure10_half_sms,
    figure_predict_tiers,
)
from repro.analysis.harness import EvaluationHarness
from repro.analysis.metrics import format_duration, geomean, mean
from repro.analysis.tables import table3_pks_examples, table4_rows

__all__ = ["render_report", "write_report"]


def _cell(value, suffix: str = "", digits: int = 1) -> str:
    return "*" if value is None else f"{value:.{digits}f}{suffix}"


def _section_table3(harness: EvaluationHarness, out: io.StringIO) -> None:
    out.write("## Table 3 — PKS output examples\n\n")
    out.write("| suite | workload | selected kernel ids | group counts |\n")
    out.write("|---|---|---|---|\n")
    for row in table3_pks_examples(harness):
        ids = ", ".join(str(i) for i in row.selected_kernel_ids)
        counts = ", ".join(str(c) for c in row.group_counts)
        out.write(f"| {row.suite} | {row.workload} | {ids} | {counts} |\n")
    out.write("\n")


def _section_figure1(harness: EvaluationHarness, out: io.StringIO) -> None:
    out.write("## Figure 1 — time landscape (selected workloads)\n\n")
    out.write("| workload | silicon | detailed profiling | full simulation |\n")
    out.write("|---|---|---|---|\n")
    landscapes = figure1_time_landscape(harness)
    for landscape in landscapes[:: max(1, len(landscapes) // 18)]:
        out.write(
            f"| {landscape.workload} "
            f"| {format_duration(landscape.silicon_seconds)} "
            f"| {format_duration(landscape.detailed_profiling_seconds)} "
            f"| {format_duration(landscape.full_simulation_seconds)} |\n"
        )
    out.write("\n")


def _section_figures78(harness: EvaluationHarness, out: io.StringIO) -> None:
    aggregate = figure7_speedups(harness)
    out.write("## Figures 7 & 8 — sampled simulation vs prior work\n\n")
    out.write(f"Completable workloads: {len(aggregate.workloads)}\n\n")
    out.write("| method | mean error vs silicon | geomean speedup over full sim |\n")
    out.write("|---|---|---|\n")
    out.write(f"| Full simulation | {aggregate.mean_error('full'):.1f}% | 1.00x |\n")
    out.write(
        f"| PKA | {aggregate.mean_error('pka'):.1f}% "
        f"| {aggregate.pka_speedup_geomean:.2f}x |\n"
    )
    out.write(
        f"| TBPoint | {aggregate.mean_error('tbpoint'):.1f}% "
        f"| {aggregate.tbpoint_speedup_geomean:.2f}x |\n"
    )
    out.write(
        f"| 1B instructions | {aggregate.mean_error('first1b'):.1f}% "
        f"| {aggregate.first1b_speedup_geomean:.2f}x |\n\n"
    )


def _section_predict_tiers(
    harness: EvaluationHarness, out: io.StringIO
) -> None:
    rows = figure_predict_tiers(harness)
    out.write("## Prediction tiers — zero-simulation estimates vs silicon\n\n")
    if not rows:
        out.write("*No completable workloads with the required runs.*\n\n")
        return
    full = mean([row.full_error for row in rows])
    pka = mean([row.pka_error for row in rows])
    analytical = mean([row.analytical_error for row in rows])
    out.write(
        f"Workloads: {len(rows)}. Mean error vs silicon — "
        f"full sim {full:.1f}%, PKA {pka:.1f}%, "
        f"analytical tier {analytical:.1f}% (no event loop).\n\n"
    )
    out.write(
        "| workload | full | 1B | TBPoint | PKA "
        "| analytical | bound | surrogate | bound |\n"
    )
    out.write("|---|---|---|---|---|---|---|---|---|\n")
    for row in rows:
        out.write(
            f"| {row.workload} "
            f"| {_cell(row.full_error, '%')} "
            f"| {_cell(row.first1b_error, '%')} "
            f"| {_cell(row.tbpoint_error, '%')} "
            f"| {_cell(row.pka_error, '%')} "
            f"| {_cell(row.analytical_error, '%')} "
            f"| {_cell(row.analytical_bound, '', 3)} "
            f"| {_cell(row.surrogate_error, '%')} "
            f"| {_cell(row.surrogate_bound, '', 3)} |\n"
        )
    out.write("\n")


def _section_table4(harness: EvaluationHarness, out: io.StringIO) -> None:
    out.write("## Table 4 — per-workload results\n\n")
    out.write(
        "| workload | V err | V SU | T err | A err | SimErr | PKS err "
        "| PKA err | PKA hours |\n"
    )
    out.write("|---|---|---|---|---|---|---|---|---|\n")
    rows = table4_rows(harness)
    for row in rows:
        out.write(
            f"| {row.workload} "
            f"| {_cell(row.silicon_error['volta'], '%')} "
            f"| {_cell(row.silicon_speedup['volta'], 'x')} "
            f"| {_cell(row.silicon_error['turing'], '%')} "
            f"| {_cell(row.silicon_error['ampere'], '%')} "
            f"| {_cell(row.sim_error, '%')} "
            f"| {_cell(row.pks_error, '%')} "
            f"| {_cell(row.pka_error, '%')} "
            f"| {_cell(row.pka_sim_hours, ' h', 2)} |\n"
        )
    suites: dict[str, list] = {}
    for row in rows:
        suites.setdefault(row.suite, []).append(row)
    out.write("\nPer-suite silicon PKS aggregates (Volta):\n\n")
    out.write("| suite | mean error | geomean speedup |\n|---|---|---|\n")
    for suite, suite_rows in suites.items():
        errors = [
            r.silicon_error["volta"]
            for r in suite_rows
            if r.silicon_error["volta"] is not None
        ]
        speedups = [
            r.silicon_speedup["volta"]
            for r in suite_rows
            if r.silicon_speedup["volta"] is not None
        ]
        out.write(
            f"| {suite} | {mean(errors):.2f}% | {geomean(speedups):.1f}x |\n"
        )
    out.write("\n")


def _section_case_studies(harness: EvaluationHarness, out: io.StringIO) -> None:
    out.write("## Figures 9 & 10 — relative accuracy case studies\n\n")
    fig9 = figure9_volta_over_turing(harness)
    out.write("V100 speedup over RTX 2060 (geomeans): ")
    out.write(
        ", ".join(f"{method} {value:.2f}x" for method, value in fig9.geomeans.items())
    )
    out.write("\n\n")
    fig10 = figure10_half_sms(harness)
    out.write("80-SM over 40-SM V100 (geomeans): ")
    out.write(
        ", ".join(f"{method} {value:.2f}x" for method, value in fig10.geomeans.items())
    )
    out.write("\n\nMAE wrt silicon (Figure 10): ")
    out.write(
        ", ".join(
            f"{method} {value:.2f}"
            for method, value in fig10.mae_wrt_silicon.items()
        )
    )
    out.write("\n")


def _section_sweep_health(harness: EvaluationHarness, out: io.StringIO) -> None:
    """Mark failed/quarantined sweep cells so the report states its own gaps.

    Reads :attr:`EvaluationHarness.last_manifest`, written by
    ``evaluate_cells``; a report rendered without a prior sweep has no
    manifest and the section is omitted entirely.
    """
    manifest = getattr(harness, "last_manifest", None)
    if not manifest:
        return
    total = manifest.get("total_cells", 0)
    quarantined = manifest.get("quarantined", [])
    out.write("## Sweep health\n\n")
    if not quarantined:
        out.write(f"All {total} sweep cells completed.\n\n")
        return
    out.write(
        f"{len(quarantined)} of {total} sweep cells **failed** and were "
        "quarantined; figures and tables below are computed from the "
        "completed cells only.\n\n"
    )
    out.write("| failed cell | kind | error |\n|---|---|---|\n")
    failures = {
        record.get("label"): record for record in manifest.get("failures", [])
    }
    for label in quarantined:
        record = failures.get(label, {})
        kind = record.get("kind", "?")
        message = str(record.get("message", "")).replace("|", "\\|")
        out.write(f"| {label} | {kind} | {record.get('error_type', '?')}: {message} |\n")
    out.write("\n")


def _guarded(title: str, section, harness: EvaluationHarness, out: io.StringIO) -> None:
    """Render one section; on any failure emit a marker instead of raising.

    A sweep with failed cells can leave figure aggregations without the
    runs they need; the report must still render the sections that *can*
    be computed and say plainly which ones could not.
    """
    try:
        section(harness, out)
    except Exception as exc:  # noqa: BLE001 — the whole point is containment
        out.write(f"## {title}\n\n")
        out.write(
            f"*Section could not be rendered: {type(exc).__name__}: {exc}*\n\n"
        )


def render_report(harness: EvaluationHarness | None = None) -> str:
    """Render the full evaluation as a markdown document.

    Never raises on a degraded sweep: sections whose inputs are missing
    (e.g. because cells failed and were quarantined) render as an explicit
    "could not be rendered" marker, and a sweep-health section lists the
    failed cells.
    """
    harness = harness if harness is not None else EvaluationHarness()
    out = io.StringIO()
    out.write("# Principal Kernel Analysis — evaluation report\n\n")
    out.write(
        "Regenerated from the reproduction's calibrated models "
        "(see DESIGN.md for substitutions, EXPERIMENTS.md for "
        "paper-vs-measured commentary).\n\n"
    )
    _guarded("Sweep health", _section_sweep_health, harness, out)
    _guarded(
        "Figure 1 — time landscape (selected workloads)",
        _section_figure1,
        harness,
        out,
    )
    _guarded("Table 3 — PKS output examples", _section_table3, harness, out)
    _guarded(
        "Figures 7 & 8 — sampled simulation vs prior work",
        _section_figures78,
        harness,
        out,
    )
    _guarded(
        "Figures 9 & 10 — relative accuracy case studies",
        _section_case_studies,
        harness,
        out,
    )
    _guarded(
        "Prediction tiers — zero-simulation estimates vs silicon",
        _section_predict_tiers,
        harness,
        out,
    )
    _guarded("Table 4 — per-workload results", _section_table4, harness, out)
    return out.getvalue()


def write_report(
    path: str | Path, harness: EvaluationHarness | None = None
) -> Path:
    """Render the report and write it to ``path``."""
    path = Path(path)
    path.write_text(render_report(harness), encoding="utf-8")
    return path
