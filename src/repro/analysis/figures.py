"""Series builders for every figure in the paper's evaluation.

Each function consumes a shared :class:`EvaluationHarness` and returns the
plain-data series the corresponding figure plots; the benchmark harness
prints them and asserts their shape.  Nothing here touches matplotlib —
the reproduction reports numbers, not pixels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.harness import EvaluationHarness, WorkloadEvaluation
from repro.analysis.metrics import abs_pct_error, geomean, mape, speedup
from repro.core.config import PKPConfig
from repro.core.pkp import make_monitor
from repro.gpu.architectures import TURING_RTX2060, VOLTA_V100, volta_v100_half_sms
from repro.predict import price_app
from repro.profiling.cost import TimeLandscape, compute_time_landscape

__all__ = [
    "figure1_time_landscape",
    "figure4_group_composition",
    "figure5_ipc_series",
    "figure6_simtime_reduction",
    "figure7_speedups",
    "figure8_errors",
    "figure9_volta_over_turing",
    "figure10_half_sms",
    "figure_predict_tiers",
    "MethodAggregate",
    "PredictTierAccuracy",
    "RelativeAccuracy",
]


# ---------------------------------------------------------------------------
# Figure 1 — execution/profiling/simulation time landscape.
# ---------------------------------------------------------------------------


def figure1_time_landscape(harness: EvaluationHarness) -> list[TimeLandscape]:
    """Silicon / profiler / simulation seconds per workload, sorted."""
    landscapes = []
    for evaluation in harness.evaluations():
        silicon = harness.silicon(VOLTA_V100)
        landscapes.append(
            compute_time_landscape(
                evaluation.spec.name,
                evaluation.launches("volta"),
                silicon,
                scale=evaluation.spec.scale,
            )
        )
    landscapes.sort(key=lambda landscape: landscape.silicon_seconds)
    return landscapes


# ---------------------------------------------------------------------------
# Figure 4 — per-group kernel composition for ResNet.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupComposition:
    """Kernel-name histogram of one PKS group."""

    group_id: int
    total_kernels: int
    name_counts: dict[str, int]


def figure4_group_composition(
    harness: EvaluationHarness, workload: str = "mlperf_resnet50_64b"
) -> list[GroupComposition]:
    """Which kernel names landed in which PKS group (ResNet by default)."""
    evaluation = harness.evaluation(workload)
    selection = evaluation.selection()
    launches = {
        launch.launch_id: launch for launch in evaluation.launches("volta")
    }
    compositions = []
    for pks_group in selection.pks.groups:
        name_counts: dict[str, int] = {}
        for launch_id in pks_group.member_launch_ids:
            name = launches[launch_id].spec.name
            name_counts[name] = name_counts.get(name, 0) + 1
        compositions.append(
            GroupComposition(
                group_id=pks_group.group_id,
                total_kernels=pks_group.weight,
                name_counts=name_counts,
            )
        )
    return compositions


# ---------------------------------------------------------------------------
# Figure 5 — IPC/L2/DRAM time series with PKP stop points.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IPCSeries:
    """One kernel's windowed time series plus PKP stop points per s."""

    workload: str
    kernel_name: str
    cycles: tuple[float, ...]
    ipc: tuple[float, ...]
    l2_miss_rate: tuple[float, ...]
    dram_util: tuple[float, ...]
    stop_points: dict[float, float | None]  # s value -> stop cycle


def figure5_ipc_series(
    harness: EvaluationHarness,
    workload: str,
    *,
    launch_index: int = 0,
    thresholds: tuple[float, ...] = (2.5, 0.25, 0.025),
) -> IPCSeries:
    """Windowed IPC/L2/DRAM series for one kernel plus PKP stop sweeps.

    The paper's Figure 5 uses atax (regular) and a Rodinia BFS
    (irregular); any workload/launch works here.
    """
    evaluation = harness.evaluation(workload)
    launch = evaluation.launches("volta")[launch_index]
    simulator = harness.simulator(VOLTA_V100)
    full = simulator.run_kernel(launch, collect_series=True)

    stop_points: dict[float, float | None] = {}
    for threshold in thresholds:
        config = PKPConfig(stability_threshold=threshold)
        monitor = make_monitor(launch, simulator.gpu, config)
        for sample in full.samples:
            if monitor.observe(sample):
                break
        stop_points[threshold] = monitor.stop_cycle

    return IPCSeries(
        workload=workload,
        kernel_name=launch.spec.name,
        cycles=tuple(sample.cycle for sample in full.samples),
        ipc=tuple(sample.ipc for sample in full.samples),
        l2_miss_rate=tuple(sample.l2_miss_rate for sample in full.samples),
        dram_util=tuple(sample.dram_util for sample in full.samples),
        stop_points=stop_points,
    )


# ---------------------------------------------------------------------------
# Figure 6 — simulation time: full vs PKS vs PKA.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SimTimeRow:
    """Projected simulation hours for one workload under three regimes."""

    workload: str
    full_hours: float
    pks_hours: float | None
    pka_hours: float | None


def figure6_simtime_reduction(harness: EvaluationHarness) -> list[SimTimeRow]:
    """Per-workload projected simulation hours, sorted by full-sim time.

    Full-simulation hours scale with the workload's launch-count factor
    (the paper-sized app simulates every kernel); PKS/PKA hours do not
    (only the representatives are simulated, however long the app is).
    """
    rows = []
    for evaluation in harness.evaluations():
        spec = evaluation.spec
        landscape = compute_time_landscape(
            spec.name,
            evaluation.launches("volta"),
            harness.silicon(VOLTA_V100),
            scale=spec.scale,
        )
        if "sim_kernel_mismatch" in spec.quirks:
            pks_hours = pka_hours = None
        else:
            pks = evaluation.pks_sim()
            pka = evaluation.pka_sim()
            pks_hours = pks.sim_wall_hours if pks else None
            pka_hours = pka.sim_wall_hours if pka else None
        rows.append(
            SimTimeRow(
                workload=spec.name,
                full_hours=landscape.simulation_hours,
                pks_hours=pks_hours,
                pka_hours=pka_hours,
            )
        )
    rows.sort(key=lambda row: row.full_hours)
    return rows


# ---------------------------------------------------------------------------
# Figures 7 and 8 — speedup and error versus prior work.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MethodAggregate:
    """Per-method speedups/errors over the completable workloads."""

    workloads: tuple[str, ...]
    full_errors: tuple[float, ...]
    pka_speedups: tuple[float, ...]
    pka_errors: tuple[float, ...]
    tbpoint_speedups: tuple[float, ...]
    tbpoint_errors: tuple[float, ...]
    first1b_speedups: tuple[float, ...]
    first1b_errors: tuple[float, ...]

    @property
    def pka_speedup_geomean(self) -> float:
        return geomean(self.pka_speedups)

    @property
    def tbpoint_speedup_geomean(self) -> float:
        return geomean(self.tbpoint_speedups)

    @property
    def first1b_speedup_geomean(self) -> float:
        return geomean(self.first1b_speedups)

    def mean_error(self, method: str) -> float:
        errors = {
            "full": self.full_errors,
            "pka": self.pka_errors,
            "tbpoint": self.tbpoint_errors,
            "first1b": self.first1b_errors,
        }[method]
        return sum(errors) / len(errors) if errors else 0.0


def _prior_work_rows(harness: EvaluationHarness) -> MethodAggregate:
    names, full_e, pka_s, pka_e = [], [], [], []
    tb_s, tb_e, ob_s, ob_e = [], [], [], []
    for evaluation in harness.completable_evaluations():
        silicon = evaluation.silicon("volta")
        full = evaluation.full_sim()
        pka = evaluation.pka_sim()
        oneb = evaluation.first_1b()
        tbp = evaluation.tbpoint_sim()
        if silicon is None or full is None or pka is None or oneb is None:
            continue
        if tbp is None:
            continue
        names.append(evaluation.spec.name)
        full_e.append(abs_pct_error(full.total_cycles, silicon.total_cycles))
        pka_s.append(speedup(full.simulated_cycles, pka.simulated_cycles))
        pka_e.append(abs_pct_error(pka.total_cycles, silicon.total_cycles))
        tb_s.append(speedup(full.simulated_cycles, tbp.simulated_cycles))
        tb_e.append(abs_pct_error(tbp.total_cycles, silicon.total_cycles))
        ob_s.append(speedup(full.simulated_cycles, oneb.simulated_cycles))
        ob_e.append(abs_pct_error(oneb.total_cycles, silicon.total_cycles))
    return MethodAggregate(
        workloads=tuple(names),
        full_errors=tuple(full_e),
        pka_speedups=tuple(pka_s),
        pka_errors=tuple(pka_e),
        tbpoint_speedups=tuple(tb_s),
        tbpoint_errors=tuple(tb_e),
        first1b_speedups=tuple(ob_s),
        first1b_errors=tuple(ob_e),
    )


def figure7_speedups(harness: EvaluationHarness) -> MethodAggregate:
    """Speedup of PKA / TBPoint / 1B over full simulation (Figure 7)."""
    return _prior_work_rows(harness)


def figure8_errors(harness: EvaluationHarness) -> MethodAggregate:
    """Cycle error of full sim / 1B / PKA / TBPoint vs silicon (Figure 8)."""
    return _prior_work_rows(harness)


# ---------------------------------------------------------------------------
# Prediction-tier accuracy — both tiers versus the simulated methods.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredictTierAccuracy:
    """One workload's cycle error versus silicon, per answering method.

    Puts the two prediction tiers (which run no event loop at all) on
    the same axis as full simulation, 1B, TBPoint and PKA.  Bounds are
    the tiers' *advertised* relative error versus the DES (None when
    uncalibrated); errors are realized versus silicon.
    """

    workload: str
    full_error: float
    first1b_error: float
    tbpoint_error: float
    pka_error: float
    analytical_error: float
    analytical_bound: float | None
    surrogate_error: float | None
    surrogate_bound: float | None


def figure_predict_tiers(
    harness: EvaluationHarness,
) -> list[PredictTierAccuracy]:
    """Prediction-tier accuracy over the completable workloads (Volta).

    The analytical column is always available (it is pure arithmetic);
    the surrogate column appears once the harness's prediction tiers
    have trained and the workload is inside coverage.  With prediction
    disabled on the harness the analytical estimate is still priced
    directly — the figure then simply has no surrogate column.
    """
    rows: list[PredictTierAccuracy] = []
    for evaluation in harness.completable_evaluations():
        silicon = evaluation.silicon("volta")
        full = evaluation.full_sim()
        pka = evaluation.pka_sim()
        oneb = evaluation.first_1b()
        tbp = evaluation.tbpoint_sim()
        if any(run is None for run in (silicon, full, pka, oneb, tbp)):
            continue
        launches = evaluation.launches("volta")
        if harness.predict is not None:
            tiers = harness.predict.tier_estimates(
                method="full_sim",
                gpu=VOLTA_V100,
                launches=launches,
                model_error=harness.model_error,
            )
        else:
            estimate = price_app(launches, VOLTA_V100, harness.model_error)
            tiers = (
                {"analytical": (estimate.total_cycles, None)}
                if estimate.groups and estimate.total_cycles > 0
                else {}
            )
        if "analytical" not in tiers:
            continue
        analytical_cycles, analytical_bound = tiers["analytical"]
        surrogate = tiers.get("surrogate")
        rows.append(
            PredictTierAccuracy(
                workload=evaluation.spec.name,
                full_error=abs_pct_error(
                    full.total_cycles, silicon.total_cycles
                ),
                first1b_error=abs_pct_error(
                    oneb.total_cycles, silicon.total_cycles
                ),
                tbpoint_error=abs_pct_error(
                    tbp.total_cycles, silicon.total_cycles
                ),
                pka_error=abs_pct_error(
                    pka.total_cycles, silicon.total_cycles
                ),
                analytical_error=abs_pct_error(
                    analytical_cycles, silicon.total_cycles
                ),
                analytical_bound=analytical_bound,
                surrogate_error=(
                    abs_pct_error(surrogate[0], silicon.total_cycles)
                    if surrogate is not None
                    else None
                ),
                surrogate_bound=(
                    surrogate[1] if surrogate is not None else None
                ),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Figures 9 and 10 — relative-accuracy case studies.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RelativeAccuracy:
    """Per-workload speedups of one architectural change, per method.

    Workloads with no full-simulation reference (MLPerf) participate via
    the ``pka_only_*`` series: silicon truth versus PKA's prediction,
    the way the paper covers them in Figure 10.
    """

    workloads: tuple[str, ...]
    silicon: tuple[float, ...]
    full_sim: tuple[float, ...]
    first1b: tuple[float, ...]
    pka: tuple[float, ...]
    pka_only_workloads: tuple[str, ...] = ()
    pka_only_silicon: tuple[float, ...] = ()
    pka_only_pka: tuple[float, ...] = ()

    @property
    def pka_only_mae(self) -> float:
        """Mean absolute percentage error of PKA's speedup prediction on
        the PKA-only workloads (the quantity the paper's figures label
        "MAE")."""
        return mape(self.pka_only_pka, self.pka_only_silicon)

    @property
    def geomeans(self) -> dict[str, float]:
        return {
            "silicon": geomean(self.silicon),
            "full_sim": geomean(self.full_sim),
            "first1b": geomean(self.first1b),
            "pka": geomean(self.pka),
        }

    @property
    def mae_wrt_silicon(self) -> dict[str, float]:
        return {
            "full_sim": mape(self.full_sim, self.silicon),
            "first1b": mape(self.first1b, self.silicon),
            "pka": mape(self.pka, self.silicon),
        }


def figure9_volta_over_turing(harness: EvaluationHarness) -> RelativeAccuracy:
    """V100-over-RTX2060 speedup per method (Figure 9).

    MLPerf does not fit on the RTX 2060, so only the workloads runnable
    on both cards participate — exactly the paper's situation.
    """
    names, sil, full, oneb, pka = [], [], [], [], []
    for evaluation in harness.completable_evaluations():
        if not evaluation.runs_on(TURING_RTX2060):
            continue
        ratios = _method_ratios(
            evaluation,
            gpu_a=VOLTA_V100,
            gpu_b=TURING_RTX2060,
            use_seconds=True,
        )
        if ratios is None:
            continue
        names.append(evaluation.spec.name)
        for store, value in zip((sil, full, oneb, pka), ratios, strict=True):
            store.append(value)
    return RelativeAccuracy(
        workloads=tuple(names),
        silicon=tuple(sil),
        full_sim=tuple(full),
        first1b=tuple(oneb),
        pka=tuple(pka),
    )


def figure10_half_sms(harness: EvaluationHarness) -> RelativeAccuracy:
    """80-SM-over-40-SM V100 speedup per method (Figure 10).

    Covers *all* workloads, as the paper stresses: completable ones get
    the four-method comparison; MLPerf (no full-simulation reference)
    contributes silicon-versus-PKA speedups only.
    """
    half = volta_v100_half_sms()
    names, sil, full, oneb, pka = [], [], [], [], []
    for evaluation in harness.completable_evaluations():
        ratios = _method_ratios(
            evaluation, gpu_a=VOLTA_V100, gpu_b=half, use_seconds=False
        )
        if ratios is None:
            continue
        names.append(evaluation.spec.name)
        for store, value in zip((sil, full, oneb, pka), ratios, strict=True):
            store.append(value)

    only_names, only_sil, only_pka = [], [], []
    for evaluation in harness.evaluations("mlperf"):
        silicon_80 = evaluation.silicon_on(VOLTA_V100)
        silicon_40 = evaluation.silicon_on(half)
        pka_80 = evaluation.pka_sim(VOLTA_V100)
        pka_40 = evaluation.pka_sim(half)
        if any(run is None for run in (silicon_80, silicon_40, pka_80, pka_40)):
            continue
        only_names.append(evaluation.spec.name)
        only_sil.append(silicon_40.total_cycles / silicon_80.total_cycles)
        only_pka.append(pka_40.total_cycles / pka_80.total_cycles)

    return RelativeAccuracy(
        workloads=tuple(names),
        silicon=tuple(sil),
        full_sim=tuple(full),
        first1b=tuple(oneb),
        pka=tuple(pka),
        pka_only_workloads=tuple(only_names),
        pka_only_silicon=tuple(only_sil),
        pka_only_pka=tuple(only_pka),
    )


def _method_ratios(
    evaluation: WorkloadEvaluation,
    *,
    gpu_a,
    gpu_b,
    use_seconds: bool,
) -> tuple[float, float, float, float] | None:
    """(silicon, full, 1B, PKA) speedups of gpu_a over gpu_b, or None."""

    def cost(result) -> float:
        return result.silicon_seconds if use_seconds else result.total_cycles

    silicon_a = evaluation.silicon_on(gpu_a)
    silicon_b = evaluation.silicon_on(gpu_b)
    full_a, full_b = evaluation.full_sim(gpu_a), evaluation.full_sim(gpu_b)
    oneb_a, oneb_b = evaluation.first_1b(gpu_a), evaluation.first_1b(gpu_b)
    pka_a, pka_b = evaluation.pka_sim(gpu_a), evaluation.pka_sim(gpu_b)
    runs = (silicon_a, silicon_b, full_a, full_b, oneb_a, oneb_b, pka_a, pka_b)
    if any(run is None for run in runs):
        return None
    return (
        cost(silicon_b) / cost(silicon_a),
        cost(full_b) / cost(full_a),
        cost(oneb_b) / cost(oneb_a),
        cost(pka_b) / cost(pka_a),
    )
