"""Persisting PKA results: selections and the content-addressed run cache.

The paper's artifact emits, per workload, "pkl files containing the number
of principal groups, the principal kernels associated with each group and
their respective weights" — the hand-off between the characterization
machine (which has the GPU) and the simulation cluster (which does not).

This module serializes a :class:`~repro.core.pka.KernelSelection` to a
self-contained JSON document (embedding the representative launches in
the .pkatrace record format) and restores it, so characterization and
simulation can run in different processes, machines or sessions.

On top of the hand-off format sits the **run cache**: a content-addressed
on-disk store of :class:`~repro.sim.stats.AppRunResult` cells and
selections, keyed by a digest of everything the result depends on (the
workload's launch lists, the full GPU config, the PKA and model-error
configs, and a code-version salt).  Every run in this reproduction is
deterministic, so a cache hit is *exactly* the result a recompute would
produce — repeated benchmark sweeps and cross-process fan-outs reuse
prior work instead of re-simulating the corpus.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
import warnings
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from repro import __version__
from repro.core.pka import KernelSelection, SelectedGroup
from repro.core.pks import KernelGroup, PKSResult
from repro.errors import ReproError
from repro.gpu.architectures import GPUConfig
from repro.gpu.kernels import KernelLaunch
from repro.obs import obs_count
from repro.sim.stats import AppRunResult, KernelRecord
from repro.traces.format import _launch_from_record, _launch_record

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "RUN_FORMAT_VERSION",
    "SELECTION_FORMAT_VERSION",
    "CacheDegradedWarning",
    "NullRunCache",
    "RunCache",
    "RunKey",
    "dump_run",
    "dump_selection",
    "fingerprint",
    "launches_digest",
    "load_run",
    "load_selection",
    "read_selection",
    "resolve_run_cache",
    "run_digest",
    "save_selection",
]

SELECTION_FORMAT_VERSION = 1


def dump_selection(selection: KernelSelection) -> str:
    """Serialize a selection to a JSON document."""
    document = {
        "version": SELECTION_FORMAT_VERSION,
        "workload": selection.workload,
        "total_launches": selection.total_launches,
        "total_warp_instructions": selection.total_warp_instructions,
        "used_two_level": selection.used_two_level,
        "detailed_count": selection.detailed_count,
        "classifier_name": selection.classifier_name,
        "classifier_accuracy": selection.classifier_accuracy,
        "profiling_seconds": selection.profiling_seconds,
        "k": selection.pks.k,
        "projection_error": selection.pks.projection_error,
        "sweep_errors": list(selection.pks.sweep_errors),
        "groups": [
            {
                "group_id": group.group_id,
                "weight": group.weight,
                "representative": _launch_record(group.representative),
                "member_launch_ids": list(
                    _pks_group(selection, group.group_id).member_launch_ids
                ),
                "mean_cycles": _pks_group(selection, group.group_id).mean_cycles,
                "representative_cycles": _pks_group(
                    selection, group.group_id
                ).representative_cycles,
            }
            for group in selection.groups
        ],
    }
    return json.dumps(document, sort_keys=True, indent=2)


def _pks_group(selection: KernelSelection, group_id: int) -> KernelGroup:
    for group in selection.pks.groups:
        if group.group_id == group_id:
            return group
    raise ReproError(f"selection has no PKS group {group_id}")


def load_selection(text: str) -> KernelSelection:
    """Restore a selection from its JSON document.

    The restored object carries everything simulation-side consumers need
    (groups, weights, representatives, instruction totals, the K sweep's
    projected errors).  The fitted clustering artifacts (PCA basis,
    k-means centres) are characterization-side state and are not
    round-tripped; the restored ``pks`` summary exposes group structure
    and the recorded errors only.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"not a selection document: {exc}") from exc
    if document.get("version") != SELECTION_FORMAT_VERSION:
        raise ReproError(
            f"unsupported selection version {document.get('version')!r}"
        )
    try:
        pks_groups = []
        selected_groups = []
        for record in document["groups"]:
            representative = _launch_from_record(record["representative"])
            pks_groups.append(
                KernelGroup(
                    group_id=record["group_id"],
                    representative_launch_id=representative.launch_id,
                    member_launch_ids=tuple(record["member_launch_ids"]),
                    weight=len(record["member_launch_ids"]),
                    mean_cycles=record["mean_cycles"],
                    representative_cycles=record["representative_cycles"],
                )
            )
            selected_groups.append(
                SelectedGroup(
                    group_id=record["group_id"],
                    representative=representative,
                    weight=record["weight"],
                )
            )
        import numpy as np

        labels = np.zeros(0, dtype=np.intp)
        pks = PKSResult(
            k=document["k"],
            groups=tuple(pks_groups),
            labels=labels,
            projection_error=document["projection_error"],
            sweep_errors=tuple(document.get("sweep_errors", ())),
            pipeline=None,  # type: ignore[arg-type]
            kmeans=None,  # type: ignore[arg-type]
        )
        return KernelSelection(
            workload=document["workload"],
            total_launches=document["total_launches"],
            total_warp_instructions=document["total_warp_instructions"],
            groups=tuple(selected_groups),
            pks=pks,
            used_two_level=document["used_two_level"],
            detailed_count=document["detailed_count"],
            classifier_name=document["classifier_name"],
            classifier_accuracy=document["classifier_accuracy"],
            profiling_seconds=document["profiling_seconds"],
        )
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed selection document: {exc}") from exc


def save_selection(path: str | Path, selection: KernelSelection) -> Path:
    """Write a selection document to ``path``."""
    path = Path(path)
    path.write_text(dump_selection(selection), encoding="utf-8")
    return path


def read_selection(path: str | Path) -> KernelSelection:
    """Read a selection document from ``path``."""
    return load_selection(Path(path).read_text(encoding="utf-8"))


# ---------------------------------------------------------------------------
# Run documents: AppRunResult <-> JSON, exact round trip.
# ---------------------------------------------------------------------------

RUN_FORMAT_VERSION = 1

#: Bump when a change alters what any cached run would contain without
#: changing the package version (the digest salts on both).  Version 2
#: added the per-entry integrity envelope (schema stamp + payload
#: checksum); pre-PR-3 entries live at version-1 digests and are simply
#: never looked up again.
CACHE_SCHEMA_VERSION = 2


def dump_run(result: AppRunResult) -> str:
    """Serialize an application run to a JSON document.

    The round trip is exact: JSON numbers are written with ``repr``
    precision, so every float is restored bit-identically and a cached
    run compares equal to the run that produced it.
    """
    document = {
        "version": RUN_FORMAT_VERSION,
        "workload": result.workload,
        "method": result.method,
        "gpu": dataclasses.asdict(result.gpu),
        "total_cycles": result.total_cycles,
        "total_instructions": result.total_instructions,
        "total_dram_bytes": result.total_dram_bytes,
        "simulated_cycles": result.simulated_cycles,
        "kernel_records": [
            dataclasses.asdict(record) for record in result.kernel_records
        ],
    }
    return json.dumps(document, sort_keys=True)


def load_run(text: str) -> AppRunResult:
    """Restore an application run from its JSON document."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"not a run document: {exc}") from exc
    if document.get("version") != RUN_FORMAT_VERSION:
        raise ReproError(f"unsupported run version {document.get('version')!r}")
    try:
        return AppRunResult(
            workload=document["workload"],
            gpu=GPUConfig(**document["gpu"]),
            method=document["method"],
            total_cycles=document["total_cycles"],
            total_instructions=document["total_instructions"],
            total_dram_bytes=document["total_dram_bytes"],
            simulated_cycles=document["simulated_cycles"],
            kernel_records=tuple(
                KernelRecord(**record) for record in document["kernel_records"]
            ),
        )
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed run document: {exc}") from exc


# ---------------------------------------------------------------------------
# Cache keys and digests.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunKey:
    """Typed identity of one memoized evaluation cell.

    ``method`` names the accessor ("silicon", "full_sim", "pka_sim", ...)
    and ``gpu`` the :attr:`GPUConfig.name` it ran on (``None`` for
    GPU-independent cells such as the characterization selection).  Both
    the harness's in-memory memo tables and the on-disk cache derive
    their identity from this one object, so the two layers cannot
    disagree about what a cell is.
    """

    method: str
    gpu: str | None = None

    @property
    def label(self) -> str:
        return self.method if self.gpu is None else f"{self.method}/{self.gpu}"


def _jsonable(value):
    """Canonical JSON-compatible form of digest payload values."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, Path):
        return str(value)
    return value


def fingerprint(payload: object) -> str:
    """SHA-256 over the canonical JSON rendering of ``payload``."""
    text = json.dumps(_jsonable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def launches_digest(launches: Iterable[KernelLaunch]) -> str:
    """Digest of a launch list's behavioural identity.

    Covers, per launch, the spec signature (which already hashes every
    behavioural field), the grid, the chronological id and the NVTX
    annotations — everything any method's result can depend on.
    """
    hasher = hashlib.sha256()
    for launch in launches:
        row = (
            f"{launch.launch_id}:{launch.spec.signature()}:"
            f"{launch.grid_blocks}:{sorted(launch.nvtx.items())}\n"
        )
        hasher.update(row.encode("utf-8"))
    return hasher.hexdigest()


def run_digest(
    key: RunKey,
    *,
    workload: str,
    launch_digests: dict[str, str],
    gpu: GPUConfig | None,
    context: str,
) -> str:
    """Content address of one evaluation cell.

    ``launch_digests`` maps each GPU generation whose launch list the
    cell consumed to its :func:`launches_digest`; ``context`` is the
    harness fingerprint (configs, model error, budgets, code version).
    The full ``gpu`` config is hashed — not just its name — so two
    configs that share a name but differ in any parameter never collide.
    """
    return fingerprint(
        {
            "schema": CACHE_SCHEMA_VERSION,
            "version": __version__,
            "key": {"method": key.method, "gpu": key.gpu},
            "workload": workload,
            "launches": launch_digests,
            "gpu": gpu,
            "context": context,
        }
    )


# ---------------------------------------------------------------------------
# The on-disk store.
# ---------------------------------------------------------------------------


class CacheDegradedWarning(UserWarning):
    """The on-disk run cache lost its directory and fell back to memory."""


class NullRunCache:
    """Disabled cache: every lookup misses and writes are dropped."""

    enabled = False

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        self.schema_mismatches = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.quarantine_log: list[dict] = []

    def get_run(self, digest: str) -> AppRunResult | None:
        return None

    def put_run(self, digest: str, result: AppRunResult) -> None:
        return None

    def get_selection(self, digest: str) -> KernelSelection | None:
        return None

    def put_selection(self, digest: str, selection: KernelSelection) -> None:
        return None

    def get_manifest(self, sweep_id: str) -> dict | None:
        return None

    def put_manifest(self, sweep_id: str, document: dict) -> None:
        return None

    def get_semcache_state(self, context: str) -> dict | None:
        return None

    def put_semcache_state(self, context: str, document: dict) -> None:
        return None

    def semcache_state_mtime(self, context: str) -> float | None:
        return None

    def get_predict_state(self, context: str) -> dict | None:
        return None

    def put_predict_state(self, context: str, document: dict) -> None:
        return None

    def predict_state_mtime(self, context: str) -> float | None:
        return None

    def __repr__(self) -> str:
        return "NullRunCache()"


class RunCache:
    """Content-addressed on-disk store of runs and selections.

    Entries live at ``<root>/<digest[:2]>/<digest>.json`` and are written
    atomically (temp file + rename), so concurrent processes sharing one
    cache directory can only ever observe complete entries.  Every entry
    carries an integrity envelope — a schema-version stamp plus a sha256
    checksum of its payload — that is verified on read.  A corrupted or
    truncated entry — a killed writer on a non-atomic filesystem, a
    stray editor, bit rot — is treated as a miss and **quarantined**
    (moved to ``<root>/quarantine/`` and recorded in
    :attr:`quarantine_log`); the caller recomputes and rewrites it.  An
    entry stamped with a different schema version is refused and simply
    recomputed.

    A cache that cannot *write* — read-only directory, full disk,
    vanished mount — must not abort the sweep that was trying to
    checkpoint into it.  The first failed write emits one
    :class:`CacheDegradedWarning` and flips the store into **degraded
    mode**: entries land in an in-process dictionary instead, reads
    check that overlay before disk, and the sweep carries on with plain
    memoization semantics.  Sweep manifests (quarantine records written
    by ``evaluate_cells``) share the same fallback.

    **Concurrency.**  Any number of processes and threads may share one
    cache directory.  Entry and manifest writes are atomic renames of
    fully-written temp files in the destination directory, so a reader
    can only ever observe a complete document or no document — never a
    torn one.  Concurrent writers of one digest are idempotent (the
    content address guarantees they carry identical payloads; last
    rename wins).  An entry deleted underneath a reader — by eviction or
    quarantine in another process — is a plain miss.  Instance tallies
    are guarded by a lock so multi-threaded callers (the serving layer)
    reconcile exactly.

    **Bounded size.**  With ``max_bytes`` set the store evicts
    least-recently-used entries after each write until the run/selection
    entries fit the budget.  Recency is the entry file's mtime, which a
    read hit refreshes; manifests and quarantined files are not counted
    and never evicted.  The entry just written is never evicted, so a
    single oversized result still caches.
    """

    enabled = True

    def __init__(self, root: str | Path, *, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ReproError("max_bytes must be positive or None")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.quarantined = 0
        self.schema_mismatches = 0
        self.evictions = 0
        self.evicted_bytes = 0
        #: One ``{"digest", "reason"}`` record per quarantined entry, in
        #: discovery order; ``evaluate_cells`` copies these into the sweep
        #: manifest so operators can see what bit-rotted.
        self.quarantine_log: list[dict] = []
        self.degraded = False
        self._memory: dict[str, dict] = {}
        self._tally_lock = threading.Lock()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            self._degrade(exc)

    def _degrade(self, exc: OSError) -> None:
        if not self.degraded:
            self.degraded = True
            warnings.warn(
                f"run cache at {self.root} is not writable ({exc}); "
                "falling back to in-memory caching for this process",
                CacheDegradedWarning,
                stacklevel=4,
            )

    # -- generic entry plumbing -----------------------------------------

    # Every hit/miss/write/quarantine goes through one of these helpers so
    # the instance tallies and the tracer counters can never disagree.

    def _note_hit(self, n: int = 1) -> None:
        with self._tally_lock:
            self.hits += n
        obs_count("cache.hits", n)

    def _note_miss(self) -> None:
        with self._tally_lock:
            self.misses += 1
        obs_count("cache.misses")

    def _note_write(self) -> None:
        with self._tally_lock:
            self.writes += 1
        obs_count("cache.writes")

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.json"

    def _quarantine_path(self, digest: str) -> Path:
        return self.root / "quarantine" / f"{digest}.json"

    def quarantine_entry(self, digest: str, reason: str) -> None:
        """Move a bad entry aside (never delete evidence) and record why.

        Quarantined files land under ``<root>/quarantine/`` so an operator
        can inspect what bit-rotted; the caller treats the lookup as a
        miss and recomputes.
        """
        path = self._path(digest)
        destination = self._quarantine_path(digest)
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
        except OSError:
            # Quarantine is best-effort; fall back to removal so the bad
            # entry can at least never be served again.
            try:
                path.unlink()
            except OSError:
                pass
        with self._tally_lock:
            self.quarantined += 1
            self.quarantine_log.append({"digest": digest, "reason": reason})
        obs_count("cache.quarantined")

    @staticmethod
    def _payload_checksum(payload) -> str:
        text = (
            payload
            if isinstance(payload, str)
            else json.dumps(payload, sort_keys=True)
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def _read(self, digest: str, kind: str):
        overlay = self._memory.get(digest)
        if overlay is not None:
            if overlay.get("kind") != kind:
                self._note_miss()
                return None
            self._note_hit()
            return overlay["payload"]
        path = self._path(digest)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self._note_miss()
            return None
        except (OSError, ValueError):
            # Unreadable or not even JSON: a truncated writer or bit rot.
            self._note_miss()
            self.quarantine_entry(digest, "undecodable entry document")
            return None
        if document.get("schema") != CACHE_SCHEMA_VERSION:
            # A different schema is not corruption — it is an entry some
            # other code version wrote under a colliding digest.  Refuse
            # it and recompute (the rewrite lands at this digest).
            self._note_miss()
            with self._tally_lock:
                self.schema_mismatches += 1
            obs_count("cache.schema_mismatches")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if document.get("kind") != kind:
            self._note_miss()
            self.quarantine_entry(
                digest,
                f"kind {document.get('kind')!r} where {kind!r} was expected",
            )
            return None
        payload = document.get("payload")
        checksum = document.get("sha256")
        if payload is None or checksum != self._payload_checksum(payload):
            self._note_miss()
            self.quarantine_entry(digest, "payload checksum mismatch")
            return None
        if self.max_bytes is not None:
            try:
                # Refresh recency so a hot entry survives LRU eviction.
                os.utime(path)
            except OSError:
                pass
        self._note_hit()
        return payload

    def _write(self, digest: str, kind: str, payload) -> None:
        document = {
            "kind": kind,
            "schema": CACHE_SCHEMA_VERSION,
            "payload": payload,
            "sha256": self._payload_checksum(payload),
        }
        if self.degraded:
            self._memory[digest] = document
            self._note_write()
            return
        path = self._path(digest)
        text = json.dumps(document, sort_keys=True)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                prefix=f".{digest[:8]}.", suffix=".tmp", dir=path.parent
            )
        except OSError as exc:
            self._degrade(exc)
            self._memory[digest] = document
            self._note_write()
            return
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(text)
            os.replace(tmp_name, path)
        except OSError as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            self._degrade(exc)
            self._memory[digest] = document
        else:
            if self.max_bytes is not None:
                self._maybe_evict(protect=digest)
        self._note_write()

    # -- size accounting and LRU eviction ---------------------------------

    def _entry_files(self) -> list[Path]:
        """Every run/selection entry on disk (manifests and quarantine
        live in their own subdirectories and are neither counted nor
        evicted)."""
        return list(self.root.glob("[0-9a-f][0-9a-f]/*.json"))

    def total_bytes(self) -> int:
        """Bytes currently held by run/selection entries on disk."""
        total = 0
        for path in self._entry_files():
            try:
                total += path.stat().st_size
            except OSError:
                continue  # evicted/quarantined by a concurrent process
        return total

    def _maybe_evict(self, protect: str | None = None) -> None:
        """Drop least-recently-used entries until the budget is met.

        Runs after each successful disk write, so the store's footprint
        only ever overshoots ``max_bytes`` by one entry.  Recency is the
        file mtime (refreshed on every read hit); the just-written
        ``protect`` digest is exempt so an entry larger than the whole
        budget still caches.  Losing a race with a concurrent evictor is
        harmless: the unlink misses and the entry is simply gone.
        """
        entries = []
        total = 0
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime_ns, path.name, path, stat.st_size))
            total += stat.st_size
        if total <= self.max_bytes:
            return
        protected = None if protect is None else f"{protect}.json"
        for _mtime, name, path, size in sorted(entries):
            if total <= self.max_bytes:
                break
            if name == protected:
                continue
            try:
                path.unlink()
            except OSError:
                total -= size  # already gone; stop double-counting it
                continue
            total -= size
            with self._tally_lock:
                self.evictions += 1
                self.evicted_bytes += size
            obs_count("cache.evictions")
            obs_count("cache.evicted_bytes", size)

    # -- typed entry points ----------------------------------------------

    def get_run(self, digest: str) -> AppRunResult | None:
        payload = self._read(digest, "app_run")
        if payload is None:
            return None
        try:
            return load_run(payload)
        except ReproError:
            # Checksum matched but the document does not deserialize: the
            # *writer* was broken, not the disk.  Still quarantine it.
            self._note_hit(-1)
            self._note_miss()
            self._memory.pop(digest, None)
            self.quarantine_entry(digest, "run payload failed to deserialize")
            return None

    def put_run(self, digest: str, result: AppRunResult) -> None:
        self._write(digest, "app_run", dump_run(result))

    def get_selection(self, digest: str) -> KernelSelection | None:
        payload = self._read(digest, "selection")
        if payload is None:
            return None
        try:
            return load_selection(payload)
        except ReproError:
            self._note_hit(-1)
            self._note_miss()
            self._memory.pop(digest, None)
            self.quarantine_entry(
                digest, "selection payload failed to deserialize"
            )
            return None

    def put_selection(self, digest: str, selection: KernelSelection) -> None:
        self._write(digest, "selection", dump_selection(selection))

    # -- sweep manifests --------------------------------------------------

    def _manifest_path(self, sweep_id: str) -> Path:
        return self.root / "manifests" / f"{sweep_id}.json"

    def get_manifest(self, sweep_id: str) -> dict | None:
        """The last recorded manifest of one sweep, or None."""
        overlay = self._memory.get(f"manifest:{sweep_id}")
        if overlay is not None:
            return overlay["payload"]
        try:
            document = json.loads(
                self._manifest_path(sweep_id).read_text(encoding="utf-8")
            )
            if document.get("kind") != "sweep_manifest":
                return None
            return document["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put_manifest(self, sweep_id: str, document: dict) -> None:
        """Record a sweep's completion/quarantine state, atomically."""
        if self.degraded:
            self._memory[f"manifest:{sweep_id}"] = {
                "kind": "sweep_manifest",
                "payload": document,
            }
            return
        path = self._manifest_path(sweep_id)
        text = json.dumps(
            {"kind": "sweep_manifest", "payload": document}, sort_keys=True, indent=2
        )
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                prefix=f".{sweep_id[:8]}.", suffix=".tmp", dir=path.parent
            )
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(text)
            os.replace(tmp_name, path)
        except OSError as exc:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            self._degrade(exc)
            self._memory[f"manifest:{sweep_id}"] = {
                "kind": "sweep_manifest",
                "payload": document,
            }

    # -- semantic-cache index state ----------------------------------------

    def _semcache_path(self, context: str) -> Path:
        return self.root / "semcache" / f"{context[:32]}.json"

    def get_semcache_state(self, context: str) -> dict | None:
        """The similarity index for one harness context, or None.

        Carries the same integrity envelope as run entries (schema stamp
        + payload checksum); a corrupt or foreign-schema state is simply
        discarded — the index is derived data and rebuilds itself.
        """
        overlay = self._memory.get(f"semcache:{context}")
        if overlay is not None:
            return overlay["payload"]
        try:
            document = json.loads(
                self._semcache_path(context).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None
        if (
            document.get("kind") != "semcache_state"
            or document.get("schema") != CACHE_SCHEMA_VERSION
        ):
            return None
        payload = document.get("payload")
        if payload is None or document.get("sha256") != self._payload_checksum(
            payload
        ):
            return None
        return payload

    def put_semcache_state(self, context: str, document: dict) -> None:
        """Persist one context's similarity index, atomically.

        Lives under ``<root>/semcache/`` — outside the two-hex entry
        directories, so like manifests it is never counted against
        ``max_bytes`` nor LRU-evicted.
        """
        envelope = {
            "kind": "semcache_state",
            "schema": CACHE_SCHEMA_VERSION,
            "payload": document,
            "sha256": self._payload_checksum(document),
        }
        if self.degraded:
            self._memory[f"semcache:{context}"] = envelope
            return
        path = self._semcache_path(context)
        text = json.dumps(envelope, sort_keys=True)
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                prefix=f".{context[:8]}.", suffix=".tmp", dir=path.parent
            )
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(text)
            os.replace(tmp_name, path)
        except OSError as exc:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            self._degrade(exc)
            self._memory[f"semcache:{context}"] = envelope

    def semcache_state_mtime(self, context: str) -> float | None:
        """Staleness probe: the state file's mtime (None when absent or
        when the store is degraded to memory)."""
        if self.degraded:
            return None
        try:
            return self._semcache_path(context).stat().st_mtime
        except OSError:
            return None

    # -- prediction-tier calibration state ---------------------------------

    def _predict_path(self, context: str) -> Path:
        return self.root / "predict" / f"{context[:32]}.json"

    def get_predict_state(self, context: str) -> dict | None:
        """The prediction-tier calibration for one harness context.

        Same integrity envelope as run entries; corrupt or foreign-schema
        states are discarded — calibration is derived data that re-warms
        from computed runs.
        """
        overlay = self._memory.get(f"predict:{context}")
        if overlay is not None:
            return overlay["payload"]
        try:
            document = json.loads(
                self._predict_path(context).read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return None
        if (
            document.get("kind") != "predict_state"
            or document.get("schema") != CACHE_SCHEMA_VERSION
        ):
            return None
        payload = document.get("payload")
        if payload is None or document.get("sha256") != self._payload_checksum(
            payload
        ):
            return None
        return payload

    def put_predict_state(self, context: str, document: dict) -> None:
        """Persist one context's prediction calibration, atomically.

        Lives under ``<root>/predict/`` — like manifests and semcache
        state, never counted against ``max_bytes`` nor LRU-evicted.
        """
        envelope = {
            "kind": "predict_state",
            "schema": CACHE_SCHEMA_VERSION,
            "payload": document,
            "sha256": self._payload_checksum(document),
        }
        if self.degraded:
            self._memory[f"predict:{context}"] = envelope
            return
        path = self._predict_path(context)
        text = json.dumps(envelope, sort_keys=True)
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                prefix=f".{context[:8]}.", suffix=".tmp", dir=path.parent
            )
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(text)
            os.replace(tmp_name, path)
        except OSError as exc:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            self._degrade(exc)
            self._memory[f"predict:{context}"] = envelope

    def predict_state_mtime(self, context: str) -> float | None:
        """Staleness probe: the state file's mtime (None when absent or
        when the store is degraded to memory)."""
        if self.degraded:
            return None
        try:
            return self._predict_path(context).stat().st_mtime
        except OSError:
            return None

    def entry_count(self) -> int:
        """Number of run/selection entries currently on disk (manifests
        live under ``manifests/`` and are not counted)."""
        return sum(1 for _ in self.root.glob("[0-9a-f][0-9a-f]/*.json"))

    def __repr__(self) -> str:
        return f"RunCache(root={str(self.root)!r})"


def resolve_run_cache(
    cache_dir: str | Path | None,
    *,
    enabled: bool = True,
    max_bytes: int | None = None,
) -> RunCache | NullRunCache:
    """Build the run cache a harness should use.

    ``enabled=False`` (the CLI's ``--no-cache``) always yields the null
    cache; otherwise ``cache_dir`` selects the store location, with
    ``None`` meaning caching stays off.  ``max_bytes`` (the CLI's
    ``--cache-max-bytes``) bounds the store with LRU eviction.
    """
    if not enabled or cache_dir is None:
        return NullRunCache()
    return RunCache(cache_dir, max_bytes=max_bytes)
