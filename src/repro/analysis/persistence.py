"""Persisting PKA selections (the artifact's ``.pkl`` outputs, as JSON).

The paper's artifact emits, per workload, "pkl files containing the number
of principal groups, the principal kernels associated with each group and
their respective weights" — the hand-off between the characterization
machine (which has the GPU) and the simulation cluster (which does not).

This module serializes a :class:`~repro.core.pka.KernelSelection` to a
self-contained JSON document (embedding the representative launches in
the .pkatrace record format) and restores it, so characterization and
simulation can run in different processes, machines or sessions.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.pka import KernelSelection, SelectedGroup
from repro.core.pks import KernelGroup, PKSResult
from repro.errors import ReproError
from repro.traces.format import _launch_from_record, _launch_record

__all__ = ["SELECTION_FORMAT_VERSION", "dump_selection", "load_selection",
           "save_selection", "read_selection"]

SELECTION_FORMAT_VERSION = 1


def dump_selection(selection: KernelSelection) -> str:
    """Serialize a selection to a JSON document."""
    document = {
        "version": SELECTION_FORMAT_VERSION,
        "workload": selection.workload,
        "total_launches": selection.total_launches,
        "total_warp_instructions": selection.total_warp_instructions,
        "used_two_level": selection.used_two_level,
        "detailed_count": selection.detailed_count,
        "classifier_name": selection.classifier_name,
        "classifier_accuracy": selection.classifier_accuracy,
        "profiling_seconds": selection.profiling_seconds,
        "k": selection.pks.k,
        "projection_error": selection.pks.projection_error,
        "groups": [
            {
                "group_id": group.group_id,
                "weight": group.weight,
                "representative": _launch_record(group.representative),
                "member_launch_ids": list(
                    _pks_group(selection, group.group_id).member_launch_ids
                ),
                "mean_cycles": _pks_group(selection, group.group_id).mean_cycles,
                "representative_cycles": _pks_group(
                    selection, group.group_id
                ).representative_cycles,
            }
            for group in selection.groups
        ],
    }
    return json.dumps(document, sort_keys=True, indent=2)


def _pks_group(selection: KernelSelection, group_id: int) -> KernelGroup:
    for group in selection.pks.groups:
        if group.group_id == group_id:
            return group
    raise ReproError(f"selection has no PKS group {group_id}")


def load_selection(text: str) -> KernelSelection:
    """Restore a selection from its JSON document.

    The restored object carries everything simulation-side consumers need
    (groups, weights, representatives, instruction totals).  The fitted
    clustering artifacts (PCA basis, k-means centres) are
    characterization-side state and are not round-tripped; the restored
    ``pks`` summary exposes group structure and the recorded projection
    error only.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReproError(f"not a selection document: {exc}") from exc
    if document.get("version") != SELECTION_FORMAT_VERSION:
        raise ReproError(
            f"unsupported selection version {document.get('version')!r}"
        )
    try:
        pks_groups = []
        selected_groups = []
        for record in document["groups"]:
            representative = _launch_from_record(record["representative"])
            pks_groups.append(
                KernelGroup(
                    group_id=record["group_id"],
                    representative_launch_id=representative.launch_id,
                    member_launch_ids=tuple(record["member_launch_ids"]),
                    weight=len(record["member_launch_ids"]),
                    mean_cycles=record["mean_cycles"],
                    representative_cycles=record["representative_cycles"],
                )
            )
            selected_groups.append(
                SelectedGroup(
                    group_id=record["group_id"],
                    representative=representative,
                    weight=record["weight"],
                )
            )
        import numpy as np

        labels = np.zeros(0, dtype=np.intp)
        pks = PKSResult(
            k=document["k"],
            groups=tuple(pks_groups),
            labels=labels,
            projection_error=document["projection_error"],
            sweep_errors=(),
            pipeline=None,  # type: ignore[arg-type]
            kmeans=None,  # type: ignore[arg-type]
        )
        return KernelSelection(
            workload=document["workload"],
            total_launches=document["total_launches"],
            total_warp_instructions=document["total_warp_instructions"],
            groups=tuple(selected_groups),
            pks=pks,
            used_two_level=document["used_two_level"],
            detailed_count=document["detailed_count"],
            classifier_name=document["classifier_name"],
            classifier_accuracy=document["classifier_accuracy"],
            profiling_seconds=document["profiling_seconds"],
        )
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed selection document: {exc}") from exc


def save_selection(path: str | Path, selection: KernelSelection) -> Path:
    """Write a selection document to ``path``."""
    path = Path(path)
    path.write_text(dump_selection(selection), encoding="utf-8")
    return path


def read_selection(path: str | Path) -> KernelSelection:
    """Read a selection document from ``path``."""
    return load_selection(Path(path).read_text(encoding="utf-8"))
