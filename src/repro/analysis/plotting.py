"""Terminal plotting: ASCII strip charts for time series.

The reproduction reports numbers rather than pixels, but Figure-5-style
IPC traces are much easier to read as a chart.  ``ascii_timeseries``
renders one; ``render_ipc_series`` specializes it for
:class:`~repro.analysis.figures.IPCSeries` with PKP stop-point markers.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.analysis.figures import IPCSeries

__all__ = ["ascii_timeseries", "render_ipc_series"]


def ascii_timeseries(
    values: Sequence[float],
    *,
    width: int = 72,
    height: int = 14,
    y_label: str = "",
    markers: dict[int, str] | None = None,
) -> str:
    """Render a series as an ASCII strip chart.

    Parameters
    ----------
    values:
        The series; downsampled by bucket means to at most ``width``
        columns.
    width / height:
        Chart dimensions in characters.
    y_label:
        Optional label prefixed to the top axis row.
    markers:
        Column markers (original-series index -> single character) drawn
        on a ruler line under the x axis.
    """
    series = np.asarray(list(values), dtype=np.float64)
    if series.size == 0:
        raise ValueError("cannot plot an empty series")
    if width < 2 or height < 2:
        raise ValueError("width and height must be >= 2")

    bucket = max(1, int(np.ceil(series.size / width)))
    n_cols = int(np.ceil(series.size / bucket))
    columns = np.array(
        [series[i * bucket : (i + 1) * bucket].mean() for i in range(n_cols)]
    )
    top = float(columns.max())
    if top <= 0:
        top = 1.0

    rows = []
    for level in range(height, 0, -1):
        threshold = top * level / height
        line = "".join("#" if value >= threshold else " " for value in columns)
        rows.append(f"{threshold:9.2f} |{line}")
    rows.append(" " * 10 + "+" + "-" * n_cols)

    if markers:
        ruler = [" "] * n_cols
        for index, char in markers.items():
            column = min(n_cols - 1, max(0, index // bucket))
            ruler[column] = (char or "?")[0]
        rows.append(" " * 11 + "".join(ruler))
    if y_label:
        rows.insert(0, f"{y_label} (max {top:.2f})")
    return "\n".join(rows)


_STOP_MARKERS = {2.5: "A", 0.25: "B", 0.025: "C"}


def render_ipc_series(series: IPCSeries, *, width: int = 72, height: int = 14) -> str:
    """Figure-5-style chart of one kernel's IPC with PKP stop markers."""
    markers: dict[int, str] = {}
    cycles = np.asarray(series.cycles)
    for threshold, stop in series.stop_points.items():
        if stop is None:
            continue
        index = int(np.searchsorted(cycles, stop))
        markers[min(index, len(cycles) - 1)] = _STOP_MARKERS.get(threshold, "?")
    chart = ascii_timeseries(
        series.ipc,
        width=width,
        height=height,
        y_label=f"IPC, {series.workload}/{series.kernel_name}",
        markers=markers,
    )
    legend = "   ".join(
        f"{marker}: s={threshold}"
        + (" (never fires)" if series.stop_points.get(threshold) is None else "")
        for threshold, marker in _STOP_MARKERS.items()
    )
    return f"{chart}\n{legend}"
