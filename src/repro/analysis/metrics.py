"""Error and speedup metrics used throughout the evaluation.

The paper reports absolute percentage cycle/IPC error versus silicon,
speedups as ratios of (simulated or executed) time, geometric means over
workloads, and mean absolute percentage error for the relative-accuracy
case studies (which the paper's figures label "MAE").
"""

from __future__ import annotations

import math
import warnings
from collections.abc import Iterable

import numpy as np

from repro.obs import obs_count

__all__ = [
    "MetricDiagnosticWarning",
    "ABS_PCT_ERROR_CAP",
    "abs_pct_error",
    "geomean",
    "mean",
    "mae",
    "mape",
    "speedup",
    "format_duration",
]


class MetricDiagnosticWarning(UserWarning):
    """A metric received degenerate inputs and returned a capped value."""


#: Error reported when the reference is zero (or an input is non-finite)
#: but the estimate is not: the symmetric-MAPE ceiling.  A defined, finite
#: cap keeps downstream means/tables meaningful where ``inf`` would poison
#: every aggregate it touched.
ABS_PCT_ERROR_CAP = 200.0


def abs_pct_error(estimate: float, reference: float) -> float:
    """Absolute percentage error of ``estimate`` versus ``reference``.

    A zero-cycle (or otherwise zero) reference makes the ratio undefined;
    instead of returning ``inf`` — which would silently poison any mean or
    geomean built on top — this returns the symmetric-MAPE cap
    :data:`ABS_PCT_ERROR_CAP` and emits a :class:`MetricDiagnosticWarning`.
    Non-finite inputs get the same treatment.
    """
    if not (math.isfinite(estimate) and math.isfinite(reference)):
        warnings.warn(
            f"abs_pct_error got non-finite input (estimate={estimate!r}, "
            f"reference={reference!r}); returning the {ABS_PCT_ERROR_CAP}% cap",
            MetricDiagnosticWarning,
            stacklevel=2,
        )
        return ABS_PCT_ERROR_CAP
    if reference == 0:
        if estimate == 0:
            return 0.0
        warnings.warn(
            f"abs_pct_error against a zero reference (estimate={estimate!r}); "
            f"returning the {ABS_PCT_ERROR_CAP}% cap instead of inf",
            MetricDiagnosticWarning,
            stacklevel=2,
        )
        return ABS_PCT_ERROR_CAP
    return abs(estimate - reference) / abs(reference) * 100.0


def speedup(reference_cost: float, method_cost: float) -> float:
    """How many times cheaper ``method_cost`` is than ``reference_cost``.

    A non-positive method cost makes the ratio undefined; this returns
    ``inf`` but — because :func:`geomean`'s finite filter would then drop
    the cell *silently*, skewing aggregates — it also emits a
    :class:`MetricDiagnosticWarning` (the same contract as
    :func:`abs_pct_error`) and bumps the ``metrics.nonpositive_cost_cells``
    counter so the drop shows up in the run summary.
    """
    if method_cost <= 0:
        warnings.warn(
            f"speedup against a non-positive method cost ({method_cost!r}); "
            "returning inf, which geomean will drop from aggregates",
            MetricDiagnosticWarning,
            stacklevel=2,
        )
        obs_count("metrics.nonpositive_cost_cells")
        return float("inf")
    return reference_cost / method_cost


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, ignoring non-positive/non-finite entries.

    Dropped entries are tallied on the ``metrics.geomean_dropped`` counter
    so runs that silently lose cells are visible in the run summary.
    """
    array = np.asarray(list(values), dtype=np.float64)
    kept = array[np.isfinite(array) & (array > 0)]
    dropped = int(array.size - kept.size)
    if dropped:
        obs_count("metrics.geomean_dropped", dropped)
    if kept.size == 0:
        return 0.0
    return float(np.exp(np.log(kept).mean()))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean, ignoring non-finite entries."""
    array = np.asarray(list(values), dtype=np.float64)
    array = array[np.isfinite(array)]
    if array.size == 0:
        return 0.0
    return float(array.mean())


def mape(estimates: Iterable[float], references: Iterable[float]) -> float:
    """Mean absolute percentage error between paired sequences.

    The sequences must be the same length — a silent ``zip`` truncation
    here would quietly average over a subset of the cells, so a mismatch
    raises :class:`ValueError` instead.
    """
    estimate_list = list(estimates)
    reference_list = list(references)
    if len(estimate_list) != len(reference_list):
        raise ValueError(
            f"mape requires paired sequences of equal length: got "
            f"{len(estimate_list)} estimates vs {len(reference_list)} references"
        )
    if not estimate_list:
        return 0.0
    return mean(
        abs_pct_error(estimate, ref)
        for estimate, ref in zip(estimate_list, reference_list, strict=True)
    )


def mae(estimates: Iterable[float], references: Iterable[float]) -> float:
    """Deprecated alias of :func:`mape`.

    Historically misnamed: despite "mean absolute error" it always computed
    the mean absolute *percentage* error. Use :func:`mape`.
    """
    warnings.warn(
        "repro.analysis.metrics.mae is deprecated: it computes the mean "
        "absolute *percentage* error; call mape instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return mape(estimates, references)


_UNITS = [
    ("century", 100 * 365.25 * 24 * 3600.0),
    ("decade", 10 * 365.25 * 24 * 3600.0),
    ("year", 365.25 * 24 * 3600.0),
    ("month", 30.44 * 24 * 3600.0),
    ("week", 7 * 24 * 3600.0),
    ("day", 24 * 3600.0),
    ("h", 3600.0),
    ("min", 60.0),
    ("s", 1.0),
    ("ms", 1e-3),
    ("us", 1e-6),
]


#: Abbreviated units are never pluralized ("14 h", not "14 hs").
_ABBREVIATED_UNITS = frozenset({"h", "min", "s", "ms", "us"})


def format_duration(seconds: float) -> str:
    """Human-scale duration ("3.2 centuries", "14 h", "820 us").

    Spelled-out units pluralize whenever the rendered value is not exactly
    1 ("1.5 weeks", "1.0 week"); abbreviated units never do.
    """
    if seconds <= 0:
        return "0 s"
    for unit, size in _UNITS:
        if seconds >= size:
            rendered = f"{seconds / size:.1f}"
            if unit in _ABBREVIATED_UNITS or rendered == "1.0":
                word = unit
            elif unit.endswith("y") and unit[-2] not in "aeiou":
                # consonant + y pluralizes to -ies ("centuries", not
                # "centurys"); vowel + y just takes an s ("days").
                word = f"{unit[:-1]}ies"
            else:
                word = f"{unit}s"
            return f"{rendered} {word}"
    return f"{seconds:.2g} s"
