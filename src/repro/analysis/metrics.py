"""Error and speedup metrics used throughout the evaluation.

The paper reports absolute percentage cycle/IPC error versus silicon,
speedups as ratios of (simulated or executed) time, geometric means over
workloads, and mean absolute error (MAE) for the relative-accuracy case
studies.
"""

from __future__ import annotations

import math
import warnings
from collections.abc import Iterable

import numpy as np

__all__ = [
    "MetricDiagnosticWarning",
    "ABS_PCT_ERROR_CAP",
    "abs_pct_error",
    "geomean",
    "mean",
    "mae",
    "speedup",
    "format_duration",
]


class MetricDiagnosticWarning(UserWarning):
    """A metric received degenerate inputs and returned a capped value."""


#: Error reported when the reference is zero (or an input is non-finite)
#: but the estimate is not: the symmetric-MAPE ceiling.  A defined, finite
#: cap keeps downstream means/tables meaningful where ``inf`` would poison
#: every aggregate it touched.
ABS_PCT_ERROR_CAP = 200.0


def abs_pct_error(estimate: float, reference: float) -> float:
    """Absolute percentage error of ``estimate`` versus ``reference``.

    A zero-cycle (or otherwise zero) reference makes the ratio undefined;
    instead of returning ``inf`` — which would silently poison any mean or
    geomean built on top — this returns the symmetric-MAPE cap
    :data:`ABS_PCT_ERROR_CAP` and emits a :class:`MetricDiagnosticWarning`.
    Non-finite inputs get the same treatment.
    """
    if not (math.isfinite(estimate) and math.isfinite(reference)):
        warnings.warn(
            f"abs_pct_error got non-finite input (estimate={estimate!r}, "
            f"reference={reference!r}); returning the {ABS_PCT_ERROR_CAP}% cap",
            MetricDiagnosticWarning,
            stacklevel=2,
        )
        return ABS_PCT_ERROR_CAP
    if reference == 0:
        if estimate == 0:
            return 0.0
        warnings.warn(
            f"abs_pct_error against a zero reference (estimate={estimate!r}); "
            f"returning the {ABS_PCT_ERROR_CAP}% cap instead of inf",
            MetricDiagnosticWarning,
            stacklevel=2,
        )
        return ABS_PCT_ERROR_CAP
    return abs(estimate - reference) / abs(reference) * 100.0


def speedup(reference_cost: float, method_cost: float) -> float:
    """How many times cheaper ``method_cost`` is than ``reference_cost``."""
    if method_cost <= 0:
        return float("inf")
    return reference_cost / method_cost


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, ignoring non-positive/non-finite entries."""
    array = np.asarray(list(values), dtype=np.float64)
    array = array[np.isfinite(array) & (array > 0)]
    if array.size == 0:
        return 0.0
    return float(np.exp(np.log(array).mean()))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean, ignoring non-finite entries."""
    array = np.asarray(list(values), dtype=np.float64)
    array = array[np.isfinite(array)]
    if array.size == 0:
        return 0.0
    return float(array.mean())


def mae(estimates: Iterable[float], references: Iterable[float]) -> float:
    """Mean absolute percentage error between paired sequences."""
    pairs = list(zip(list(estimates), list(references)))
    if not pairs:
        return 0.0
    return mean(abs_pct_error(estimate, ref) for estimate, ref in pairs)


_UNITS = [
    ("century", 100 * 365.25 * 24 * 3600.0),
    ("decade", 10 * 365.25 * 24 * 3600.0),
    ("year", 365.25 * 24 * 3600.0),
    ("month", 30.44 * 24 * 3600.0),
    ("week", 7 * 24 * 3600.0),
    ("day", 24 * 3600.0),
    ("h", 3600.0),
    ("min", 60.0),
    ("s", 1.0),
    ("ms", 1e-3),
    ("us", 1e-6),
]


def format_duration(seconds: float) -> str:
    """Human-scale duration ("3.2 centuries", "14 h", "820 us")."""
    if seconds <= 0:
        return "0 s"
    for unit, size in _UNITS:
        if seconds >= size:
            value = seconds / size
            plural = "s" if unit not in ("h", "min", "s", "ms", "us") and value >= 2 else ""
            return f"{value:.1f} {unit}{plural}"
    return f"{seconds:.2g} s"
