"""Workload inspection: the bottleneck/mix breakdown a profiler would give.

``inspect_workload`` condenses one application into the summary an
architect reads before deciding how to sample it: launch counts, distinct
kernels, where the cycles go (compute / memory / latency, per the
roofline), the dynamic instruction-mix split, grid-size statistics and
trace footprint.  Backs the ``pka inspect`` command.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.gpu.architectures import GPUConfig, VOLTA_V100
from repro.gpu.kernels import KernelLaunch
from repro.sim.perfmodel import analyze_kernel
from repro.sim.silicon import SiliconExecutor
from repro.traces.format import estimated_trace_bytes

__all__ = ["WorkloadProfile", "inspect_workload"]

_MIX_CLASSES = (
    "fp_ops",
    "int_ops",
    "tensor_ops",
    "global_loads",
    "global_stores",
    "local_loads",
    "shared_loads",
    "shared_stores",
    "global_atomics",
    "control_ops",
)


@dataclass(frozen=True)
class WorkloadProfile:
    """One workload's inspection summary.

    Attributes
    ----------
    workload / launches / distinct_kernels:
        Identity and size.
    total_cycles / silicon_seconds:
        Ground-truth totals on the inspected GPU.
    bottleneck_cycle_share:
        Fraction of kernel cycles spent under each roofline bound
        ("compute" / "memory" / "latency"), cycle-weighted.
    mix_share:
        Fraction of dynamic thread instructions per opcode class.
    grid_stats:
        (min, median, max) thread blocks per launch.
    sub_wave_fraction:
        Share of launches whose grid fits in one occupancy wave.
    irregular_fraction:
        Share of launches with block-duration cv >= 0.3.
    trace_bytes:
        Estimated full instruction-trace footprint.
    """

    workload: str
    launches: int
    distinct_kernels: int
    total_cycles: float
    silicon_seconds: float
    bottleneck_cycle_share: dict[str, float] = field(default_factory=dict)
    mix_share: dict[str, float] = field(default_factory=dict)
    grid_stats: tuple[int, int, int] = (0, 0, 0)
    sub_wave_fraction: float = 0.0
    irregular_fraction: float = 0.0
    trace_bytes: float = 0.0

    @property
    def dominant_bottleneck(self) -> str:
        return max(self.bottleneck_cycle_share, key=self.bottleneck_cycle_share.get)


def inspect_workload(
    workload_name: str,
    launches: Sequence[KernelLaunch],
    gpu: GPUConfig = VOLTA_V100,
    silicon: SiliconExecutor | None = None,
) -> WorkloadProfile:
    """Build the inspection summary of one application on one GPU."""
    if not launches:
        raise ValueError("cannot inspect an empty workload")
    silicon = silicon if silicon is not None else SiliconExecutor(gpu)

    bottleneck_cycles: dict[str, float] = {"compute": 0.0, "memory": 0.0, "latency": 0.0}
    mix_totals = dict.fromkeys(_MIX_CLASSES, 0.0)
    grids = np.empty(len(launches), dtype=np.int64)
    sub_wave = 0
    irregular = 0
    total_cycles = 0.0
    trace_bytes = 0.0
    perf_cache: dict[tuple[int, int], object] = {}
    distinct_specs: set[int] = set()

    for index, launch in enumerate(launches):
        signature = launch.spec.signature()
        distinct_specs.add(signature)
        key = (signature, launch.grid_blocks)
        perf = perf_cache.get(key)
        if perf is None:
            perf = analyze_kernel(launch, gpu)
            perf_cache[key] = perf
        cycles = silicon.kernel_cycles(launch)
        total_cycles += cycles
        bottleneck_cycles[perf.bottleneck] += cycles
        for class_name in _MIX_CLASSES:
            mix_totals[class_name] += (
                getattr(launch.spec.mix, class_name) * launch.total_threads
            )
        grids[index] = launch.grid_blocks
        if launch.grid_blocks <= perf.occupancy.wave_size:
            sub_wave += 1
        if launch.spec.duration_cv >= 0.3:
            irregular += 1
        trace_bytes += estimated_trace_bytes(launch)

    mix_sum = sum(mix_totals.values()) or 1.0
    cycle_sum = sum(bottleneck_cycles.values()) or 1.0
    return WorkloadProfile(
        workload=workload_name,
        launches=len(launches),
        distinct_kernels=len(distinct_specs),
        total_cycles=total_cycles,
        silicon_seconds=gpu.cycles_to_seconds(total_cycles),
        bottleneck_cycle_share={
            name: cycles / cycle_sum for name, cycles in bottleneck_cycles.items()
        },
        mix_share={
            name: value / mix_sum
            for name, value in mix_totals.items()
            if value > 0
        },
        grid_stats=(
            int(grids.min()),
            int(np.median(grids)),
            int(grids.max()),
        ),
        sub_wave_fraction=sub_wave / len(launches),
        irregular_fraction=irregular / len(launches),
        trace_bytes=trace_bytes,
    )
