"""Row builders for the paper's tables (Table 3 and Table 4).

Like :mod:`repro.analysis.figures`, these functions return plain data; the
benchmark harness formats and asserts them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.harness import EvaluationHarness, WorkloadEvaluation
from repro.analysis.metrics import abs_pct_error, speedup
from repro.gpu.architectures import GENERATIONS

__all__ = ["Table3Row", "Table4Row", "table3_pks_examples", "table4_rows"]


@dataclass(frozen=True)
class Table3Row:
    """PKS output example: selected kernel ids and group sizes."""

    suite: str
    workload: str
    selected_kernel_ids: tuple[int, ...]
    group_counts: tuple[int, ...]


def table3_pks_examples(
    harness: EvaluationHarness,
    workloads: tuple[str, ...] = (
        "gauss_208",
        "bfs65536",
        "histo",
        "cutcp",
        "fdtd2d",
        "gramschmidt",
        "cutlass_sgemm_4096x4096x4096",
        "cutlass_wgemm_2560x128x2560",
    ),
) -> list[Table3Row]:
    """Selected kernel ids and per-group counts for the showcase workloads."""
    rows = []
    for name in workloads:
        evaluation = harness.evaluation(name)
        selection = evaluation.selection()
        ordered = sorted(
            selection.groups, key=lambda group: group.representative.launch_id
        )
        rows.append(
            Table3Row(
                suite=evaluation.spec.suite,
                workload=name,
                selected_kernel_ids=tuple(
                    group.representative.launch_id for group in ordered
                ),
                group_counts=tuple(group.weight for group in ordered),
            )
        )
    return rows


@dataclass(frozen=True)
class Table4Row:
    """One workload's full evaluation record (a row of the paper's Table 4).

    ``None`` marks the paper's "*" cells: runs that are impossible
    (MLPerf beyond the RTX 2060's memory, full simulation of MLPerf) or
    excluded for kernel-count mismatches.  Errors are percentages,
    speedups are ratios, times are hours.
    """

    workload: str
    suite: str
    silicon_error: dict[str, float | None]
    silicon_speedup: dict[str, float | None]
    sim_error: float | None
    pks_error: float | None
    pks_sim_hours: float | None
    pks_speedup: float | None
    pka_error: float | None
    pka_sim_hours: float | None
    pka_speedup: float | None
    dram_util_full: float | None
    dram_util_pka: float | None


def table4_rows(
    harness: EvaluationHarness, suite: str | None = None
) -> list[Table4Row]:
    """Build every Table-4 row (optionally restricted to one suite)."""
    return [
        _table4_row(evaluation)
        for evaluation in harness.evaluations(suite)
    ]


def _table4_row(evaluation: WorkloadEvaluation) -> Table4Row:
    spec = evaluation.spec

    silicon_error: dict[str, float | None] = {}
    silicon_speedup: dict[str, float | None] = {}
    for generation in GENERATIONS:
        if spec.excluded:
            silicon_error[generation] = None
            silicon_speedup[generation] = None
            continue
        truth = evaluation.silicon(generation)
        projected = evaluation.pks_silicon(generation)
        if truth is None or projected is None:
            silicon_error[generation] = None
            silicon_speedup[generation] = None
        else:
            silicon_error[generation] = abs_pct_error(
                projected.total_cycles, truth.total_cycles
            )
            silicon_speedup[generation] = speedup(
                truth.total_cycles, projected.simulated_cycles
            )

    truth_volta = None if spec.excluded else evaluation.silicon("volta")
    full = None if spec.excluded else evaluation.full_sim()
    pks = None if spec.excluded else evaluation.pks_sim()
    pka = None if spec.excluded else evaluation.pka_sim()

    def error_vs_silicon(run) -> float | None:
        if run is None or truth_volta is None:
            return None
        return abs_pct_error(run.total_cycles, truth_volta.total_cycles)

    def sim_speedup(run) -> float | None:
        if run is None or full is None:
            return None
        return speedup(full.simulated_cycles, run.simulated_cycles)

    return Table4Row(
        workload=spec.name,
        suite=spec.suite,
        silicon_error=silicon_error,
        silicon_speedup=silicon_speedup,
        sim_error=error_vs_silicon(full),
        pks_error=error_vs_silicon(pks),
        pks_sim_hours=pks.sim_wall_hours if pks else None,
        pks_speedup=sim_speedup(pks),
        pka_error=error_vs_silicon(pka),
        pka_sim_hours=pka.sim_wall_hours if pka else None,
        pka_speedup=sim_speedup(pka),
        dram_util_full=full.dram_util_percent if full else None,
        dram_util_pka=pka.dram_util_percent if pka else None,
    )
