"""Architecture sweeps: price one selection across every GPU.

The workflow the paper's Section 5.3 motivates: select principal kernels
once (on Volta), then ask "how would this application run on each card I
care about?" — without re-profiling and without full simulation.  Backs
the ``pka project`` command.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.pka import KernelSelection, PrincipalKernelAnalysis
from repro.gpu.architectures import ALL_GPUS, GPUConfig
from repro.sim.silicon import SiliconExecutor

__all__ = ["ArchitectureProjection", "sweep_architectures"]


@dataclass(frozen=True)
class ArchitectureProjection:
    """One GPU's projected execution of a selection."""

    gpu: GPUConfig
    projected_cycles: float
    projected_seconds: float
    dram_util_percent: float

    @property
    def gpu_name(self) -> str:
        return self.gpu.name


def sweep_architectures(
    selection: KernelSelection,
    gpus: Sequence[GPUConfig] = ALL_GPUS,
    pka: PrincipalKernelAnalysis | None = None,
) -> list[ArchitectureProjection]:
    """Project a selection's application onto each GPU's silicon model.

    Returns projections sorted fastest-first.  Only the selection's
    representative kernels are priced — the whole point of carrying a
    :class:`KernelSelection` across machines.
    """
    pka = pka if pka is not None else PrincipalKernelAnalysis()
    projections = []
    for gpu in gpus:
        executor = SiliconExecutor(gpu)
        run = pka.project_silicon(selection, executor)
        projections.append(
            ArchitectureProjection(
                gpu=gpu,
                projected_cycles=run.total_cycles,
                projected_seconds=run.silicon_seconds,
                dram_util_percent=run.dram_util_percent,
            )
        )
    projections.sort(key=lambda projection: projection.projected_seconds)
    return projections
