"""Program-phase detection over the kernel-launch sequence.

CPU sampling classics (Sherwood et al., cited in the paper's §6) showed
that programs move through *phases* of homogeneous behaviour.  At GPU
granularity the same structure appears across kernel *launches*: an
initialization burst, alternating compute/communication epochs, a
shrinking-grid tail.  Detecting those phases explains exactly why the
"first N instructions" practice fails (its prefix covers only the first
phase) and gives PKS groupings a temporal complement.

The detector walks the launch sequence with the same log-standardized
Table-2 feature vectors PKS clusters, closing a phase whenever the
windowed mean feature vector moves more than ``threshold`` standardized
units from the phase's running centroid.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.gpu.kernels import KernelLaunch
from repro.mlkit import StandardScaler, log_compress
from repro.profiling.detailed import collect_counters

__all__ = ["Phase", "PhaseAnalysis", "detect_phases"]


@dataclass(frozen=True)
class Phase:
    """One contiguous run of behaviourally similar kernel launches."""

    phase_id: int
    start_launch: int
    end_launch: int  # exclusive
    thread_instructions: float

    @property
    def launches(self) -> int:
        return self.end_launch - self.start_launch


@dataclass(frozen=True)
class PhaseAnalysis:
    """The phase decomposition of one application."""

    workload: str
    phases: tuple[Phase, ...]
    total_thread_instructions: float

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    def phase_at_instruction(self, instruction_budget: float) -> int:
        """Index of the phase in which a prefix of the given size ends.

        This is the "where does the 1B-instruction prefix stop?"
        question; an answer of 0 for a multi-phase app means the prefix
        saw none of the application's later behaviour.
        """
        consumed = 0.0
        for index, phase in enumerate(self.phases):
            consumed += phase.thread_instructions
            if consumed >= instruction_budget:
                return index
        return len(self.phases) - 1

    def coverage_of_prefix(self, instruction_budget: float) -> float:
        """Fraction of phases a prefix of the given size touches."""
        if not self.phases:
            return 0.0
        return (self.phase_at_instruction(instruction_budget) + 1) / len(
            self.phases
        )

    def prefix_representativeness(self, instruction_budget: float) -> float:
        """How well a prefix's phase mix matches the whole application.

        One minus the total-variation distance between the phase-share
        distribution of the first ``instruction_budget`` thread
        instructions and that of the full app: 1.0 means the prefix is a
        perfectly proportioned miniature; values near 0 mean it spends
        its budget in behaviour the application barely contains (the
        cudnnFind-probe situation that wrecks 1B truncation).
        """
        if not self.phases or self.total_thread_instructions <= 0:
            return 1.0
        budget = min(instruction_budget, self.total_thread_instructions)
        if budget <= 0:
            return 0.0
        distance = 0.0
        consumed = 0.0
        for phase in self.phases:
            in_prefix = max(0.0, min(phase.thread_instructions, budget - consumed))
            consumed += phase.thread_instructions
            prefix_share = in_prefix / budget
            app_share = (
                phase.thread_instructions / self.total_thread_instructions
            )
            distance += abs(prefix_share - app_share)
        return 1.0 - distance / 2.0


def detect_phases(
    workload_name: str,
    launches: Sequence[KernelLaunch],
    *,
    window: int = 8,
    threshold: float = 1.5,
) -> PhaseAnalysis:
    """Segment a launch sequence into behavioural phases.

    Parameters
    ----------
    window:
        Launches averaged per step (smooths single-kernel excursions the
        way Sherwood's interval granularity does).
    threshold:
        Standardized-feature distance from the phase centroid beyond
        which a new phase opens.
    """
    if not launches:
        raise ValueError("cannot phase-analyze an empty workload")
    if window < 1:
        raise ValueError("window must be >= 1")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    # Short applications need finer steps or a 4-launch warm-up phase
    # disappears inside the first window.
    window = max(1, min(window, len(launches) // 6))

    counters = np.stack(
        [np.asarray(collect_counters(launch)) for launch in launches]
    )
    features = StandardScaler().fit_transform(log_compress(counters))

    phases: list[Phase] = []
    phase_start = 0
    centroid = features[0].copy()
    members = 1

    def close_phase(end: int) -> None:
        insts = sum(
            launch.thread_instructions for launch in launches[phase_start:end]
        )
        phases.append(
            Phase(
                phase_id=len(phases),
                start_launch=phase_start,
                end_launch=end,
                thread_instructions=insts,
            )
        )

    step = max(1, window)
    index = 1
    while index < len(launches):
        stop = min(index + step, len(launches))
        window_mean = features[index:stop].mean(axis=0)
        distance = float(np.linalg.norm(window_mean - centroid))
        if distance > threshold:
            close_phase(index)
            phase_start = index
            centroid = window_mean.copy()
            members = stop - index
        else:
            # Fold the window into the running centroid.
            total = members + (stop - index)
            centroid = (centroid * members + window_mean * (stop - index)) / total
            members = total
        index = stop
    close_phase(len(launches))
    phases = _merge_fragments(phases, window)

    return PhaseAnalysis(
        workload=workload_name,
        phases=tuple(phases),
        total_thread_instructions=sum(
            launch.thread_instructions for launch in launches
        ),
    )


def _merge_fragments(phases: list[Phase], window: int) -> list[Phase]:
    """Fold transition fragments (shorter than one window) into a neighbour.

    A detection window straddling a phase boundary produces a short mixed
    fragment; it belongs with whichever side follows it (or precedes it,
    for a trailing fragment).
    """
    merged: list[Phase] = []
    pending: Phase | None = None
    for phase in phases:
        if pending is not None:
            phase = Phase(
                phase_id=0,
                start_launch=pending.start_launch,
                end_launch=phase.end_launch,
                thread_instructions=pending.thread_instructions
                + phase.thread_instructions,
            )
            pending = None
        if phase.launches <= window:
            pending = phase
        else:
            merged.append(phase)
    if pending is not None:
        if merged:
            last = merged.pop()
            merged.append(
                Phase(
                    phase_id=0,
                    start_launch=last.start_launch,
                    end_launch=pending.end_launch,
                    thread_instructions=last.thread_instructions
                    + pending.thread_instructions,
                )
            )
        else:
            merged.append(pending)
    return [
        Phase(
            phase_id=index,
            start_launch=phase.start_launch,
            end_launch=phase.end_launch,
            thread_instructions=phase.thread_instructions,
        )
        for index, phase in enumerate(merged)
    ]
