"""Evaluation layer: metrics, the memoizing harness, and the table/figure
builders that regenerate the paper's evaluation section."""

from repro.analysis.figures import (
    IPCSeries,
    MethodAggregate,
    PredictTierAccuracy,
    RelativeAccuracy,
    figure1_time_landscape,
    figure4_group_composition,
    figure5_ipc_series,
    figure6_simtime_reduction,
    figure7_speedups,
    figure8_errors,
    figure9_volta_over_turing,
    figure10_half_sms,
    figure_predict_tiers,
)
from repro.analysis.harness import CellFailure, EvaluationHarness, WorkloadEvaluation
from repro.analysis.inspect import WorkloadProfile, inspect_workload
from repro.analysis.phases import Phase, PhaseAnalysis, detect_phases
from repro.analysis.persistence import (
    CacheDegradedWarning,
    NullRunCache,
    RunCache,
    RunKey,
    load_selection,
    read_selection,
    resolve_run_cache,
    save_selection,
)
from repro.analysis.plotting import ascii_timeseries, render_ipc_series
from repro.analysis.report import render_report, write_report
from repro.analysis.semcache import (
    SemanticCache,
    SemanticCacheConfig,
    TransferResult,
)
from repro.analysis.sweeps import ArchitectureProjection, sweep_architectures
from repro.analysis.metrics import (
    ABS_PCT_ERROR_CAP,
    MetricDiagnosticWarning,
    abs_pct_error,
    format_duration,
    geomean,
    mae,
    mape,
    mean,
    speedup,
)
from repro.analysis.tables import (
    Table3Row,
    Table4Row,
    table3_pks_examples,
    table4_rows,
)

__all__ = [
    "ABS_PCT_ERROR_CAP",
    "CacheDegradedWarning",
    "CellFailure",
    "MetricDiagnosticWarning",
    "EvaluationHarness",
    "IPCSeries",
    "MethodAggregate",
    "NullRunCache",
    "Phase",
    "PhaseAnalysis",
    "PredictTierAccuracy",
    "RelativeAccuracy",
    "RunCache",
    "RunKey",
    "SemanticCache",
    "SemanticCacheConfig",
    "TransferResult",
    "Table3Row",
    "Table4Row",
    "WorkloadEvaluation",
    "WorkloadProfile",
    "ArchitectureProjection",
    "abs_pct_error",
    "ascii_timeseries",
    "detect_phases",
    "figure1_time_landscape",
    "figure4_group_composition",
    "figure5_ipc_series",
    "figure6_simtime_reduction",
    "figure7_speedups",
    "figure8_errors",
    "figure9_volta_over_turing",
    "figure10_half_sms",
    "figure_predict_tiers",
    "format_duration",
    "geomean",
    "inspect_workload",
    "load_selection",
    "mae",
    "mape",
    "mean",
    "read_selection",
    "render_ipc_series",
    "render_report",
    "resolve_run_cache",
    "save_selection",
    "sweep_architectures",
    "speedup",
    "write_report",
    "table3_pks_examples",
    "table4_rows",
]
