"""Shared evaluation harness: every method on every workload, memoized.

The benchmark suite regenerates ten-plus tables and figures that all draw
on the same underlying runs (silicon truth per GPU, PKA characterization
on Volta, full/PKS/PKA/1B/TBPoint simulation).  The harness runs each of
those at most once per workload per GPU and caches the results, so the
whole benchmark suite costs one corpus sweep.

Two optional layers extend the in-memory memoization:

* an **on-disk run cache** (:class:`~repro.analysis.persistence.RunCache`)
  shared by every process that points at the same directory — a repeated
  benchmark sweep, a CLI session, a worker pool — keyed by a content
  digest of everything a cell depends on;
* an **execution backend** (:mod:`repro.sim.parallel`): per-kernel
  simulation inside each cell fans out through it, and
  :meth:`EvaluationHarness.evaluate_cells` dispatches whole independent
  workload × method × GPU cells across worker processes with a
  deterministic reduce.

Both layers are bit-exact: a cache hit or a parallel run returns exactly
what a cold serial run would have computed.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.persistence import (
    NullRunCache,
    RunCache,
    RunKey,
    fingerprint,
    launches_digest,
    resolve_run_cache,
    run_digest,
)
from repro.analysis.semcache import (
    SemanticCache,
    SemanticCacheConfig,
    TransferResult,
    resolve_semcache_config,
)
from repro.predict import (
    PredictConfig,
    PredictTiers,
    PredictedResult,
    resolve_predict_config,
)
from repro.baselines.first_n import run_first_n_instructions
from repro.baselines.tbpoint import TBPointSelection, select_tbpoint, simulate_tbpoint
from repro.core.config import PKAConfig
from repro.core.pka import KernelSelection, PrincipalKernelAnalysis
from repro.core.validation import resolve_mode
from repro.errors import InputValidationError, ReproError, TaskFailureError
from repro.gpu.architectures import GENERATIONS, GPUConfig, VOLTA_V100, get_gpu
from repro.mlkit import ClusteringCapacityError
from repro.obs import get_tracer, obs_count, obs_span
from repro.profiling.detailed import DetailedProfiler
from repro.sim.faults import FaultPlan
from repro.sim.parallel import (
    ExecutionBackend,
    FaultPolicy,
    TaskFailure,
    TaskOutcome,
    _run_tasks_inline,
    resolve_backend,
)
from repro.sim.silicon import SiliconExecutor
from repro.sim.simulator import ModelErrorConfig, Simulator
from repro.sim.stats import AppRunResult
from repro.workloads.spec import WorkloadSpec, get_workload, iter_workloads

__all__ = ["CellFailure", "WorkloadEvaluation", "EvaluationHarness"]

#: Methods evaluate_cells understands, and whether they take a GPU.
_CELL_METHODS = (
    "silicon",
    "pks_silicon",
    "selection",
    "full_sim",
    "pks_sim",
    "pka_sim",
    "pka_sim_faithful",
    "first_1b",
    "tbpoint_sim",
)


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one evaluation cell that could not be computed.

    Returned by :meth:`EvaluationHarness.evaluate_cells` (and
    :meth:`WorkloadEvaluation.compute_cell` with ``strict=False``) in
    place of the cell's result, so one poison cell no longer aborts — or
    discards — an entire workload × method × GPU sweep.  ``kind`` is the
    runtime's classification (``"exception"``, ``"timeout"`` or
    ``"crash"``); ``error_type``/``message`` describe the last
    underlying error; ``attempts`` counts how many tries the
    :class:`~repro.sim.parallel.FaultPolicy` allowed before quarantine.
    """

    workload: str
    method: str
    gpu: str | None
    kind: str
    error_type: str
    message: str
    attempts: int = 1

    @property
    def label(self) -> str:
        return cell_label(self.workload, self.method, self.gpu)

    def to_error(self) -> TaskFailureError:
        """The typed exception equivalent (what ``strict`` mode raises)."""
        return TaskFailure(
            index=-1,
            label=self.label,
            kind=self.kind,
            error_type=self.error_type,
            message=self.message,
            attempts=self.attempts,
        ).to_error()

    def to_record(self) -> dict:
        """A JSON-ready manifest row."""
        record = dataclasses.asdict(self)
        record["label"] = self.label
        return record


def cell_label(workload: str, method: str, gpu: GPUConfig | str | None) -> str:
    """Human-readable identity of one sweep cell, used in manifests."""
    name = gpu.name if isinstance(gpu, GPUConfig) else gpu
    return f"{workload}:{method}" + (f"@{name}" if name else "")


@dataclass
class WorkloadEvaluation:
    """Lazy bundle of every run for one workload.

    All accessors compute on first use and memoize under a typed
    :class:`~repro.analysis.persistence.RunKey`; the same key addresses
    the harness's on-disk cache, so the in-memory and persistent layers
    can never hold different results for one cell.  Methods that do not
    apply (full simulation of MLPerf, TBPoint beyond its capacity,
    silicon runs on GPUs the workload does not fit) return None.
    """

    spec: WorkloadSpec
    harness: "EvaluationHarness"
    _launches: dict[str, list] = field(default_factory=dict)
    _launch_digests: dict[str, str] = field(default_factory=dict)
    _cache: dict[RunKey, object] = field(default_factory=dict)

    # -- building blocks ------------------------------------------------

    def launches(self, generation: str = "volta") -> list:
        if generation not in self._launches:
            self._launches[generation] = self.spec.build(generation)
        return self._launches[generation]

    def launch_digest(self, generation: str = "volta") -> str:
        """Memoized content digest of one generation's launch list."""
        if generation not in self._launch_digests:
            self._launch_digests[generation] = launches_digest(
                self.launches(generation)
            )
        return self._launch_digests[generation]

    def runs_on(self, gpu: GPUConfig) -> bool:
        if not self.spec.fits_on(gpu):
            return False
        return f"no_{gpu.generation}" not in self.spec.quirks

    def _memoized_run(
        self,
        key: RunKey,
        gpu: GPUConfig | None,
        generations: tuple[str, ...],
        compute: Callable[[], AppRunResult | None],
    ) -> AppRunResult | None:
        """Memory -> disk -> compute, storing the result in both layers.

        ``None`` results (the workload cannot run this cell) are
        memoized in memory only: they are trivial to re-derive and must
        not occupy the persistent store.

        With the semantic cache enabled, a digest miss consults the
        similarity index before computing.  A transfer answer is
        memoized **in memory only** — never written through
        ``put_run`` — so the exact digest cache can never be poisoned by
        an approximate result; a computed result is additionally
        *observed* into the index so it can donate to future transfers.

        With the prediction tiers enabled, a semcache miss additionally
        consults them before falling back to the DES — same in-memory-
        only memoization contract as a transfer, and every *computed*
        result additionally feeds the tiers' calibration.
        """
        if key in self._cache:
            obs_count("harness.memo_hits")
            return self._cache[key]  # type: ignore[return-value]
        with obs_span(
            "harness.cell", cell=cell_label(self.spec.name, key.method, key.gpu)
        ) as span:
            digest = self.harness._cell_digest(self, key, gpu, generations)
            result = self.harness.run_cache.get_run(digest)
            if result is None:
                transfer = self.harness._semcache_consult(self, key, gpu, digest)
                if transfer is not None:
                    span.set(source="transfer")
                    self._cache[key] = transfer
                    return transfer
                predicted = self.harness._predict_consult(self, key, gpu, digest)
                if predicted is not None:
                    span.set(source="predicted")
                    self._cache[key] = predicted
                    return predicted
                span.set(source="computed")
                result = compute()
                if result is not None:
                    self.harness.run_cache.put_run(digest, result)
                    self.harness._semcache_observe(
                        self, key, gpu, digest, result
                    )
                    self.harness._predict_observe(
                        self, key, gpu, digest, result
                    )
            else:
                span.set(source="disk_cache")
        self._cache[key] = result
        return result

    # -- silicon --------------------------------------------------------

    def silicon(self, generation: str = "volta") -> AppRunResult | None:
        """Full-application silicon truth on one GPU generation."""
        return self.silicon_on(GENERATIONS[generation])

    def silicon_on(self, gpu: GPUConfig) -> AppRunResult | None:
        """Silicon truth on an arbitrary GPU config (e.g. half-SM V100)."""
        key = RunKey("silicon", gpu.name)

        def compute() -> AppRunResult | None:
            if not self.runs_on(gpu):
                return None
            executor = self.harness.silicon(gpu)
            return executor.run(self.spec.name, self.launches(gpu.generation))

        return self._memoized_run(key, gpu, (gpu.generation,), compute)

    # -- characterization (always on Volta, per the paper) ---------------

    def selection(self) -> KernelSelection:
        key = RunKey("selection")
        if key in self._cache:
            obs_count("harness.memo_hits")
            return self._cache[key]  # type: ignore[return-value]
        with obs_span(
            "harness.cell", cell=cell_label(self.spec.name, "selection", None)
        ) as span:
            digest = self.harness._cell_digest(self, key, None, ("volta",))
            selection = self.harness.run_cache.get_selection(digest)
            if selection is None:
                span.set(source="computed")
                selection = self.harness.pka.characterize(
                    self.spec.name,
                    self.launches("volta"),
                    self.harness.silicon(VOLTA_V100),
                    scale=self.spec.scale,
                )
                self.harness.run_cache.put_selection(digest, selection)
            else:
                span.set(source="disk_cache")
        self._cache[key] = selection
        return selection

    def pks_silicon(self, generation: str = "volta") -> AppRunResult | None:
        """PKS priced on one generation's silicon (Volta-selected kernels)."""
        gpu = GENERATIONS[generation]
        key = RunKey("pks_silicon", gpu.name)

        def compute() -> AppRunResult | None:
            if not self.runs_on(gpu):
                return None
            executor = self.harness.silicon(gpu)
            return self.harness.pka.project_silicon(self.selection(), executor)

        return self._memoized_run(key, gpu, ("volta", generation), compute)

    # -- simulation -----------------------------------------------------

    def full_sim(self, gpu: GPUConfig | None = None) -> AppRunResult | None:
        gpu = gpu if gpu is not None else VOLTA_V100
        key = RunKey("full_sim", gpu.name)

        def compute() -> AppRunResult | None:
            if not self.spec.completable or not self.runs_on(gpu):
                return None
            simulator = self.harness.simulator(gpu)
            return simulator.run_full(self.spec.name, self.launches(gpu.generation))

        return self._memoized_run(key, gpu, (gpu.generation,), compute)

    def pks_sim(self, gpu: GPUConfig | None = None) -> AppRunResult | None:
        return self._sampled_sim("pks_sim", use_pkp=False, gpu=gpu)

    def pka_sim(self, gpu: GPUConfig | None = None) -> AppRunResult | None:
        return self._sampled_sim("pka_sim", use_pkp=True, gpu=gpu)

    def pka_sim_faithful(self) -> AppRunResult | None:
        """PKA on a *silicon-faithful* simulator (modeling error disabled).

        Its error versus silicon isolates the methodology's own
        *sampling* error — the decomposition behind the paper's claim
        that PKA's error stays "close to the baseline simulator".
        """
        key = RunKey("pka_sim_faithful", VOLTA_V100.name)

        def compute() -> AppRunResult | None:
            if "sim_kernel_mismatch" in self.spec.quirks:
                return None
            simulator = self.harness.faithful_simulator(VOLTA_V100)
            return self.harness.pka.simulate(
                self.selection(), simulator, use_pkp=True
            )

        return self._memoized_run(key, VOLTA_V100, ("volta",), compute)

    def _sampled_sim(
        self, label: str, use_pkp: bool, gpu: GPUConfig | None
    ) -> AppRunResult | None:
        gpu = gpu if gpu is not None else VOLTA_V100
        key = RunKey(label, gpu.name)

        def compute() -> AppRunResult | None:
            if "sim_kernel_mismatch" in self.spec.quirks or not self.runs_on(gpu):
                return None
            simulator = self.harness.simulator(gpu)
            return self.harness.pka.simulate(
                self.selection(), simulator, use_pkp=use_pkp
            )

        return self._memoized_run(key, gpu, ("volta", gpu.generation), compute)

    def first_1b(self, gpu: GPUConfig | None = None) -> AppRunResult | None:
        gpu = gpu if gpu is not None else VOLTA_V100
        key = RunKey("first_1b", gpu.name)

        def compute() -> AppRunResult | None:
            if not self.runs_on(gpu):
                return None
            simulator = self.harness.simulator(gpu)
            return run_first_n_instructions(
                self.spec.name,
                self.launches(gpu.generation),
                simulator,
                instruction_budget=self.harness.instruction_budget,
            )

        return self._memoized_run(key, gpu, (gpu.generation,), compute)

    def tbpoint_selection(self) -> TBPointSelection | None:
        key = RunKey("tbpoint_selection")
        if key not in self._cache:
            if not self.spec.completable:
                self._cache[key] = None
            else:
                launches = self.launches("volta")
                profiler = DetailedProfiler(self.harness.silicon(VOLTA_V100))
                try:
                    self._cache[key] = select_tbpoint(
                        self.spec.name, profiler.profile(launches)
                    )
                except ClusteringCapacityError:
                    self._cache[key] = None
        return self._cache[key]  # type: ignore[return-value]

    def tbpoint_sim(self, gpu: GPUConfig | None = None) -> AppRunResult | None:
        gpu = gpu if gpu is not None else VOLTA_V100
        key = RunKey("tbpoint_sim", gpu.name)

        def compute() -> AppRunResult | None:
            selection = self.tbpoint_selection()
            if selection is None or not self.runs_on(gpu):
                return None
            simulator = self.harness.simulator(gpu)
            return simulate_tbpoint(
                selection, self.launches(gpu.generation), simulator
            )

        return self._memoized_run(key, gpu, ("volta", gpu.generation), compute)

    # -- cell dispatch ---------------------------------------------------

    def compute_cell(
        self,
        method: str,
        gpu: GPUConfig | str | None = None,
        *,
        strict: bool = True,
    ):
        """Run one named cell — the unit :meth:`EvaluationHarness.evaluate_cells`
        fans out across worker processes.

        With ``strict=False`` a failing computation returns a
        :class:`CellFailure` record instead of raising, so callers
        iterating many cells keep their completed work.  An unknown
        ``method`` always raises: that is a caller bug, not a fault.
        """
        if isinstance(gpu, str):
            gpu = get_gpu(gpu)
        if method not in _CELL_METHODS:
            raise ReproError(
                f"unknown cell method {method!r}; choose one of {_CELL_METHODS}"
            )
        if strict:
            return self._dispatch_cell(method, gpu)
        try:
            return self._dispatch_cell(method, gpu)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            kind = (
                "invalid_input"
                if isinstance(exc, InputValidationError)
                else "exception"
            )
            return CellFailure(
                workload=self.spec.name,
                method=method,
                gpu=gpu.name if gpu is not None else None,
                kind=kind,
                error_type=type(exc).__name__,
                message=str(exc),
            )

    def _dispatch_cell(self, method: str, gpu: GPUConfig | None):
        if method == "silicon":
            return self.silicon_on(gpu if gpu is not None else VOLTA_V100)
        if method == "pks_silicon":
            return self.pks_silicon((gpu or VOLTA_V100).generation)
        if method == "selection":
            return self.selection()
        if method == "full_sim":
            return self.full_sim(gpu)
        if method == "pks_sim":
            return self.pks_sim(gpu)
        if method == "pka_sim":
            return self.pka_sim(gpu)
        if method == "pka_sim_faithful":
            return self.pka_sim_faithful()
        if method == "first_1b":
            return self.first_1b(gpu)
        if method == "tbpoint_sim":
            return self.tbpoint_sim(gpu)
        raise ReproError(
            f"unknown cell method {method!r}; choose one of {_CELL_METHODS}"
        )

    def cell_key(self, method: str, gpu: GPUConfig | str | None = None) -> RunKey:
        """The typed key under which :meth:`compute_cell` memoizes."""
        if isinstance(gpu, str):
            gpu = get_gpu(gpu)
        if method == "selection":
            return RunKey("selection")
        if method == "tbpoint_selection":
            return RunKey("tbpoint_selection")
        if method == "pka_sim_faithful":
            return RunKey("pka_sim_faithful", VOLTA_V100.name)
        if method == "pks_silicon":
            return RunKey("pks_silicon", GENERATIONS[(gpu or VOLTA_V100).generation].name)
        if method not in _CELL_METHODS:
            raise ReproError(
                f"unknown cell method {method!r}; choose one of {_CELL_METHODS}"
            )
        return RunKey(method, (gpu if gpu is not None else VOLTA_V100).name)


class EvaluationHarness:
    """Memoizing factory of silicon executors, simulators and evaluations."""

    def __init__(
        self,
        config: PKAConfig | None = None,
        model_error: ModelErrorConfig | None = None,
        instruction_budget: float = 6e7,
        *,
        backend: ExecutionBackend | str | int | None = None,
        run_cache: RunCache | NullRunCache | None = None,
        cache_dir: str | Path | None = None,
        cache_max_bytes: int | None = None,
        fault_policy: FaultPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        validation_mode: str = "strict",
        intra_jobs: ExecutionBackend | str | int | None = None,
        semcache: SemanticCacheConfig | bool | None = None,
        transfer_threshold: float | None = None,
        predict: PredictConfig | bool | None = None,
        predict_max_bound: float | None = None,
    ) -> None:
        # The default instruction budget is the paper's 1-billion-
        # instruction practice scaled by the same ~7x factor as the
        # synthetic workloads' durations (DESIGN.md §4).
        self.validation_mode = resolve_mode(validation_mode)
        self.pka = PrincipalKernelAnalysis(
            config, validation_mode=self.validation_mode
        )
        self.model_error = model_error if model_error is not None else ModelErrorConfig()
        self.instruction_budget = instruction_budget
        self.backend = resolve_backend(backend)
        # ``backend`` fans *cells* out; ``intra_jobs`` parallelizes
        # *within* one cell's app run (kernel-stream prefetch and block
        # sharding).  None inherits the cell backend, preserving the
        # historical behavior where one pool served both roles.  This is
        # a pure execution detail: results are bitwise identical either
        # way, so it deliberately stays out of ``context_fingerprint``.
        self.intra_jobs = intra_jobs
        self._intra_backend = (
            resolve_backend(intra_jobs) if intra_jobs is not None else self.backend
        )
        if run_cache is None:
            run_cache = resolve_run_cache(cache_dir, max_bytes=cache_max_bytes)
        self.run_cache = run_cache
        self.fault_policy = fault_policy if fault_policy is not None else FaultPolicy()
        self.fault_plan = fault_plan
        #: Manifest of the most recent ``evaluate_cells`` sweep (also
        #: persisted under ``<cache>/manifests/`` when a cache is set).
        self.last_manifest: dict | None = None
        self._silicon: dict[str, SiliconExecutor] = {}
        self._simulators: dict[str, Simulator] = {}
        self._evaluations: dict[str, WorkloadEvaluation] = {}
        self._context_fingerprint: str | None = None
        #: Similarity-transfer layer above the digest cache (None = off).
        #: ``semcache`` accepts a full config, or True for defaults;
        #: ``transfer_threshold`` overrides the coverage radius either way.
        self._semcache_config = resolve_semcache_config(
            semcache, transfer_threshold
        )
        self.semcache: SemanticCache | None = (
            SemanticCache(
                self._semcache_config,
                self.run_cache,
                context=self.context_fingerprint(),
            )
            if self._semcache_config is not None
            else None
        )
        #: Two-tier prediction layer below the semcache (None = off).
        #: ``predict`` accepts a full config, or True for defaults;
        #: ``predict_max_bound`` overrides the serving threshold.
        self._predict_config = resolve_predict_config(
            predict, predict_max_bound
        )
        self.predict: PredictTiers | None = (
            PredictTiers(
                self._predict_config,
                self.run_cache,
                context=self.context_fingerprint(),
            )
            if self._predict_config is not None
            else None
        )

    def silicon(self, gpu: GPUConfig) -> SiliconExecutor:
        if gpu.name not in self._silicon:
            self._silicon[gpu.name] = SiliconExecutor(
                gpu, backend=self._intra_backend
            )
        return self._silicon[gpu.name]

    def simulator(self, gpu: GPUConfig) -> Simulator:
        if gpu.name not in self._simulators:
            self._simulators[gpu.name] = Simulator(
                gpu, model_error=self.model_error, backend=self._intra_backend
            )
        return self._simulators[gpu.name]

    def faithful_simulator(self, gpu: GPUConfig) -> Simulator:
        """A simulator with modeling error disabled (silicon-faithful)."""
        key = f"{gpu.name}/faithful"
        if key not in self._simulators:
            self._simulators[key] = Simulator(
                gpu,
                model_error=ModelErrorConfig(enabled=False),
                backend=self._intra_backend,
            )
        return self._simulators[key]

    def evaluation(self, workload: str | WorkloadSpec) -> WorkloadEvaluation:
        spec = workload if isinstance(workload, WorkloadSpec) else get_workload(workload)
        if spec.name not in self._evaluations:
            self._evaluations[spec.name] = WorkloadEvaluation(spec=spec, harness=self)
        return self._evaluations[spec.name]

    def evaluations(self, suite: str | None = None) -> list[WorkloadEvaluation]:
        return [self.evaluation(spec) for spec in iter_workloads(suite)]

    def completable_evaluations(self) -> list[WorkloadEvaluation]:
        """Workloads usable in the Figure-7/8 prior-work comparison.

        Excludes the paper's "*" rows: kernel-count mismatches and the
        cuDNN conv-training workloads whose simulation pairing breaks.
        """
        return [
            evaluation
            for evaluation in self.evaluations()
            if evaluation.spec.completable
            and not evaluation.spec.excluded
            and "sim_kernel_mismatch" not in evaluation.spec.quirks
        ]

    # -- cache identity --------------------------------------------------

    def context_fingerprint(self) -> str:
        """Digest of everything cell results depend on besides the cell.

        Changing any PKA/PKP/two-level knob, the model-error shape, the
        instruction budget or the package version changes this value and
        thereby invalidates every on-disk entry at once (conservative by
        design: correctness over reuse).
        """
        if self._context_fingerprint is None:
            self._context_fingerprint = fingerprint(
                {
                    "config": self.pka.config,
                    "model_error": self.model_error,
                    "instruction_budget": self.instruction_budget,
                    # Lenient sanitization can legitimately change what a
                    # poisoned workload computes, so the two modes must
                    # never share cache entries.
                    "validation_mode": self.validation_mode,
                }
            )
        return self._context_fingerprint

    def _cell_digest(
        self,
        evaluation: WorkloadEvaluation,
        key: RunKey,
        gpu: GPUConfig | None,
        generations: tuple[str, ...],
    ) -> str:
        """On-disk content address of one evaluation cell."""
        return run_digest(
            key,
            workload=evaluation.spec.name,
            launch_digests={
                generation: evaluation.launch_digest(generation)
                for generation in sorted(set(generations))
            },
            gpu=gpu,
            context=self.context_fingerprint(),
        )

    def cell_digest_for(
        self, workload: str, method: str, gpu: GPUConfig | str | None = None
    ) -> str:
        """The on-disk content address of one named evaluation cell.

        Produces exactly the digest the cell's accessor memoizes under,
        so external layers (the serving scheduler's submission-time
        cache probe, the dedup key for single-flight) address the
        :class:`~repro.analysis.persistence.RunCache` without recomputing
        anything — at most the workload's launch lists are built once to
        derive their digests, then memoized on the evaluation.
        """
        evaluation = self.evaluation(workload)
        if isinstance(gpu, str):
            gpu = get_gpu(gpu)
        key = evaluation.cell_key(method, gpu)  # validates the method
        gpu_cfg, generations = self._cell_geometry(method, gpu)
        return self._cell_digest(evaluation, key, gpu_cfg, generations)

    @staticmethod
    def _cell_geometry(
        method: str, gpu: GPUConfig | None
    ) -> tuple[GPUConfig | None, tuple[str, ...]]:
        """The (gpu config, launch generations) a named cell consumes.

        One mapping shared by :meth:`cell_digest_for` and the semantic
        cache's transfer probe, so an external digest and a transfer
        answer can never be derived from different geometry.
        """
        if method == "selection":
            return None, ("volta",)
        if method == "pka_sim_faithful":
            return VOLTA_V100, ("volta",)
        if method == "pks_silicon":
            gpu_cfg = GENERATIONS[(gpu or VOLTA_V100).generation]
            return gpu_cfg, ("volta", gpu_cfg.generation)
        if method in ("silicon", "full_sim", "first_1b"):
            gpu_cfg = gpu if gpu is not None else VOLTA_V100
            return gpu_cfg, (gpu_cfg.generation,)
        # pks_sim / pka_sim / tbpoint_sim: Volta selection + target GPU.
        gpu_cfg = gpu if gpu is not None else VOLTA_V100
        return gpu_cfg, ("volta", gpu_cfg.generation)

    # -- semantic cache (similarity transfer) -----------------------------

    def _transfer_viable(
        self, evaluation: WorkloadEvaluation, method: str, gpu: GPUConfig
    ) -> bool:
        """Whether this cell's compute() could return a real run at all.

        A cell whose DES path would return None (workload does not fit
        the GPU, non-completable full sim, known sim quirks) must not be
        answered by transfer either — the layers have to agree on what
        "cannot run" means.
        """
        spec = evaluation.spec
        if not evaluation.runs_on(gpu):
            return False
        if method in ("full_sim", "tbpoint_sim") and not spec.completable:
            return False
        if (
            method in ("pks_sim", "pka_sim", "pka_sim_faithful")
            and "sim_kernel_mismatch" in spec.quirks
        ):
            return False
        return True

    def _semcache_consult(
        self,
        evaluation: WorkloadEvaluation,
        key: RunKey,
        gpu: GPUConfig | None,
        digest: str,
    ) -> TransferResult | None:
        if self.semcache is None or gpu is None:
            return None
        if not self._transfer_viable(evaluation, key.method, gpu):
            return None
        return self.semcache.consult(
            workload=evaluation.spec.name,
            method=key.method,
            gpu=gpu,
            launches=evaluation.launches(gpu.generation),
            digest=digest,
        )

    def _semcache_observe(
        self,
        evaluation: WorkloadEvaluation,
        key: RunKey,
        gpu: GPUConfig | None,
        digest: str,
        result: object,
    ) -> None:
        if self.semcache is None or gpu is None:
            return
        if not isinstance(result, AppRunResult):
            return
        self.semcache.observe(
            workload=evaluation.spec.name,
            method=key.method,
            gpu=gpu,
            launches=evaluation.launches(gpu.generation),
            digest=digest,
            result=result,
        )

    def _predict_consult(
        self,
        evaluation: WorkloadEvaluation,
        key: RunKey,
        gpu: GPUConfig | None,
        digest: str,
    ) -> PredictedResult | None:
        if self.predict is None or gpu is None:
            return None
        if key.method not in self.predict.config.methods:
            return None
        if not self._transfer_viable(evaluation, key.method, gpu):
            return None
        return self.predict.consult(
            workload=evaluation.spec.name,
            method=key.method,
            gpu=gpu,
            launches=evaluation.launches(gpu.generation),
            model_error=self.model_error,
            digest=digest,
        )

    def _predict_observe(
        self,
        evaluation: WorkloadEvaluation,
        key: RunKey,
        gpu: GPUConfig | None,
        digest: str,
        result: object,
    ) -> None:
        if self.predict is None or gpu is None:
            return
        if key.method not in self.predict.config.methods:
            return
        if not isinstance(result, AppRunResult):
            return
        # Per-group DES ground truth, harvested from the simulator's
        # full-run memo the compute just populated.  Groups belonging to
        # other workloads are filtered out by key inside observe().
        kernel_cycles = self.simulator(gpu).memoized_kernel_cycles()
        self.predict.observe(
            workload=evaluation.spec.name,
            method=key.method,
            gpu=gpu,
            launches=evaluation.launches(gpu.generation),
            model_error=self.model_error,
            digest=digest,
            result=result,
            kernel_cycles=kernel_cycles,
        )

    def predict_probe(
        self, workload: str, method: str, gpu: GPUConfig | str | None = None
    ) -> PredictedResult | None:
        """Submission-time prediction answer for one cell, or None.

        The serving scheduler calls this after both the digest-cache and
        transfer probes miss: a :class:`PredictedResult` completes the
        job without queueing, None escalates to the compute pipeline.
        No event loop runs either way — at most the workload's launch
        list is built and priced analytically.
        """
        if self.predict is None:
            return None
        if method not in self.predict.config.methods:
            return None
        evaluation = self.evaluation(workload)
        if isinstance(gpu, str):
            gpu = get_gpu(gpu)
        key = evaluation.cell_key(method, gpu)
        memoized = evaluation._cache.get(key)
        if isinstance(memoized, PredictedResult):
            return memoized
        if memoized is not None:
            return None  # a real result exists; other probes serve it
        gpu_cfg, generations = self._cell_geometry(method, gpu)
        if gpu_cfg is None or not self._transfer_viable(
            evaluation, method, gpu_cfg
        ):
            return None
        digest = self._cell_digest(evaluation, key, gpu_cfg, generations)
        result = self.predict.consult(
            workload=evaluation.spec.name,
            method=method,
            gpu=gpu_cfg,
            launches=evaluation.launches(gpu_cfg.generation),
            model_error=self.model_error,
            digest=digest,
        )
        if result is not None:
            evaluation._cache[key] = result
        return result

    def transfer_probe(
        self, workload: str, method: str, gpu: GPUConfig | str | None = None
    ) -> TransferResult | None:
        """Submission-time transfer answer for one cell, or None.

        The serving scheduler calls this right after its digest-cache
        probe misses: a :class:`TransferResult` completes the job
        without queueing (the warm path), None escalates to the normal
        compute pipeline.  Nothing is simulated either way — at most the
        workload's launch list is built once and memoized.
        """
        if self.semcache is None:
            return None
        if method not in self.semcache.config.methods:
            return None
        evaluation = self.evaluation(workload)
        if isinstance(gpu, str):
            gpu = get_gpu(gpu)
        key = evaluation.cell_key(method, gpu)
        memoized = evaluation._cache.get(key)
        if isinstance(memoized, TransferResult):
            return memoized
        if memoized is not None:
            return None  # a real result exists; other probes serve it
        gpu_cfg, generations = self._cell_geometry(method, gpu)
        if gpu_cfg is None or not self._transfer_viable(
            evaluation, method, gpu_cfg
        ):
            return None
        digest = self._cell_digest(evaluation, key, gpu_cfg, generations)
        result = self.semcache.consult(
            workload=evaluation.spec.name,
            method=method,
            gpu=gpu_cfg,
            launches=evaluation.launches(gpu_cfg.generation),
            digest=digest,
        )
        if result is not None:
            evaluation._cache[key] = result
        return result

    # -- parallel cell dispatch ------------------------------------------

    def evaluate_cells(
        self,
        cells: Sequence[tuple[str, str, GPUConfig | str | None]],
        *,
        strict: bool = False,
        fault_policy: FaultPolicy | None = None,
        fault_plan: FaultPlan | None = None,
        progress: Callable[[TaskOutcome], None] | None = None,
        crash_in_process: bool = False,
    ) -> list[AppRunResult | KernelSelection | CellFailure | None]:
        """Compute independent (workload, method, gpu) cells, in order.

        With a serial backend this is a plain loop.  With a process-pool
        backend each cell runs in a worker (which keeps one harness per
        configuration alive across cells) and the results come back in
        submission order; every computed result is also stored into this
        harness's in-memory memo tables, so subsequent accessor calls hit
        immediately.  When an on-disk cache is configured, workers share
        it, making the fan-out restartable and incremental: completed
        cells are checkpointed as they finish, and a killed or faulted
        sweep re-run against the same cache recomputes only what is
        missing.

        Execution is **fault-tolerant by default**: every cell runs
        under the harness's :class:`~repro.sim.parallel.FaultPolicy`
        (retries with deterministic backoff, optional timeout, dead
        workers isolated and their surviving cells recomputed), and a
        cell that still fails is returned as a :class:`CellFailure`
        in its slot instead of aborting the sweep.  ``strict=True``
        restores fail-fast: the first failure is raised as its typed
        :class:`~repro.errors.TaskFailureError` — after the sweep
        manifest has been recorded, so completed work is never lost.

        Every sweep writes a manifest (quarantined cells, failure causes,
        completed cells) to ``last_manifest`` and, when a cache is
        configured, to ``<cache>/manifests/<sweep_id>.json``.

        ``progress`` is a **job-granular** completion hook: it receives
        each cell's :class:`~repro.sim.parallel.TaskOutcome` as soon as
        the runtime decides it (per task inline, per round on the pool),
        before the sweep finishes.  The serving scheduler uses it to
        complete jobs without waiting for the whole batch.  It is called
        from the dispatching thread; callbacks must be fast and must not
        raise.

        ``crash_in_process=True`` makes an injected ``"crash"`` fault
        genuinely ``os._exit`` the calling process instead of simulating
        a :class:`~repro.errors.WorkerCrashError`.  Only the service's
        fleet worker processes set it — it is how a poison job actually
        kills its worker so the supervisor's re-dispatch and quarantine
        paths are exercised for real.  It applies to the in-process
        execution path only (serial backend / single job).
        """
        policy = fault_policy if fault_policy is not None else self.fault_policy
        plan = fault_plan if fault_plan is not None else self.fault_plan
        normalized: list[tuple[str, str, GPUConfig | None]] = []
        for workload, method, gpu in cells:
            if isinstance(gpu, str):
                gpu = get_gpu(gpu)
            name = workload if isinstance(workload, str) else workload.name
            normalized.append((name, method, gpu))
        labels = [cell_label(w, m, g) for w, m, g in normalized]
        with obs_span(
            "harness.evaluate_cells", cells=len(labels), jobs=self.backend.jobs
        ):
            if self.backend.jobs == 1:

                def compute(cell):
                    workload, method, gpu = cell
                    return self.evaluation(workload).compute_cell(method, gpu)

                outcomes = _run_tasks_inline(
                    compute, normalized, policy, labels, plan, False, progress,
                    in_worker=crash_in_process,
                )
            else:
                cache_root = (
                    self.run_cache.root
                    if isinstance(self.run_cache, RunCache)
                    else None
                )
                # Only portable intra specs (str/int) cross the process
                # boundary; a live backend object stays parent-side and
                # workers fall back to serial intra execution — the
                # results are bitwise identical either way.
                intra_spec = (
                    self.intra_jobs
                    if isinstance(self.intra_jobs, (str, int))
                    else None
                )
                payloads = [
                    (
                        self.pka.config,
                        self.model_error,
                        self.instruction_budget,
                        cache_root,
                        self.validation_mode,
                        intra_spec,
                        self._semcache_config,
                        self._predict_config,
                        cell,
                    )
                    for cell in normalized
                ]
                run_tasks = getattr(self.backend, "run_tasks", None)
                if run_tasks is None:
                    outcomes = _run_tasks_inline(
                        _evaluate_cell_task,
                        payloads,
                        policy,
                        labels,
                        plan,
                        False,
                        progress,
                    )
                else:
                    outcomes = run_tasks(
                        _evaluate_cell_task,
                        payloads,
                        policy=policy,
                        labels=labels,
                        fault_plan=plan,
                        on_outcome=progress,
                    )
        results: list = []
        failures: list[CellFailure] = []
        first_failed = None
        # strict=True: a backend returning a truncated outcome list would
        # silently drop trailing cells from results and the manifest.
        for (workload, method, gpu), outcome in zip(normalized, outcomes, strict=True):
            if outcome.ok:
                evaluation = self.evaluation(workload)
                evaluation._cache.setdefault(
                    evaluation.cell_key(method, gpu), outcome.value
                )
                results.append(outcome.value)
                continue
            kind = outcome.failure.kind
            if kind == "exception" and outcome.failure.error_type in (
                "InputValidationError",
                "NonFiniteInputError",
            ):
                kind = "invalid_input"
            failure = CellFailure(
                workload=workload,
                method=method,
                gpu=gpu.name if gpu is not None else None,
                kind=kind,
                error_type=outcome.failure.error_type,
                message=outcome.failure.message,
                attempts=outcome.failure.attempts,
            )
            failures.append(failure)
            results.append(failure)
            if first_failed is None:
                first_failed = outcome
        obs_count("harness.cells", len(labels))
        if failures:
            obs_count("harness.cell_failures", len(failures))
        skipped = sum(1 for result in results if result is None)
        if skipped:
            obs_count("harness.cells_skipped", skipped)
        transferred = sum(
            1 for result in results if isinstance(result, TransferResult)
        )
        if transferred:
            obs_count("harness.cells_transferred", transferred)
        predicted = sum(
            1 for result in results if isinstance(result, PredictedResult)
        )
        if predicted:
            obs_count("harness.cells_predicted", predicted)
        obs_count(
            "harness.cells_completed",
            len(results) - len(failures) - skipped,
        )
        self._record_manifest(labels, results, failures)
        if strict and first_failed is not None:
            if first_failed.exception is not None:
                raise first_failed.failure.to_error() from first_failed.exception
            raise first_failed.failure.to_error()
        return results

    def _record_manifest(
        self,
        labels: list[str],
        results: list,
        failures: list[CellFailure],
    ) -> None:
        """Persist which cells of a sweep completed and which were quarantined."""
        sweep_id = fingerprint(
            {"cells": labels, "context": self.context_fingerprint()}
        )
        failed_labels = {failure.label for failure in failures}
        transferred_labels = [
            label
            for label, result in zip(labels, results, strict=True)
            if isinstance(result, TransferResult)
        ]
        predicted_labels = [
            label
            for label, result in zip(labels, results, strict=True)
            if isinstance(result, PredictedResult)
        ]
        manifest = {
            "sweep_id": sweep_id,
            "total_cells": len(labels),
            "cells": labels,
            "completed": [label for label in labels if label not in failed_labels],
            "quarantined": sorted(failed_labels),
            "failures": [failure.to_record() for failure in failures],
            # Cells answered by the semantic cache's similarity transfer
            # (no DES ran; the result carries a modeled error bound).
            "transferred": transferred_labels,
            # Cells answered by the prediction tiers (no DES ran; the
            # result carries a modeled error bound and the tier name).
            "predicted": predicted_labels,
            # Cache-side integrity events observed by *this process* so
            # far: entries moved to <cache>/quarantine/ plus refused
            # schema stamps (workers record their own in their caches).
            "cache_quarantined": list(self.run_cache.quarantine_log),
            "cache_schema_mismatches": self.run_cache.schema_mismatches,
        }
        if self.semcache is not None:
            manifest["semcache"] = self.semcache.snapshot()
        if self.predict is not None:
            manifest["predict"] = self.predict.snapshot()
        tracer = get_tracer()
        if tracer.enabled:
            # Snapshot the counters so the run summary written next to a
            # --trace-out file can be reconciled against the manifest.
            manifest["observability"] = {
                "counters": dict(sorted(tracer.counters.items()))
            }
        self.last_manifest = manifest
        self.run_cache.put_manifest(sweep_id, manifest)


# Per-process harness cache for cell workers: one harness per distinct
# configuration, reused across every cell the worker receives.
_WORKER_HARNESSES: dict[tuple, EvaluationHarness] = {}


def _evaluate_cell_task(payload: tuple):
    """Worker: compute one evaluation cell with a process-local harness."""
    (
        config,
        model_error,
        instruction_budget,
        cache_root,
        mode,
        intra_spec,
        semcache_config,
        predict_config,
        cell,
    ) = payload
    workload, method, gpu = cell
    key = (
        config,
        model_error,
        instruction_budget,
        cache_root,
        mode,
        intra_spec,
        semcache_config,
        predict_config,
    )
    harness = _WORKER_HARNESSES.get(key)
    if harness is None:
        harness = EvaluationHarness(
            config,
            model_error,
            instruction_budget,
            cache_dir=cache_root,
            validation_mode=mode,
            intra_jobs=intra_spec,
            semcache=semcache_config,
            predict=predict_config,
        )
        _WORKER_HARNESSES[key] = harness
    return harness.evaluation(workload).compute_cell(method, gpu)
