"""Shared evaluation harness: every method on every workload, memoized.

The benchmark suite regenerates ten-plus tables and figures that all draw
on the same underlying runs (silicon truth per GPU, PKA characterization
on Volta, full/PKS/PKA/1B/TBPoint simulation).  The harness runs each of
those at most once per workload per GPU and caches the results, so the
whole benchmark suite costs one corpus sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.first_n import run_first_n_instructions
from repro.baselines.tbpoint import TBPointSelection, select_tbpoint, simulate_tbpoint
from repro.core.config import PKAConfig
from repro.core.pka import KernelSelection, PrincipalKernelAnalysis
from repro.gpu.architectures import GENERATIONS, GPUConfig, VOLTA_V100
from repro.mlkit import ClusteringCapacityError
from repro.profiling.detailed import DetailedProfiler
from repro.sim.silicon import SiliconExecutor
from repro.sim.simulator import ModelErrorConfig, Simulator
from repro.sim.stats import AppRunResult
from repro.workloads.spec import WorkloadSpec, get_workload, iter_workloads

__all__ = ["WorkloadEvaluation", "EvaluationHarness"]


@dataclass
class WorkloadEvaluation:
    """Lazy bundle of every run for one workload.

    All accessors compute on first use and memoize.  Methods that do not
    apply (full simulation of MLPerf, TBPoint beyond its capacity,
    silicon runs on GPUs the workload does not fit) return None.
    """

    spec: WorkloadSpec
    harness: "EvaluationHarness"
    _launches: dict[str, list] = field(default_factory=dict)
    _cache: dict[str, object] = field(default_factory=dict)

    # -- building blocks ------------------------------------------------

    def launches(self, generation: str = "volta") -> list:
        if generation not in self._launches:
            self._launches[generation] = self.spec.build(generation)
        return self._launches[generation]

    def runs_on(self, gpu: GPUConfig) -> bool:
        if not self.spec.fits_on(gpu):
            return False
        return f"no_{gpu.generation}" not in self.spec.quirks

    # -- silicon --------------------------------------------------------

    def silicon(self, generation: str = "volta") -> AppRunResult | None:
        """Full-application silicon truth on one GPU generation."""
        key = f"silicon/{generation}"
        if key not in self._cache:
            gpu = GENERATIONS[generation]
            if not self.runs_on(gpu):
                self._cache[key] = None
            else:
                executor = self.harness.silicon(gpu)
                self._cache[key] = executor.run(
                    self.spec.name, self.launches(generation)
                )
        return self._cache[key]  # type: ignore[return-value]

    def silicon_on(self, gpu: GPUConfig) -> AppRunResult | None:
        """Silicon truth on an arbitrary GPU config (e.g. half-SM V100)."""
        key = f"silicon_on/{gpu.name}"
        if key not in self._cache:
            if not self.runs_on(gpu):
                self._cache[key] = None
            else:
                executor = self.harness.silicon(gpu)
                self._cache[key] = executor.run(
                    self.spec.name, self.launches(gpu.generation)
                )
        return self._cache[key]  # type: ignore[return-value]

    # -- characterization (always on Volta, per the paper) ---------------

    def selection(self) -> KernelSelection:
        key = "selection"
        if key not in self._cache:
            self._cache[key] = self.harness.pka.characterize(
                self.spec.name,
                self.launches("volta"),
                self.harness.silicon(VOLTA_V100),
                scale=self.spec.scale,
            )
        return self._cache[key]  # type: ignore[return-value]

    def pks_silicon(self, generation: str = "volta") -> AppRunResult | None:
        """PKS priced on one generation's silicon (Volta-selected kernels)."""
        key = f"pks_silicon/{generation}"
        if key not in self._cache:
            gpu = GENERATIONS[generation]
            if not self.runs_on(gpu):
                self._cache[key] = None
            else:
                executor = self.harness.silicon(gpu)
                self._cache[key] = self.harness.pka.project_silicon(
                    self.selection(), executor
                )
        return self._cache[key]  # type: ignore[return-value]

    # -- simulation -----------------------------------------------------

    def full_sim(self, gpu: GPUConfig | None = None) -> AppRunResult | None:
        gpu = gpu if gpu is not None else VOLTA_V100
        key = f"full_sim/{gpu.name}"
        if key not in self._cache:
            if not self.spec.completable or not self.runs_on(gpu):
                self._cache[key] = None
            else:
                simulator = self.harness.simulator(gpu)
                self._cache[key] = simulator.run_full(
                    self.spec.name, self.launches(gpu.generation)
                )
        return self._cache[key]  # type: ignore[return-value]

    def pks_sim(self, gpu: GPUConfig | None = None) -> AppRunResult | None:
        return self._sampled_sim("pks_sim", use_pkp=False, gpu=gpu)

    def pka_sim(self, gpu: GPUConfig | None = None) -> AppRunResult | None:
        return self._sampled_sim("pka_sim", use_pkp=True, gpu=gpu)

    def pka_sim_faithful(self) -> AppRunResult | None:
        """PKA on a *silicon-faithful* simulator (modeling error disabled).

        Its error versus silicon isolates the methodology's own
        *sampling* error — the decomposition behind the paper's claim
        that PKA's error stays "close to the baseline simulator".
        """
        key = "pka_sim_faithful"
        if key not in self._cache:
            if "sim_kernel_mismatch" in self.spec.quirks:
                self._cache[key] = None
            else:
                simulator = self.harness.faithful_simulator(VOLTA_V100)
                self._cache[key] = self.harness.pka.simulate(
                    self.selection(), simulator, use_pkp=True
                )
        return self._cache[key]  # type: ignore[return-value]

    def _sampled_sim(
        self, label: str, use_pkp: bool, gpu: GPUConfig | None
    ) -> AppRunResult | None:
        gpu = gpu if gpu is not None else VOLTA_V100
        key = f"{label}/{gpu.name}"
        if key not in self._cache:
            if "sim_kernel_mismatch" in self.spec.quirks or not self.runs_on(gpu):
                self._cache[key] = None
            else:
                simulator = self.harness.simulator(gpu)
                self._cache[key] = self.harness.pka.simulate(
                    self.selection(), simulator, use_pkp=use_pkp
                )
        return self._cache[key]  # type: ignore[return-value]

    def first_1b(self, gpu: GPUConfig | None = None) -> AppRunResult | None:
        gpu = gpu if gpu is not None else VOLTA_V100
        key = f"first_1b/{gpu.name}"
        if key not in self._cache:
            if not self.runs_on(gpu):
                self._cache[key] = None
            else:
                simulator = self.harness.simulator(gpu)
                self._cache[key] = run_first_n_instructions(
                    self.spec.name,
                    self.launches(gpu.generation),
                    simulator,
                    instruction_budget=self.harness.instruction_budget,
                )
        return self._cache[key]  # type: ignore[return-value]

    def tbpoint_selection(self) -> TBPointSelection | None:
        key = "tbpoint_selection"
        if key not in self._cache:
            if not self.spec.completable:
                self._cache[key] = None
            else:
                launches = self.launches("volta")
                profiler = DetailedProfiler(self.harness.silicon(VOLTA_V100))
                try:
                    self._cache[key] = select_tbpoint(
                        self.spec.name, profiler.profile(launches)
                    )
                except ClusteringCapacityError:
                    self._cache[key] = None
        return self._cache[key]  # type: ignore[return-value]

    def tbpoint_sim(self, gpu: GPUConfig | None = None) -> AppRunResult | None:
        gpu = gpu if gpu is not None else VOLTA_V100
        key = f"tbpoint_sim/{gpu.name}"
        if key not in self._cache:
            selection = self.tbpoint_selection()
            if selection is None or not self.runs_on(gpu):
                self._cache[key] = None
            else:
                simulator = self.harness.simulator(gpu)
                self._cache[key] = simulate_tbpoint(
                    selection, self.launches(gpu.generation), simulator
                )
        return self._cache[key]  # type: ignore[return-value]


class EvaluationHarness:
    """Memoizing factory of silicon executors, simulators and evaluations."""

    def __init__(
        self,
        config: PKAConfig | None = None,
        model_error: ModelErrorConfig | None = None,
        instruction_budget: float = 6e7,
    ) -> None:
        # The default instruction budget is the paper's 1-billion-
        # instruction practice scaled by the same ~7x factor as the
        # synthetic workloads' durations (DESIGN.md §4).
        self.pka = PrincipalKernelAnalysis(config)
        self.model_error = model_error if model_error is not None else ModelErrorConfig()
        self.instruction_budget = instruction_budget
        self._silicon: dict[str, SiliconExecutor] = {}
        self._simulators: dict[str, Simulator] = {}
        self._evaluations: dict[str, WorkloadEvaluation] = {}

    def silicon(self, gpu: GPUConfig) -> SiliconExecutor:
        if gpu.name not in self._silicon:
            self._silicon[gpu.name] = SiliconExecutor(gpu)
        return self._silicon[gpu.name]

    def simulator(self, gpu: GPUConfig) -> Simulator:
        if gpu.name not in self._simulators:
            self._simulators[gpu.name] = Simulator(gpu, model_error=self.model_error)
        return self._simulators[gpu.name]

    def faithful_simulator(self, gpu: GPUConfig) -> Simulator:
        """A simulator with modeling error disabled (silicon-faithful)."""
        key = f"{gpu.name}/faithful"
        if key not in self._simulators:
            self._simulators[key] = Simulator(
                gpu, model_error=ModelErrorConfig(enabled=False)
            )
        return self._simulators[key]

    def evaluation(self, workload: str | WorkloadSpec) -> WorkloadEvaluation:
        spec = workload if isinstance(workload, WorkloadSpec) else get_workload(workload)
        if spec.name not in self._evaluations:
            self._evaluations[spec.name] = WorkloadEvaluation(spec=spec, harness=self)
        return self._evaluations[spec.name]

    def evaluations(self, suite: str | None = None) -> list[WorkloadEvaluation]:
        return [self.evaluation(spec) for spec in iter_workloads(suite)]

    def completable_evaluations(self) -> list[WorkloadEvaluation]:
        """Workloads usable in the Figure-7/8 prior-work comparison.

        Excludes the paper's "*" rows: kernel-count mismatches and the
        cuDNN conv-training workloads whose simulation pairing breaks.
        """
        return [
            evaluation
            for evaluation in self.evaluations()
            if evaluation.spec.completable
            and not evaluation.spec.excluded
            and "sim_kernel_mismatch" not in evaluation.spec.quirks
        ]
