"""Command-line interface: ``pka <command>``.

Commands
--------
``pka list``
    List the workload corpus (suite, launch count, scale).
``pka characterize <workload>``
    Run PKA characterization on one workload and print the selection.
``pka simulate <workload> [--no-pkp] [--gpu volta|turing|ampere]``
    Sampled simulation of one workload, with error versus silicon.
``pka table3`` / ``pka table4 [--suite S]``
    Regenerate the paper's tables.
``pka figure <1|4|5|6|7|8|9|10>``
    Regenerate one figure's series as text.
``pka compare <workload>``
    Every applicable method on one workload, side by side.
``pka inspect <workload> [--micro]``
    Bottleneck/mix breakdown; ``--micro`` adds warp-level stall reports.
``pka phases <workload>``
    Behavioural phase decomposition of the launch sequence.
``pka project <workload>``
    Price the Volta selection on every known GPU.
``pka validate [--suite S] [--traces DIR]``
    Check the corpus's structural invariants, or validate ``.pkatrace``
    files under a directory (strict exits 1 on findings; ``--lenient``
    reports repairs and exits 0).
``pka sweep-k <workload>``
    PKS's K sweep: projected error per K until the 5% target.
``pka trace-plan <workload>``
    The selective-tracing plan implied by the PKS selection.
``pka report [--output FILE]``
    Render the whole evaluation as one markdown report.
``pka sweep [--suite S] [--methods M,...] [--gpus G,...]``
    Fault-tolerant workload x method x GPU sweep with partial results,
    a quarantine manifest, and cache-based resume.
``pka serve [--port P] [--max-queue N] [--workers N|auto] [--journal FILE]``
    Run the evaluation service (see ``docs/API.md``, "Service mode"):
    a JSON HTTP job API over the harness with single-flight dedup,
    batching, cache-aware fast paths and graceful drain on
    SIGTERM/SIGINT.  ``--workers N`` enables fleet mode: N supervised
    worker processes with heartbeat liveness, dead-worker re-dispatch,
    poison-job quarantine, and a crash-safe job journal for durable
    recovery across coordinator restarts (``docs/OPERATIONS.md``).
    ``--workers auto`` (or ``--min-workers``/``--max-workers``) makes
    the fleet elastic: an SLO-driven autoscaler grows and shrinks the
    pool, and ``--default-deadline`` adds deadline-aware admission.
``pka submit <workload> <method> [--gpu G] [--port P]``
    Submit one job to a running service and wait for its result.
``pka loadgen [--jobs N] [--shape SPEC] [--chaos SPECS] [--report FILE]``
    Drive a running service with a seeded, replayable load plan;
    ``--shape burst:10@1`` and friends reshape open-loop arrivals;
    ``--chaos "kill-worker@0.5,..."`` fires seeded fault actions
    against a co-hosted fleet mid-run.

Exit codes are uniform across every command: 0 success, 1 error
(bad input, unreachable service, strict-mode failure), 3 partial
completion (some cells/jobs failed or were lost), 130 interrupted.
``pka serve`` treats SIGINT like SIGTERM — a *requested* graceful
shutdown, exiting 0 after a clean drain (3 if the drain timed out).

Every command accepts the execution flags (see ``docs/API.md``,
"Parallel execution & caching" and "Fault tolerance & resume"):

``--jobs N``
    Execution backend: ``serial`` (default), ``auto`` (one worker per
    CPU) or a worker count.  Parallel runs are bit-identical to serial.
``--intra-jobs N``
    Intra-run backend: shard one run's kernel stream and block ranges
    across workers (default: inherit ``--jobs``).  A pure execution
    detail — results and cache digests are identical for every setting.
``--cache-dir DIR``
    Content-addressed on-disk run cache shared across invocations.
``--no-cache``
    Ignore ``--cache-dir`` for this invocation.
``--retries N`` / ``--task-timeout SECONDS``
    Fault policy for sweep cells: retry budget per cell (default 2)
    and wall-clock timeout per attempt (default: none).
``--strict``
    Fail fast on the first cell failure instead of returning partial
    results.
``--inject-faults PLAN``
    Chaos testing: deterministically inject failures at chosen cell
    indices, e.g. ``exception@3,crash@7x99,hang@11`` (``xN`` poisons
    the first N attempts; ``xP`` is persistent).
``--lenient``
    Lenient validation: degenerate inputs (NaN/inf spec or counter
    fields) are sanitized with recorded diagnostics instead of raising
    ``InputValidationError``.
``--trace`` / ``--trace-out FILE``
    Structured tracing (see docs/API.md, "Observability & tracing"):
    ``--trace`` prints a span/counter summary table after the command;
    ``--trace-out trace.json`` additionally writes a Chrome-trace event
    file (open in Perfetto / ``chrome://tracing``) plus a JSON run
    summary at ``trace.summary.json``.  ``--trace-out`` implies
    ``--trace``.

Interrupting a sweep (Ctrl-C) is safe: completed cells are already
checkpointed in the run cache, a resume hint is printed, and the
process exits with status 130.  Re-running the same command with the
same ``--cache-dir`` recomputes only the missing cells.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis import (
    CellFailure,
    EvaluationHarness,
    abs_pct_error,
    figure1_time_landscape,
    figure4_group_composition,
    figure5_ipc_series,
    figure6_simtime_reduction,
    figure7_speedups,
    figure8_errors,
    figure9_volta_over_turing,
    figure10_half_sms,
    format_duration,
    speedup,
    table3_pks_examples,
    table4_rows,
)
from repro.errors import ReproError, TaskFailureError
from repro.gpu import get_gpu
from repro.sim.faults import FaultPlan
from repro.sim.parallel import FaultPolicy
from repro.workloads import get_workload, iter_workloads

__all__ = ["main"]

#: Exit codes beyond 0/1: partial sweep completion and interruption.
EXIT_PARTIAL = 3
EXIT_INTERRUPTED = 130


def _harness_from_args(args: argparse.Namespace) -> EvaluationHarness:
    """Build the harness every command shares from the execution flags."""
    retries = getattr(args, "retries", None)
    timeout = getattr(args, "task_timeout", None)
    policy = None
    if retries is not None or timeout is not None:
        policy = FaultPolicy(
            max_retries=retries if retries is not None else 2,
            timeout_seconds=timeout,
        )
    plan_text = getattr(args, "inject_faults", None)
    harness = EvaluationHarness(
        backend=getattr(args, "jobs", None),
        intra_jobs=getattr(args, "intra_jobs", None),
        cache_dir=(
            None if getattr(args, "no_cache", False) else getattr(args, "cache_dir", None)
        ),
        cache_max_bytes=getattr(args, "cache_max_bytes", None),
        fault_policy=policy,
        fault_plan=FaultPlan.parse(plan_text) if plan_text else None,
        validation_mode=(
            "lenient" if getattr(args, "lenient", False) else "strict"
        ),
        semcache=(
            getattr(args, "semcache", False)
            and not getattr(args, "no_semcache", False)
        ),
        transfer_threshold=getattr(args, "transfer_threshold", None),
        predict=(
            getattr(args, "predict", False)
            and not getattr(args, "no_predict", False)
        ),
        predict_max_bound=getattr(args, "predict_max_bound", None),
    )
    # Remember the harness so --trace-out can embed the sweep manifest
    # into the run summary after the handler returns.
    args._harness = harness
    return harness


def _cmd_list(_args: argparse.Namespace) -> int:
    print(f"{'workload':30s} {'suite':10s} {'launches':>9s} {'scale':>7s}")
    for spec in iter_workloads():
        launches = spec.build()
        print(
            f"{spec.name:30s} {spec.suite:10s} {len(launches):9d} "
            f"{spec.scale:7.0f}"
        )
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    harness = _harness_from_args(args)
    evaluation = harness.evaluation(args.workload)
    selection = evaluation.selection()
    if getattr(args, "save", None):
        from repro.analysis.persistence import save_selection

        path = save_selection(args.save, selection)
        print(f"selection saved to {path}")
    print(f"workload:            {selection.workload}")
    print(f"launches:            {selection.total_launches}")
    print(f"groups (K):          {selection.pks.k}")
    print(f"selected kernel ids: {selection.selected_launch_ids}")
    print(f"group weights:       {tuple(g.weight for g in selection.groups)}")
    print(f"two-level:           {selection.used_two_level}")
    if selection.used_two_level:
        print(f"detailed head:       {selection.detailed_count} kernels")
        print(
            f"classifier:          {selection.classifier_name} "
            f"(holdout accuracy {selection.classifier_accuracy:.2%})"
        )
    print(f"profiling cost:      {format_duration(selection.profiling_seconds)}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    harness = _harness_from_args(args)
    evaluation = harness.evaluation(args.workload)
    gpu = get_gpu(args.gpu)
    use_pkp = not args.no_pkp
    run = (
        evaluation.pka_sim(gpu) if use_pkp else evaluation.pks_sim(gpu)
    )
    if run is None:
        print(f"{args.workload} cannot be simulated on {gpu.name} (see quirks)")
        return 1
    truth = evaluation.silicon_on(gpu)
    print(f"method:              {'PKA (PKS+PKP)' if use_pkp else 'PKS only'}")
    print(f"GPU:                 {gpu.name}")
    print(f"projected cycles:    {run.total_cycles:.4g}")
    print(f"simulated cycles:    {run.simulated_cycles:.4g}")
    print(f"simulation time:     {format_duration(run.sim_wall_seconds)}")
    if truth is not None:
        print(
            f"cycle error:         "
            f"{abs_pct_error(run.total_cycles, truth.total_cycles):.2f}%"
        )
        full = evaluation.full_sim(gpu)
        if full is not None:
            print(
                f"speedup vs full sim: "
                f"{speedup(full.simulated_cycles, run.simulated_cycles):.2f}x"
            )
    return 0


def _cmd_project(args: argparse.Namespace) -> int:
    from repro.analysis import sweep_architectures

    harness = _harness_from_args(args)
    evaluation = harness.evaluation(args.workload)
    selection = evaluation.selection()
    projections = sweep_architectures(selection, pka=harness.pka)
    scale = evaluation.spec.scale
    print(f"{args.workload}: projected execution per architecture "
          f"(Volta-selected kernels, paper-scale x{scale:.0f})")
    print(f"{'GPU':10s} {'time':>14s} {'DRAM util':>10s}")
    for projection in projections:
        print(
            f"{projection.gpu_name:10s} "
            f"{format_duration(projection.projected_seconds * scale):>14s} "
            f"{projection.dram_util_percent:9.1f}%"
        )
    return 0


def _cmd_phases(args: argparse.Namespace) -> int:
    from repro.analysis.phases import detect_phases

    harness = _harness_from_args(args)
    evaluation = harness.evaluation(args.workload)
    launches = evaluation.launches("volta")
    analysis = detect_phases(args.workload, launches)
    print(f"workload: {args.workload} ({len(launches)} launches)")
    print(f"phases:   {analysis.n_phases}")
    for phase in analysis.phases:
        share = (
            phase.thread_instructions / analysis.total_thread_instructions
            if analysis.total_thread_instructions
            else 0.0
        )
        first = launches[phase.start_launch].spec.name
        print(
            f"  phase {phase.phase_id}: launches "
            f"[{phase.start_launch}, {phase.end_launch}) "
            f"({phase.launches} kernels, {share:.1%} of instructions), "
            f"starts with {first!r}"
        )
    budget = harness.instruction_budget
    print(
        f"first-{budget:.0g}-instruction prefix: covers "
        f"{analysis.coverage_of_prefix(budget):.0%} of phases, "
        f"phase-mix representativeness "
        f"{analysis.prefix_representativeness(budget):.2f}"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    lenient = getattr(args, "lenient", False)
    if getattr(args, "traces", None):
        return _validate_traces(args.traces, lenient)
    from repro.workloads import validate_corpus

    report = validate_corpus(args.suite)
    print(f"checked {report.workloads_checked} workloads")
    if report.ok:
        print("corpus OK: every structural invariant holds")
        return 0
    for issue in report.issues:
        print(f"  {issue.workload}: [{issue.check}] {issue.detail}")
    # Lenient callers want the diagnostics but not a failing exit unless
    # something is unrecoverable; every corpus issue is reportable.
    return 0 if lenient else 1


def _validate_traces(directory: str, lenient: bool) -> int:
    """Validate every .pkatrace file under ``directory``.

    Strict (the default) exits 1 when any file carries error-severity
    issues; ``--lenient`` reports what would be repaired and exits 0.
    """
    from pathlib import Path

    from repro.core.validation import launch_issues, sanitize_launches
    from repro.errors import WorkloadError
    from repro.traces import read_trace

    paths = sorted(Path(directory).glob("*.pkatrace"))
    if not paths:
        print(f"no .pkatrace files under {directory}")
        return 1
    total_errors = 0
    for path in paths:
        try:
            workload, launches = read_trace(path)
        except (OSError, WorkloadError, ValueError) as exc:
            print(f"{path.name}: unreadable: {exc}")
            total_errors += 1
            continue
        source = workload or path.stem
        issues = launch_issues(source, launches)
        errors = [issue for issue in issues if issue.severity == "error"]
        if not issues:
            print(f"{path.name}: OK ({len(launches)} launches)")
            continue
        total_errors += len(errors)
        for issue in issues:
            print(f"  {path.name}: [{issue.check}] {issue.detail}")
        if lenient and errors:
            _, repairs = sanitize_launches(source, launches, "lenient")
            print(
                f"{path.name}: lenient mode would repair "
                f"{len(repairs)} field(s)"
            )
    if total_errors:
        print(f"{total_errors} validation error(s) across {len(paths)} trace file(s)")
        return 0 if lenient else 1
    print(f"all {len(paths)} trace file(s) OK")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.analysis import inspect_workload
    from repro.workloads import get_workload as _get

    spec = _get(args.workload)
    harness = _harness_from_args(args)
    profile = inspect_workload(
        spec.name,
        harness.evaluation(spec.name).launches("volta"),
        silicon=harness.silicon(get_gpu("volta")),
    )
    print(f"workload:           {profile.workload}")
    print(f"launches:           {profile.launches} "
          f"({profile.distinct_kernels} distinct kernels)")
    print(f"silicon time:       {format_duration(profile.silicon_seconds)}")
    print(f"grid blocks:        min {profile.grid_stats[0]}, "
          f"median {profile.grid_stats[1]}, max {profile.grid_stats[2]}")
    print(f"sub-wave launches:  {profile.sub_wave_fraction:.0%}")
    print(f"irregular launches: {profile.irregular_fraction:.0%}")
    print(f"trace footprint:    {profile.trace_bytes / 1e9:.2f} GB")
    print("cycle share by bottleneck:")
    for name, share in sorted(
        profile.bottleneck_cycle_share.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {name:8s} {share:6.1%}")
    print("dynamic instruction mix:")
    for name, share in sorted(profile.mix_share.items(), key=lambda kv: -kv[1]):
        print(f"  {name:14s} {share:6.1%}")
    if args.micro:
        from repro.sim import MicrosimConfig, SMMicrosimulator

        gpu = get_gpu("volta")
        microsim = SMMicrosimulator(
            gpu, MicrosimConfig(dram_share=1.0 / gpu.num_sms)
        )
        print("\nwarp-level bottleneck reports (distinct kernels):")
        seen = set()
        for launch in harness.evaluation(spec.name).launches("volta"):
            signature = launch.spec.signature()
            if signature in seen:
                continue
            seen.add(signature)
            print(microsim.bottleneck_report(launch.spec))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    harness = _harness_from_args(args)
    evaluation = harness.evaluation(args.workload)
    truth = evaluation.silicon("volta")
    if truth is None:
        print(f"{args.workload} has no Volta silicon reference")
        return 1
    methods = [
        ("full simulation", evaluation.full_sim()),
        ("PKS", evaluation.pks_sim()),
        ("PKA (PKS+PKP)", evaluation.pka_sim()),
        ("first-1B", evaluation.first_1b()),
        ("TBPoint", evaluation.tbpoint_sim()),
    ]
    full = evaluation.full_sim()
    print(f"{'method':16s} {'cycle err':>10s} {'sim cost':>12s} {'speedup':>9s}")
    for label, run in methods:
        if run is None:
            print(f"{label:16s} {'*':>10s} {'*':>12s} {'*':>9s}")
            continue
        error = abs_pct_error(run.total_cycles, truth.total_cycles)
        cost = format_duration(run.sim_wall_seconds)
        ratio = (
            f"{speedup(full.simulated_cycles, run.simulated_cycles):.2f}x"
            if full is not None
            else "-"
        )
        print(f"{label:16s} {error:9.1f}% {cost:>12s} {ratio:>9s}")
    return 0


def _cmd_sweep_k(args: argparse.Namespace) -> int:
    harness = _harness_from_args(args)
    evaluation = harness.evaluation(args.workload)
    selection = evaluation.selection()
    print(f"K sweep for {args.workload} (target error "
          f"{harness.pka.config.pks.target_error:.0%}):")
    for k, error in enumerate(selection.pks.sweep_errors, start=1):
        marker = " <- chosen" if k == selection.pks.k else ""
        print(f"  K={k:2d}  projected error {error:7.2%}{marker}")
    return 0


def _cmd_trace_plan(args: argparse.Namespace) -> int:
    from repro.traces import build_tracing_plan

    harness = _harness_from_args(args)
    evaluation = harness.evaluation(args.workload)
    plan = build_tracing_plan(evaluation.selection(), evaluation.launches("volta"))
    scale = evaluation.spec.scale
    print(f"workload:             {plan.workload}")
    print(f"kernels to trace:     {plan.selected_count} "
          f"(ids {plan.selected_launch_ids})")
    print(f"full trace size:      {plan.full_trace_bytes * scale / 1e9:,.1f} GB "
          f"(paper-scale)")
    print(f"selective trace size: {plan.selected_trace_bytes / 1e9:,.3f} GB")
    print(f"reduction:            {plan.reduction_factor * scale:,.0f}x")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import write_report

    path = write_report(args.output)
    print(f"report written to {path}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Fault-tolerant corpus sweep: every cell, partial results, manifest."""
    harness = _harness_from_args(args)
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    gpus = [g.strip() for g in args.gpus.split(",") if g.strip()] or [None]
    cells = [
        (spec.name, method, gpu)
        for spec in iter_workloads(args.suite)
        for method in methods
        for gpu in gpus
    ]
    try:
        results = harness.evaluate_cells(cells, strict=args.strict)
    except TaskFailureError as exc:
        # --strict: fail fast, but completed cells are already
        # checkpointed and the manifest recorded before the raise.
        print(f"sweep failed (strict): {exc}", file=sys.stderr)
        return 1
    completed = failed = skipped = 0
    # strict=True: a truncated result list would silently drop trailing
    # cells from the tally; a mismatch is a harness bug and must raise.
    for (workload, method, gpu), result in zip(cells, results, strict=True):
        label = f"{workload}:{method}" + (f"@{gpu}" if gpu else "")
        if isinstance(result, CellFailure):
            failed += 1
            print(
                f"  FAIL {label:44s} {result.kind}: {result.error_type}: "
                f"{result.message} ({result.attempts} attempts)"
            )
        elif result is None:
            skipped += 1
        else:
            completed += 1
    manifest = harness.last_manifest
    transferred = len((manifest or {}).get("transferred", ()))
    transfer_note = f", {transferred} by transfer" if transferred else ""
    predicted = len((manifest or {}).get("predicted", ()))
    predict_note = f", {predicted} by prediction" if predicted else ""
    print(
        f"sweep: {len(cells)} cells — {completed} completed"
        f"{transfer_note}{predict_note}, {skipped} not applicable, "
        f"{failed} failed"
    )
    if harness.semcache is not None:
        snap = harness.semcache.snapshot()
        print(
            f"semcache: {snap['index_apps']} app(s) indexed, "
            f"{snap['transfers']} transfer(s), "
            f"{snap['escalations']} escalation(s)"
        )
    if harness.predict is not None:
        snap = harness.predict.snapshot()
        print(
            f"predict: {snap['predictions']} prediction(s) "
            f"({snap['predictions_analytical']} analytical, "
            f"{snap['predictions_surrogate']} surrogate), "
            f"{snap['escalations']} escalation(s)"
        )
    if manifest is not None:
        print(f"sweep id: {manifest['sweep_id'][:16]}")
        if harness.run_cache.enabled:
            print(
                f"manifest: {harness.run_cache.root / 'manifests'}/"
                f"{manifest['sweep_id']}.json"
            )
    if failed:
        if harness.run_cache.enabled:
            print(
                "resume: re-run this command with the same --cache-dir; "
                "completed cells load from cache, only failed cells recompute"
            )
        else:
            print("tip: pass --cache-dir DIR to make this sweep resumable")
        return EXIT_PARTIAL
    return 0


def _parse_workers(text: object) -> int | str:
    """Parse a ``--workers`` value: a non-negative integer or ``auto``.

    ``auto`` selects the elastic fleet (autoscaling between the min/max
    band).  Anything else — negative numbers, floats, garbage — raises
    :class:`ValueError` with the accepted grammar in the message.
    """
    bare = str(text).strip().lower()
    if bare == "auto":
        return "auto"
    try:
        value = int(bare)
    except ValueError:
        raise ValueError(
            f"--workers must be a non-negative integer or 'auto', "
            f"got {text!r}"
        ) from None
    if value < 0:
        raise ValueError(f"--workers must be >= 0 or 'auto', got {value}")
    return value


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the evaluation service until SIGTERM/SIGINT, then drain.

    Both signals trigger the same graceful shutdown: stop accepting
    jobs (``/readyz`` flips to 503), finish everything accepted, write
    the drain manifest into the run cache, exit 0.  A drain that times
    out with jobs unfinished exits EXIT_PARTIAL instead.

    ``--workers auto`` (or any ``--min-workers``/``--max-workers``)
    selects the elastic fleet: the SLO-driven autoscaler grows and
    shrinks the pool between the min/max band.
    """
    import signal
    import threading

    from repro.service import AutoscalerConfig, PKAService

    harness = _harness_from_args(args)
    raw_workers = args.workers
    if raw_workers is None:
        raw_workers = os.environ.get("PKA_SERVICE_WORKERS") or "0"
    try:
        workers = _parse_workers(raw_workers)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    autoscale = None
    elastic = (
        workers == "auto"
        or args.min_workers is not None
        or args.max_workers is not None
    )
    if elastic:
        min_workers = args.min_workers if args.min_workers is not None else 1
        if args.max_workers is not None:
            max_workers = args.max_workers
        else:
            max_workers = max(min_workers, min(4, os.cpu_count() or 1))
        try:
            autoscale = AutoscalerConfig(
                min_workers=min_workers,
                max_workers=max_workers,
                interval=args.scale_interval,
                slo_queue_wait_s=args.slo_queue_wait,
            )
        except ValueError as exc:
            print(f"bad autoscale configuration: {exc}", file=sys.stderr)
            return 1
        if workers == "auto":
            workers = 0  # the service starts the pool at min_workers
    fleet = workers > 0 or autoscale is not None
    journal_path = args.journal
    if journal_path is None and not args.no_journal and fleet:
        cache_dir = getattr(args, "cache_dir", None)
        if cache_dir and not getattr(args, "no_cache", False):
            journal_path = os.path.join(cache_dir, "journal.jsonl")
    if args.no_journal:
        journal_path = None
    try:
        service = PKAService(
            harness,
            host=args.host,
            port=args.port,
            max_queue=args.max_queue,
            batch_max=args.batch_max,
            drain_timeout=args.drain_timeout,
            workers=workers,
            journal_path=journal_path,
            heartbeat_timeout=args.heartbeat_timeout,
            redispatch_budget=args.redispatch_budget,
            retry_after=args.retry_after,
            autoscale=autoscale,
            default_deadline=args.default_deadline,
        )
    except OSError as exc:
        print(f"cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 1
    stop = threading.Event()

    def _on_signal(signum, frame) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    service.start()
    print(f"pka service listening on http://{service.host}:{service.port}")
    if harness.semcache is not None:
        print(
            "semcache: enabled (transfer threshold "
            f"{harness.semcache.config.transfer_threshold}, "
            f"max error bound {harness.semcache.config.max_error_bound})"
        )
    if harness.predict is not None:
        print(
            "predict: enabled (max error bound "
            f"{harness.predict.config.max_error_bound})"
        )
    if fleet:
        journal_note = journal_path if journal_path else "disabled"
        if autoscale is not None:
            print(
                f"fleet: elastic, {autoscale.min_workers}.."
                f"{autoscale.max_workers} worker(s) "
                f"(starting at {service.supervisor.workers}); "
                f"journal: {journal_note}"
            )
        else:
            print(f"fleet: {workers} worker(s); journal: {journal_note}")
    print(f"service id: {service.service_id}", flush=True)
    stop.wait()
    print("draining: refusing new jobs, finishing accepted work", flush=True)
    manifest, clean = service.drain()
    total = sum(manifest["states"].values())
    print(
        f"drained {total} job(s) {manifest['states']}; "
        f"manifest {manifest['service_id']}; clean={clean}",
        flush=True,
    )
    return 0 if clean else EXIT_PARTIAL


def _cmd_submit(args: argparse.Namespace) -> int:
    """Submit one job to a running service and (by default) wait on it."""
    from repro.service import JobRequest, ServiceClient

    client = ServiceClient(args.host, args.port, timeout=min(args.timeout, 30.0))
    request = JobRequest(
        workload=args.workload,
        method=args.method,
        gpu=args.gpu,
        client=args.client,
        priority=args.priority,
        fault=args.fault,
    )
    document = client.submit(request)
    attached = "" if document.get("created", True) else " (attached to existing job)"
    print(f"job {document['job_id']}: {document['state']}{attached}")
    if args.no_wait:
        return 0
    final = client.wait(document["job_id"], timeout=args.timeout)
    latency = final.get("latency_ms")
    detail = (
        f" (source={final.get('source')}, latency={latency:.1f}ms)"
        if latency is not None
        else ""
    )
    print(f"job {final['job_id']}: {final['state']}{detail}")
    if final["state"] != "done":
        if final.get("error"):
            error = final["error"]
            print(
                f"  {error.get('error_type', 'error')}: "
                f"{error.get('message', '')}",
                file=sys.stderr,
            )
        return 1
    result = client.result(final["job_id"])
    if result["result_kind"] == "app_run":
        payload = result["result"]
        print(f"  total cycles: {payload['total_cycles']:.6g}")
        print(f"  instructions: {payload['total_instructions']:.6g}")
        transfer = result.get("transfer")
        if transfer:
            donors = ", ".join(transfer.get("transferred_from", ())) or "?"
            print(
                f"  transfer bound: {transfer['error_bound']:.3f} "
                f"(from {donors})"
            )
        predicted = result.get("predicted")
        if predicted:
            print(
                f"  prediction bound: {predicted['error_bound']:.3f} "
                f"(by {predicted.get('predicted_by', '?')} tier)"
            )
    elif result["result_kind"] == "selection":
        payload = result["result"]
        print(f"  groups (K): {payload['k']}")
        print(f"  launches:   {payload['total_launches']}")
    else:
        print(f"  result: {result['result_kind']}")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running service with seeded load and report what happened."""
    import json as _json

    from repro.service import LoadConfig, ServiceClient, run_load

    client = ServiceClient(args.host, args.port, timeout=min(args.timeout, 30.0))
    try:
        config = LoadConfig(
            jobs=args.jobs,
            mode=args.mode,
            rate=args.rate,
            concurrency=args.concurrency,
            duplicate_ratio=args.duplicate_ratio,
            seed=args.seed,
            workloads=(
                tuple(w.strip() for w in args.workloads.split(",") if w.strip())
                if args.workloads
                else None
            ),
            methods=tuple(
                m.strip() for m in args.methods.split(",") if m.strip()
            ),
            gpus=(
                tuple(
                    None if g.strip().lower() == "none" else g.strip()
                    for g in args.gpus.split(",")
                    if g.strip()
                )
                if args.gpus
                else (None,)
            ),
            fault=args.fault,
            timeout=args.timeout,
            chaos=(
                tuple(c.strip() for c in args.chaos.split(",") if c.strip())
                if args.chaos
                else ()
            ),
            shape=args.shape,
            deadline_s=args.deadline,
        )
    except ValueError as exc:
        print(f"bad load configuration: {exc}", file=sys.stderr)
        return 1
    if not client.ready():
        print(
            f"service at {client.base_url} is not ready", file=sys.stderr
        )
        return 1
    report = run_load(client, config)
    document = report.to_document()
    print(
        f"submitted {report.submitted}  accepted {report.accepted}  "
        f"deduplicated {report.deduplicated}  rejected {report.rejected}  "
        f"shed {report.shed}"
    )
    print(
        f"completed {report.completed}  transferred {report.transferred}  "
        f"predicted {report.predicted}  "
        f"failed {report.failed}  quarantined {report.quarantined}  "
        f"cancelled {report.cancelled}  errors {report.errors}"
    )
    if report.chaos_events:
        for event in report.chaos_events:
            print(f"chaos: {event}")
    reconciliation = document["reconciliation"]
    print(
        "reconciliation: "
        f"balanced={reconciliation.get('balanced')}  "
        f"fresh={reconciliation.get('client_fresh_accepted')}  "
        f"server_submitted={reconciliation.get('server_jobs_submitted')}  "
        f"server_shed={reconciliation.get('server_jobs_shed')}"
    )
    latency = document["latency_ms"]
    if latency["p50"] is not None:
        tail = f"p50 {latency['p50']:.1f}ms  p95 {latency['p95']:.1f}ms"
    else:
        tail = "(no latency samples)"
    print(
        f"wall {report.wall_seconds:.2f}s  "
        f"throughput {report.throughput:.1f} jobs/s  {tail}"
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as stream:
            _json.dump(document, stream, indent=2, sort_keys=True)
        print(f"report written to {args.report}")
    return 0 if report.clean else EXIT_PARTIAL


def _cmd_table3(args: argparse.Namespace) -> int:
    harness = _harness_from_args(args)
    print(f"{'suite':10s} {'workload':30s} {'selected ids':24s} {'counts'}")
    for row in table3_pks_examples(harness):
        ids = ",".join(str(i) for i in row.selected_kernel_ids)
        counts = ",".join(str(c) for c in row.group_counts)
        print(f"{row.suite:10s} {row.workload:30s} {ids:24s} {counts}")
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    harness = _harness_from_args(args)

    def fmt(value, unit="") -> str:
        return "*" if value is None else f"{value:.1f}{unit}"

    print(
        f"{'workload':28s} {'V err':>6s} {'V SU':>7s} {'T err':>6s} {'A err':>6s} "
        f"{'SimErr':>7s} {'PKS err':>8s} {'PKS H':>7s} {'PKA err':>8s} {'PKA H':>7s}"
    )
    for row in table4_rows(harness, suite=args.suite):
        print(
            f"{row.workload:28s} {fmt(row.silicon_error['volta']):>6s} "
            f"{fmt(row.silicon_speedup['volta'], 'x'):>7s} "
            f"{fmt(row.silicon_error['turing']):>6s} "
            f"{fmt(row.silicon_error['ampere']):>6s} "
            f"{fmt(row.sim_error):>7s} {fmt(row.pks_error):>8s} "
            f"{fmt(row.pks_sim_hours):>7s} {fmt(row.pka_error):>8s} "
            f"{fmt(row.pka_sim_hours):>7s}"
        )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    harness = _harness_from_args(args)
    number = args.number
    if number == 1:
        for landscape in figure1_time_landscape(harness):
            print(
                f"{landscape.workload:30s} silicon={format_duration(landscape.silicon_seconds):>12s} "
                f"profiler={format_duration(landscape.detailed_profiling_seconds):>12s} "
                f"simulation={format_duration(landscape.full_simulation_seconds):>14s}"
            )
    elif number == 4:
        for group in figure4_group_composition(harness):
            names = ", ".join(
                f"{name}x{count}"
                for name, count in sorted(group.name_counts.items())
            )
            print(f"group {group.group_id} ({group.total_kernels} kernels): {names}")
    elif number == 5:
        for workload in ("atax", "bfs65536"):
            series = figure5_ipc_series(harness, workload)
            print(
                f"{workload}: {len(series.cycles)} windows, "
                f"stops={series.stop_points}"
            )
    elif number == 6:
        for row in figure6_simtime_reduction(harness):
            pks = "*" if row.pks_hours is None else f"{row.pks_hours:10.3f}"
            pka = "*" if row.pka_hours is None else f"{row.pka_hours:10.3f}"
            print(f"{row.workload:30s} full={row.full_hours:14.2f}H pks={pks}H pka={pka}H")
    elif number in (7, 8):
        aggregate = figure7_speedups(harness) if number == 7 else figure8_errors(harness)
        print(f"PKA     speedup geomean {aggregate.pka_speedup_geomean:6.2f}  mean error {aggregate.mean_error('pka'):6.1f}%")
        print(f"TBPoint speedup geomean {aggregate.tbpoint_speedup_geomean:6.2f}  mean error {aggregate.mean_error('tbpoint'):6.1f}%")
        print(f"1B      speedup geomean {aggregate.first1b_speedup_geomean:6.2f}  mean error {aggregate.mean_error('first1b'):6.1f}%")
        print(f"FullSim                          mean error {aggregate.mean_error('full'):6.1f}%")
    elif number in (9, 10):
        study = (
            figure9_volta_over_turing(harness)
            if number == 9
            else figure10_half_sms(harness)
        )
        for method, value in study.geomeans.items():
            print(f"{method:10s} geomean speedup {value:.2f}")
        for method, value in study.mae_wrt_silicon.items():
            print(f"{method:10s} MAE wrt silicon {value:.2f}")
    else:
        print(f"unknown figure {number}; choose 1, 4, 5, 6, 7, 8, 9 or 10")
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="pka", description="Principal Kernel Analysis reproduction CLI"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    # Execution flags shared by every command (parsed per-subcommand so
    # they can appear after the command name, the way pytest flags do).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        help="execution backend: 'serial' (default), 'auto' or a worker count",
    )
    common.add_argument(
        "--intra-jobs",
        default=None,
        metavar="N",
        help="intra-run backend: shard one run's kernel stream and "
        "block ranges across 'serial', 'auto' or N workers (default: "
        "inherit --jobs); results are bit-identical for every setting",
    )
    common.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed on-disk run cache shared across invocations",
    )
    common.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir for this invocation",
    )
    common.add_argument(
        "--cache-max-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="bound the run cache: least-recently-used entries are "
        "evicted once on-disk size exceeds BYTES",
    )
    common.add_argument(
        "--semcache",
        action="store_true",
        help="semantic cache: answer digest misses whose kernels are "
        "covered by already-simulated clusters via similarity transfer "
        "(requires --cache-dir to persist the index across invocations)",
    )
    common.add_argument(
        "--no-semcache",
        action="store_true",
        help="explicitly disable the semantic cache (overrides --semcache)",
    )
    common.add_argument(
        "--transfer-threshold",
        type=float,
        default=None,
        metavar="DIST",
        help="semantic cache coverage radius: maximum mean log-counter "
        "distance a kernel group may have from its nearest indexed "
        "cluster to be answered by transfer (default 0.25)",
    )
    common.add_argument(
        "--predict",
        action="store_true",
        help="prediction tiers: answer cold full-sim cells from the "
        "analytical model or the learned cycle surrogate when the "
        "modeled error bound is tight enough, escalating to the DES "
        "otherwise (calibrates online from computed runs)",
    )
    common.add_argument(
        "--no-predict",
        action="store_true",
        help="explicitly disable the prediction tiers (overrides --predict)",
    )
    common.add_argument(
        "--predict-max-bound",
        type=float,
        default=None,
        metavar="FRAC",
        help="prediction serving threshold: maximum modeled relative "
        "error bound an estimate may advertise and still be served "
        "instead of escalating to the DES (default 0.35)",
    )
    common.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="fault policy: retries per failing cell (default 2)",
    )
    common.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fault policy: wall-clock timeout per cell attempt",
    )
    common.add_argument(
        "--strict",
        action="store_true",
        help="fail fast on the first cell failure instead of quarantining it",
    )
    common.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help="chaos testing: e.g. 'exception@3,crash@7x99,hang@11'",
    )
    common.add_argument(
        "--lenient",
        action="store_true",
        help="lenient validation: sanitize degenerate inputs and record "
        "diagnostics instead of raising InputValidationError",
    )
    common.add_argument(
        "--trace",
        action="store_true",
        help="enable structured tracing and print a span/counter summary",
    )
    common.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write a Chrome-trace event file to FILE and a JSON run "
        "summary next to it (implies --trace)",
    )

    subparsers.add_parser(
        "list", help="list the workload corpus", parents=[common]
    )

    characterize = subparsers.add_parser(
        "characterize",
        help="run PKA characterization on one workload",
        parents=[common],
    )
    characterize.add_argument("workload")
    characterize.add_argument(
        "--save", default=None, help="write the selection to a JSON file"
    )

    simulate = subparsers.add_parser(
        "simulate", help="sampled simulation of one workload", parents=[common]
    )
    simulate.add_argument("workload")
    simulate.add_argument("--no-pkp", action="store_true", help="PKS only")
    simulate.add_argument("--gpu", default="volta")

    subparsers.add_parser("table3", help="regenerate Table 3", parents=[common])
    table4 = subparsers.add_parser(
        "table4", help="regenerate Table 4", parents=[common]
    )
    table4.add_argument("--suite", default=None)

    figure = subparsers.add_parser(
        "figure", help="regenerate one figure", parents=[common]
    )
    figure.add_argument("number", type=int)

    compare = subparsers.add_parser(
        "compare",
        help="all methods on one workload, side by side",
        parents=[common],
    )
    compare.add_argument("workload")

    inspect = subparsers.add_parser(
        "inspect",
        help="bottleneck/mix breakdown of one workload",
        parents=[common],
    )
    inspect.add_argument("workload")
    inspect.add_argument(
        "--micro",
        action="store_true",
        help="add warp-level microsimulator reports per distinct kernel",
    )

    validate = subparsers.add_parser(
        "validate",
        help="check the corpus's structural invariants (or trace files)",
        parents=[common],
    )
    validate.add_argument("--suite", default=None)
    validate.add_argument(
        "--traces",
        default=None,
        metavar="DIR",
        help="validate .pkatrace files in DIR instead of the built-in corpus",
    )

    phases = subparsers.add_parser(
        "phases",
        help="behavioural phase decomposition of one workload",
        parents=[common],
    )
    phases.add_argument("workload")

    project = subparsers.add_parser(
        "project",
        help="price a selection on every known GPU",
        parents=[common],
    )
    project.add_argument("workload")

    sweep = subparsers.add_parser(
        "sweep-k", help="show PKS's K sweep", parents=[common]
    )
    sweep.add_argument("workload")

    trace_plan = subparsers.add_parser(
        "trace-plan",
        help="selective-tracing plan for one workload",
        parents=[common],
    )
    trace_plan.add_argument("workload")

    report = subparsers.add_parser(
        "report",
        help="render the full evaluation as markdown",
        parents=[common],
    )
    report.add_argument("--output", default="pka_report.md")

    sweep_cmd = subparsers.add_parser(
        "sweep",
        help="fault-tolerant workload x method x GPU sweep with resume",
        parents=[common],
    )
    sweep_cmd.add_argument("--suite", default=None)
    sweep_cmd.add_argument(
        "--methods",
        default="silicon,pka_sim",
        help="comma-separated cell methods (default: silicon,pka_sim)",
    )
    sweep_cmd.add_argument(
        "--gpus",
        default="volta",
        help="comma-separated GPU generations (default: volta)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the evaluation service (JSON HTTP API over the harness)",
        parents=[common],
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8471,
        help="listen port (0 binds an ephemeral port; default 8471)",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        metavar="N",
        help="queue depth bound; beyond it submissions get HTTP 429",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=32,
        metavar="N",
        help="max jobs coalesced into one backend fan-out",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="graceful-shutdown budget for finishing accepted jobs",
    )
    serve.add_argument(
        "--workers",
        default=None,
        metavar="N|auto",
        help="fleet mode: N supervised worker processes execute jobs; "
        "'auto' enables the elastic fleet with autoscaling defaults "
        "(default: PKA_SERVICE_WORKERS or 0 = in-process dispatch)",
    )
    serve.add_argument(
        "--min-workers",
        type=int,
        default=None,
        metavar="N",
        help="elastic fleet: never shrink below N workers (implies "
        "autoscaling; default 1)",
    )
    serve.add_argument(
        "--max-workers",
        type=int,
        default=None,
        metavar="N",
        help="elastic fleet: never grow beyond N workers (implies "
        "autoscaling; default min(4, cpu count))",
    )
    serve.add_argument(
        "--scale-interval",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="autoscaler control-loop sampling period",
    )
    serve.add_argument(
        "--slo-queue-wait",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="queue-wait SLO: a job queued longer than this is a "
        "scale-up breach",
    )
    serve.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="deadline-aware admission: shed submissions whose predicted "
        "queue wait exceeds this (clients may override per job with "
        "'deadline_s'; default: no deadline)",
    )
    serve.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="job journal path for durable recovery across restarts "
        "(default in fleet mode: <cache-dir>/journal.jsonl)",
    )
    serve.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the job journal even in fleet mode",
    )
    serve.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="declare a fleet worker dead after this long without a "
        "heartbeat (hung-worker detection)",
    )
    serve.add_argument(
        "--redispatch-budget",
        type=int,
        default=2,
        metavar="N",
        help="re-dispatches allowed per job after worker deaths before "
        "it is quarantined as poison",
    )
    serve.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="Retry-After advice attached to shedding (429/503) responses",
    )

    submit = subparsers.add_parser(
        "submit",
        help="submit one job to a running service and wait for the result",
    )
    submit.add_argument("workload")
    submit.add_argument("method")
    submit.add_argument("--gpu", default=None)
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8471)
    submit.add_argument("--client", default="cli")
    submit.add_argument("--priority", type=int, default=1)
    submit.add_argument(
        "--fault",
        default=None,
        metavar="SPEC",
        help="chaos passthrough: inject 'exception'/'hang'/'crash' "
        "(append xN or xP for persistent) into this job's execution",
    )
    submit.add_argument("--timeout", type=float, default=120.0)
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="submit and exit without polling for the terminal state",
    )

    loadgen = subparsers.add_parser(
        "loadgen",
        help="drive a running service with seeded open/closed-loop load",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8471)
    loadgen.add_argument(
        "--jobs", type=int, default=20, help="number of submissions"
    )
    loadgen.add_argument("--mode", choices=("open", "closed"), default="open")
    loadgen.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="open loop: submissions per second",
    )
    loadgen.add_argument(
        "--concurrency", type=int, default=4, help="closed loop: worker count"
    )
    loadgen.add_argument(
        "--duplicate-ratio",
        type=float,
        default=0.0,
        help="fraction of submissions repeating an earlier request verbatim",
    )
    loadgen.add_argument("--seed", type=int, default=20260807)
    loadgen.add_argument(
        "--workloads",
        default=None,
        help="comma-separated workload pool (default: the whole corpus)",
    )
    loadgen.add_argument(
        "--methods",
        default="silicon",
        help="comma-separated method pool (default: silicon)",
    )
    loadgen.add_argument(
        "--gpus",
        default=None,
        help="comma-separated GPU pool sampled per request ('none' for "
        "the workload default; default: none)",
    )
    loadgen.add_argument(
        "--shape",
        default="constant",
        metavar="SPEC",
        help="open-loop arrival pattern: constant, burst:<factor>@<t>, "
        "ramp:<r>, or diurnal:<period>",
    )
    loadgen.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="attach this admission deadline (deadline_s) to every "
        "submission",
    )
    loadgen.add_argument(
        "--fault",
        default=None,
        metavar="SPEC",
        help="attach this fault spec to one submission (and its duplicates)",
    )
    loadgen.add_argument("--timeout", type=float, default=120.0)
    loadgen.add_argument(
        "--chaos",
        default=None,
        metavar="SPECS",
        help="comma-separated chaos schedule, e.g. "
        "'kill-worker@0.5,kill-coordinator@2' (offsets in seconds from "
        "the start of the run; requires a co-hosted fleet-mode service)",
    )
    loadgen.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the full JSON load report to FILE",
    )

    return parser


def _emit_trace(args: argparse.Namespace, trace_out: str | None) -> None:
    """Print the span/counter summary and write --trace-out artifacts."""
    from repro import obs

    tracer = obs.get_tracer()
    print()
    print(obs.summary_table(tracer))
    if trace_out is None:
        return
    trace_path = obs.write_chrome_trace(trace_out, tracer)
    harness = getattr(args, "_harness", None)
    manifest = harness.last_manifest if harness is not None else None
    summary_path = obs.write_run_summary(
        obs.run_summary_path(trace_out), tracer, manifest=manifest
    )
    print(f"trace written to {trace_path}")
    print(f"run summary written to {summary_path}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "characterize": _cmd_characterize,
        "simulate": _cmd_simulate,
        "table3": _cmd_table3,
        "table4": _cmd_table4,
        "figure": _cmd_figure,
        "compare": _cmd_compare,
        "inspect": _cmd_inspect,
        "validate": _cmd_validate,
        "phases": _cmd_phases,
        "project": _cmd_project,
        "sweep-k": _cmd_sweep_k,
        "trace-plan": _cmd_trace_plan,
        "report": _cmd_report,
        "sweep": _cmd_sweep,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "loadgen": _cmd_loadgen,
    }
    trace_out = getattr(args, "trace_out", None)
    tracing = bool(getattr(args, "trace", False)) or trace_out is not None
    if tracing:
        from repro import obs

        obs.enable()
    try:
        # get_workload raises WorkloadError with a clear message for typos.
        if getattr(args, "workload", None) is not None:
            get_workload(args.workload)
        code = handlers[args.command](args)
        if tracing:
            _emit_trace(args, trace_out)
        return code
    except KeyboardInterrupt:
        # Completed cells were checkpointed into the run cache as they
        # finished, so nothing computed so far is lost.
        print("\ninterrupted", file=sys.stderr)
        cache_dir = getattr(args, "cache_dir", None)
        if cache_dir and not getattr(args, "no_cache", False):
            print(
                f"resume: re-run the same command with --cache-dir {cache_dir}; "
                "completed cells load from cache, only missing cells recompute",
                file=sys.stderr,
            )
        else:
            print(
                "tip: pass --cache-dir DIR to make interrupted runs resumable",
                file=sys.stderr,
            )
        return EXIT_INTERRUPTED
    except ReproError as exc:
        # Typed domain errors (unknown workload/GPU, bad config, an
        # unreachable service, ...) are user-facing: message + exit 1,
        # never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        if tracing:
            # main() is also called in-process (tests); don't leak an
            # enabled tracer into the caller.
            from repro import obs

            obs.reset()


if __name__ == "__main__":
    sys.exit(main())
