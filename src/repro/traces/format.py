"""Kernel trace format: serialize launches the way a tracer would.

Accel-Sim's pipeline is *trace-driven*: an NVBit tracer records every
kernel's instructions to disk, and the simulator replays them.  At MLPerf
scale the traces weigh terabytes — which is why PKS's output matters
twice: it reduces not just what is simulated but what must be *traced*.

This module provides a faithful, compact stand-in for that pipeline: a
line-oriented text format (``.pkatrace``) that captures everything the
simulator consumes about a launch (the full kernel spec, grid, NVTX
annotations), plus estimated on-disk size of the *real* instruction-level
trace the launch would produce, so selective-tracing savings can be
quantified.
"""

from __future__ import annotations

import io
import json
from collections.abc import Sequence
from dataclasses import asdict
from pathlib import Path

from repro.errors import WorkloadError
from repro.gpu.kernels import InstructionMix, KernelLaunch, KernelSpec

__all__ = [
    "TRACE_FORMAT_VERSION",
    "estimated_trace_bytes",
    "write_trace",
    "read_trace",
    "dumps_trace",
    "loads_trace",
]

TRACE_FORMAT_VERSION = 1

# An NVBit-style instruction trace stores roughly 16 bytes per executed
# warp instruction (opcode, operands, addresses) after light compression.
_BYTES_PER_WARP_INSTRUCTION = 16.0
_HEADER_PREFIX = "#pkatrace"


def estimated_trace_bytes(launch: KernelLaunch) -> float:
    """On-disk size of the instruction-level trace this launch produces."""
    return launch.warp_instructions * _BYTES_PER_WARP_INSTRUCTION


def _launch_record(launch: KernelLaunch) -> dict:
    spec = launch.spec
    return {
        "launch_id": launch.launch_id,
        "grid_blocks": launch.grid_blocks,
        "nvtx": launch.nvtx,
        "spec": {
            "name": spec.name,
            "threads_per_block": spec.threads_per_block,
            "regs_per_thread": spec.regs_per_thread,
            "shared_mem_per_block": spec.shared_mem_per_block,
            "divergence_efficiency": spec.divergence_efficiency,
            "sectors_per_global_access": spec.sectors_per_global_access,
            "l2_locality": spec.l2_locality,
            "working_set_bytes": spec.working_set_bytes,
            "duration_cv": spec.duration_cv,
            "phase_drift": spec.phase_drift,
            "cold_start_factor": spec.cold_start_factor,
            "uses_tensor_cores": spec.uses_tensor_cores,
            "mix": asdict(spec.mix),
        },
    }


def _launch_from_record(record: dict) -> KernelLaunch:
    try:
        spec_data = dict(record["spec"])
        mix = InstructionMix(**spec_data.pop("mix"))
        spec = KernelSpec(mix=mix, **spec_data)
        return KernelLaunch(
            spec=spec,
            grid_blocks=record["grid_blocks"],
            launch_id=record["launch_id"],
            nvtx=dict(record.get("nvtx", {})),
        )
    except (KeyError, TypeError) as exc:
        raise WorkloadError(f"malformed trace record: {exc}") from exc


def dumps_trace(workload_name: str, launches: Sequence[KernelLaunch]) -> str:
    """Serialize launches to the textual .pkatrace format."""
    buffer = io.StringIO()
    header = {
        "version": TRACE_FORMAT_VERSION,
        "workload": workload_name,
        "launches": len(launches),
        "estimated_full_trace_bytes": sum(
            estimated_trace_bytes(launch) for launch in launches
        ),
    }
    buffer.write(f"{_HEADER_PREFIX} {json.dumps(header, sort_keys=True)}\n")
    for launch in launches:
        buffer.write(json.dumps(_launch_record(launch), sort_keys=True))
        buffer.write("\n")
    return buffer.getvalue()


def loads_trace(
    text: str, *, mode: str | None = None
) -> tuple[str, list[KernelLaunch]]:
    """Parse a .pkatrace document; returns (workload_name, launches).

    ``mode`` optionally validates the parsed launches at this ingestion
    boundary (see :mod:`repro.core.validation`): ``"strict"`` raises
    :class:`~repro.errors.InputValidationError` on non-finite spec/mix
    fields, ``"lenient"`` repairs them in place (schema defaults) and
    returns the sanitized launches.  ``None`` (the default) preserves the
    raw records bit-for-bit, as a tracer round-trip requires.
    """
    lines = text.splitlines()
    if not lines or not lines[0].startswith(_HEADER_PREFIX):
        raise WorkloadError("not a pkatrace document (missing header)")
    header = json.loads(lines[0][len(_HEADER_PREFIX) :])
    if header.get("version") != TRACE_FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported trace version {header.get('version')!r} "
            f"(this reader supports {TRACE_FORMAT_VERSION})"
        )
    launches = [
        _launch_from_record(json.loads(line))
        for line in lines[1:]
        if line.strip()
    ]
    declared = header.get("launches")
    if declared is not None and declared != len(launches):
        raise WorkloadError(
            f"trace declares {declared} launches but contains {len(launches)}"
        )
    workload = header.get("workload", "")
    if mode is not None:
        from repro.core.validation import sanitize_launches

        launches, _ = sanitize_launches(workload or "trace", launches, mode)
    return workload, launches


def write_trace(
    path: str | Path, workload_name: str, launches: Sequence[KernelLaunch]
) -> Path:
    """Write launches to ``path`` in .pkatrace format."""
    path = Path(path)
    path.write_text(dumps_trace(workload_name, launches), encoding="utf-8")
    return path


def read_trace(
    path: str | Path, *, mode: str | None = None
) -> tuple[str, list[KernelLaunch]]:
    """Read a .pkatrace file; returns (workload_name, launches).

    ``mode`` is the optional validation mode, as in :func:`loads_trace`.
    """
    return loads_trace(Path(path).read_text(encoding="utf-8"), mode=mode)
