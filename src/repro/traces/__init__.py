"""Trace substrate: the .pkatrace serialization format and the selective
tracing plans that turn PKS selections into terabyte savings."""

from repro.traces.format import (
    TRACE_FORMAT_VERSION,
    dumps_trace,
    estimated_trace_bytes,
    loads_trace,
    read_trace,
    write_trace,
)
from repro.traces.selective import (
    TracingPlan,
    build_tracing_plan,
    write_selected_traces,
)

__all__ = [
    "TRACE_FORMAT_VERSION",
    "TracingPlan",
    "build_tracing_plan",
    "dumps_trace",
    "estimated_trace_bytes",
    "loads_trace",
    "read_trace",
    "write_selected_traces",
    "write_trace",
]
