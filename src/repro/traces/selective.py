"""Selective tracing: only the principal kernels hit the disk.

The practical payoff of Principal Kernel Selection upstream of the
simulator: instead of tracing 5.3 million kernels (terabytes), trace the
handful of representatives.  This module builds a *tracing plan* from a
:class:`~repro.core.pka.KernelSelection` and quantifies the saving.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.core.pka import KernelSelection
from repro.gpu.kernels import KernelLaunch
from repro.traces.format import estimated_trace_bytes, write_trace

__all__ = ["TracingPlan", "build_tracing_plan", "write_selected_traces"]


@dataclass(frozen=True)
class TracingPlan:
    """Which launches to trace and what that saves.

    Attributes
    ----------
    workload:
        Application name.
    selected_launch_ids:
        Launch ids the tracer must capture (the principal kernels),
        ascending.
    full_trace_bytes / selected_trace_bytes:
        Estimated on-disk instruction-trace sizes with and without
        selection.
    """

    workload: str
    selected_launch_ids: tuple[int, ...]
    full_trace_bytes: float
    selected_trace_bytes: float

    @property
    def reduction_factor(self) -> float:
        """How many times smaller the selective trace is."""
        if self.selected_trace_bytes <= 0:
            return float("inf")
        return self.full_trace_bytes / self.selected_trace_bytes

    @property
    def selected_count(self) -> int:
        return len(self.selected_launch_ids)


def build_tracing_plan(
    selection: KernelSelection,
    launches: Sequence[KernelLaunch],
) -> TracingPlan:
    """Derive the tracing plan implied by a PKA selection."""
    selected = set(selection.selected_launch_ids)
    full_bytes = 0.0
    selected_bytes = 0.0
    for launch in launches:
        size = estimated_trace_bytes(launch)
        full_bytes += size
        if launch.launch_id in selected:
            selected_bytes += size
    return TracingPlan(
        workload=selection.workload,
        selected_launch_ids=selection.selected_launch_ids,
        full_trace_bytes=full_bytes,
        selected_trace_bytes=selected_bytes,
    )


def write_selected_traces(
    selection: KernelSelection,
    launches: Sequence[KernelLaunch],
    directory: str | Path,
) -> list[Path]:
    """Write one .pkatrace file per principal kernel into ``directory``.

    Mirrors the per-kernel trace files a selective tracer would leave
    behind; the simulator-side tooling can replay them individually.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    by_id = {launch.launch_id: launch for launch in launches}
    paths = []
    for launch_id in selection.selected_launch_ids:
        launch = by_id[launch_id]
        path = directory / f"{selection.workload}.kernel_{launch_id}.pkatrace"
        write_trace(path, selection.workload, [launch])
        paths.append(path)
    return paths
