"""Synthetic Polybench suite.

Includes the paper's showcase workloads: fdtd2d (1500 launches in two PKS
groups of 1000 and 500 — Table 3), gramschmidt (6411 launches in six
groups), atax (the Figure-5 regular IPC example) and the long-running
single-kernel apps (correlation, covariance, syr2k) where only PKP helps.
"""

from __future__ import annotations

from repro.workloads.generator import (
    LaunchBuilder,
    compute_spec,
    streaming_spec,
    tiny_spec,
)
from repro.workloads.spec import WorkloadSpec

__all__ = ["build_suite"]

MIB = 1024 * 1024


def _conv2d() -> list:
    builder = LaunchBuilder()
    kernel = streaming_spec(
        "Convolution2D_kernel", loads=180.0, stores=20.0, locality=0.55
    )
    builder.add(kernel, 3_072)
    return builder.launches()


def _mm(count: int, prefix: str) -> list:
    """2mm / 3mm: a chain of GEMM kernels in one behavioural family."""
    builder = LaunchBuilder()
    for index in range(count):
        gemm = compute_spec(
            f"{prefix}_kernel{index + 1}",
            flops=11_000.0,
            shared=900.0,
            locality=0.8,
            working_set=128 * MIB,
        )
        builder.add(gemm, 1_280)
    return builder.launches()


def _conv3d() -> list:
    """3D convolution sweeps one kernel across 254 z-slices."""
    builder = LaunchBuilder()
    kernel = streaming_spec("convolution3D_kernel", loads=54.0, stores=4.0, locality=0.6)
    builder.add(kernel, 256, repeat=254)
    return builder.launches()


def _atax() -> list:
    """The Figure-5a regular workload: two long streaming mat-vec kernels."""
    builder = LaunchBuilder()
    kernel1 = streaming_spec(
        "atax_kernel1", loads=700.0, stores=2.0, flops=700.0, locality=0.3,
        duration_cv=0.03,
    )
    kernel2 = streaming_spec(
        "atax_kernel2", loads=700.0, stores=2.0, flops=700.0, locality=0.3,
        sectors=8.0, duration_cv=0.03,
    )
    builder.add(kernel1, 1_280)
    builder.add(kernel2, 1_280)
    return builder.launches()


def _bicg() -> list:
    builder = LaunchBuilder()
    kernel1 = streaming_spec(
        "bicg_kernel1", loads=650.0, stores=2.0, flops=650.0, locality=0.3
    )
    kernel2 = streaming_spec(
        "bicg_kernel2", loads=650.0, stores=2.0, flops=650.0, locality=0.3,
        sectors=8.0,
    )
    builder.add(kernel1, 1_280)
    builder.add(kernel2, 1_280)
    return builder.launches()


def _correlation() -> list:
    """Long-running multi-kernel statistics app (full sim takes weeks)."""
    builder = LaunchBuilder()
    mean = streaming_spec("mean_kernel", loads=240.0, stores=2.0, locality=0.35)
    std = streaming_spec("std_kernel", loads=260.0, stores=2.0, locality=0.35)
    reduce_k = compute_spec(
        "reduce_kernel", flops=3_000.0, loads=90.0, locality=0.7, working_set=512 * MIB
    )
    corr = compute_spec(
        "corr_kernel", flops=300_000.0, loads=5_000.0, locality=0.7,
        working_set=512 * MIB,
    )
    builder.add(mean, 1_280)
    builder.add(std, 1_280)
    builder.add(reduce_k, 1_280)
    builder.add(corr, 1_280)
    return builder.launches()


def _covariance() -> list:
    builder = LaunchBuilder()
    mean = streaming_spec(
        "covar_mean_kernel", loads=240.0, stores=2.0, locality=0.35
    )
    reduce_k = compute_spec(
        "covar_reduce_kernel",
        flops=3_000.0,
        loads=90.0,
        locality=0.7,
        working_set=512 * MIB,
    )
    covar = compute_spec(
        "covar_kernel", flops=300_000.0, loads=5_000.0, locality=0.7,
        working_set=512 * MIB,
    )
    builder.add(mean, 1_280)
    builder.add(reduce_k, 1_280)
    builder.add(covar, 1_280)
    return builder.launches()


def _fdtd2d() -> list:
    """500 time steps x 3 kernels; two of the three cluster together.

    Table 3: PKS selects kernel ids 0 and 2 to represent groups of 1000
    and 500 kernels respectively.
    """
    builder = LaunchBuilder()
    step_ex = streaming_spec("fdtd_step1_kernel", loads=22.0, stores=8.0, locality=0.5)
    step_ey = streaming_spec("fdtd_step2_kernel", loads=22.0, stores=8.0, locality=0.5)
    # The hz update is compute-heavy and several times longer than the
    # field steps, forcing the K sweep past K=1 and yielding the 1000/500
    # group split of Table 3.
    step_hz = compute_spec(
        "fdtd_step3_kernel", flops=7_000.0, loads=40.0, shared=500.0, locality=0.8
    )
    for _ in range(500):
        builder.add(step_ex, 1_024)
        builder.add(step_ey, 1_024)
        builder.add(step_hz, 1_024)
    return builder.launches()


def _gemm() -> list:
    builder = LaunchBuilder()
    kernel = compute_spec(
        "gemm_kernel", flops=18_000.0, shared=1_500.0, locality=0.8,
        working_set=160 * MIB,
    )
    builder.add(kernel, 1_280)
    return builder.launches()


def _gesummv() -> list:
    builder = LaunchBuilder()
    kernel = streaming_spec(
        "gesummv_kernel", loads=1_000.0, stores=2.0, flops=900.0, locality=0.25
    )
    builder.add(kernel, 1_280)
    return builder.launches()


def _gramschmidt() -> list:
    """2137 iterations x 3 kernels = 6411 launches in ~6 natural groups.

    The per-iteration grids shrink as the factorization proceeds, so the
    same kernel name lands in different PKS groups at different matrix
    sizes — matching Table 3's six selected kernels with group sizes
    2048/2273/479/448/448/448.
    """
    builder = LaunchBuilder()
    norm = tiny_spec("gramschmidt_kernel1", work=80.0)
    scale = tiny_spec("gramschmidt_kernel2", work=60.0)
    update = streaming_spec(
        "gramschmidt_kernel3", loads=26.0, stores=10.0, locality=0.45
    )
    columns = 2137
    # The update kernel's grid shrinks with the factorization, but the
    # BLAS backend tiles it into a handful of plateau configurations —
    # so PKS sees about four distinct update behaviours plus the two
    # helper kernels: the six groups of Table 3.
    plateaus = [(1600, 4096), (1000, 2560), (500, 1280), (0, 320)]
    for column in range(columns):
        remaining = columns - column
        builder.add(norm, 1)
        builder.add(scale, max(1, min(16, remaining // 128)))
        update_grid = next(g for bound, g in plateaus if remaining > bound)
        builder.add(update, update_grid)
    return builder.launches()


def _mvt() -> list:
    builder = LaunchBuilder()
    kernel1 = streaming_spec(
        "mvt_kernel1", loads=680.0, stores=2.0, flops=680.0, locality=0.3
    )
    kernel2 = streaming_spec(
        "mvt_kernel2", loads=680.0, stores=2.0, flops=680.0, locality=0.3,
        sectors=8.0,
    )
    builder.add(kernel1, 1_280)
    builder.add(kernel2, 1_280)
    return builder.launches()


def _syr2k() -> list:
    """One enormous kernel; only intra-kernel reduction (PKP) helps."""
    builder = LaunchBuilder()
    kernel = compute_spec(
        "syr2k_kernel",
        flops=30_000.0,
        loads=600.0,
        shared=800.0,
        locality=0.75,
        working_set=512 * MIB,
        duration_cv=0.04,
    )
    builder.add(kernel, 36_000)
    return builder.launches()


def _syrk() -> list:
    builder = LaunchBuilder()
    kernel = compute_spec(
        "syrk_kernel",
        flops=80_000.0,
        loads=1_700.0,
        shared=2_800.0,
        locality=0.75,
        working_set=384 * MIB,
        duration_cv=0.04,
    )
    builder.add(kernel, 4_096)
    return builder.launches()


def build_suite() -> list[WorkloadSpec]:
    """All 15 Polybench workloads of the paper's Table 4."""
    suite = "polybench"
    return [
        WorkloadSpec("2Dcnn", suite, _conv2d),
        WorkloadSpec("2mm", suite, lambda: _mm(2, "mm2")),
        WorkloadSpec("3dconvolution", suite, _conv3d),
        WorkloadSpec("3mm", suite, lambda: _mm(3, "mm3")),
        WorkloadSpec("atax", suite, _atax),
        WorkloadSpec("bicg", suite, _bicg),
        WorkloadSpec("correlation", suite, _correlation),
        WorkloadSpec("covariance", suite, _covariance),
        WorkloadSpec("fdtd2d", suite, _fdtd2d),
        WorkloadSpec("polybench_gemm", suite, _gemm),
        WorkloadSpec("gsummv", suite, _gesummv),
        WorkloadSpec("gramschmidt", suite, _gramschmidt),
        WorkloadSpec("mvt", suite, _mvt),
        WorkloadSpec("syr2k", suite, _syr2k),
        WorkloadSpec("syrk", suite, _syrk),
    ]
