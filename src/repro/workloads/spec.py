"""Workload specifications and the 147-workload registry.

A :class:`WorkloadSpec` names one benchmark (one row of the paper's
Table 4), knows how to build its kernel-launch list deterministically, and
records the metadata the harness needs: which suite it belongs to, the
launch-count ``scale`` factor applied by the synthetic generator (see
DESIGN.md §4), whether full simulation is tractable, how much device
memory it needs (MLPerf does not fit on the RTX 2060), and any known
quirks (the paper excludes myocyte and DeepBench conv-training runs whose
kernel counts mismatch between profiling and tracing runs).
"""

from __future__ import annotations

import re
import threading
import zlib
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from random import Random

from repro.errors import WorkloadError
from repro.gpu.architectures import GPUConfig
from repro.gpu.kernels import KernelLaunch, KernelSpec

__all__ = [
    "WorkloadSpec",
    "register",
    "get_workload",
    "iter_workloads",
    "suite_names",
    "workload_names",
    "clear_registry",
]

Builder = Callable[[], list[KernelLaunch]]


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark workload.

    Attributes
    ----------
    name / suite:
        Identifiers; ``name`` is unique across the registry.
    builder:
        Zero-argument callable producing the deterministic launch list.
    scale:
        Launch-count downscale applied by the generator: the paper-sized
        workload launches ``scale`` times more kernels than ``build()``
        returns.  Time projections multiply it back in.
    completable:
        Whether full simulation finishes in tolerable time (the paper's
        Figures 7/8 include only completable workloads).
    min_memory_gb:
        Device-memory footprint; used to exclude MLPerf from the 6 GB
        RTX 2060.
    quirks:
        Known anomalies, e.g. ``"kernel_mismatch"`` for workloads whose
        profiled and traced runs launch different kernel counts.
    variant_builders:
        Per-generation builders for workloads whose execution genuinely
        differs across GPUs (cuDNN's runtime algorithm selection).
    """

    name: str
    suite: str
    builder: Builder
    scale: float = 1.0
    completable: bool = True
    min_memory_gb: float = 2.0
    quirks: tuple[str, ...] = ()
    variant_builders: dict[str, Builder] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.scale < 1.0:
            raise WorkloadError("scale must be >= 1")
        if self.min_memory_gb <= 0:
            raise WorkloadError("min_memory_gb must be positive")

    def build(self, generation: str | None = None) -> list[KernelLaunch]:
        """Build the launch list, optionally for a specific GPU generation.

        Most workloads run identically on every generation; the few with
        ``variant_builders`` (cuDNN autotuned ones) produce a different
        list on the named generation — the source of the paper's Turing
        conv-training anomaly.
        """
        if generation is not None and generation in self.variant_builders:
            return self.variant_builders[generation]()
        return self.builder()

    def fits_on(self, gpu: GPUConfig) -> bool:
        """Whether the workload's footprint fits in the GPU's memory."""
        return gpu.dram_capacity_gb >= self.min_memory_gb

    @property
    def excluded(self) -> bool:
        """Workloads the paper reports as "*" (kernel-count mismatches)."""
        return "kernel_mismatch" in self.quirks


_REGISTRY: dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Add a workload to the global registry (name must be unique)."""
    if spec.name in _REGISTRY:
        raise WorkloadError(f"workload {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_workload(name: str) -> WorkloadSpec:
    """Look a workload up by name.

    ``<base>~nd<digits>`` names resolve to deterministic **near
    duplicates** of a registered base workload: the same kernel stream
    with every spec's instruction mix and grid jittered by a few percent
    (seeded from the derived name, so every process builds the identical
    variant).  They model the recompiled-or-retraced resubmissions the
    semantic cache exists for — behaviourally adjacent, but a genuine
    digest miss.  Derived specs are cached outside the registry, so
    :func:`iter_workloads` and ``pka list`` are unaffected.
    """
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        derived = _derived_workload(name)
        if derived is not None:
            return derived
        raise WorkloadError(f"unknown workload {name!r}") from exc


def iter_workloads(suite: str | None = None) -> Iterator[WorkloadSpec]:
    """Iterate registered workloads, optionally restricted to one suite."""
    _ensure_loaded()
    for spec in _REGISTRY.values():
        if suite is None or spec.suite == suite:
            yield spec


def suite_names() -> list[str]:
    """All registered suite names, in first-seen order."""
    _ensure_loaded()
    seen: dict[str, None] = {}
    for spec in _REGISTRY.values():
        seen.setdefault(spec.suite, None)
    return list(seen)


def workload_names(suite: str | None = None) -> list[str]:
    """All registered workload names, optionally restricted to one suite."""
    return [spec.name for spec in iter_workloads(suite)]


_LOADED = False
_LOAD_LOCK = threading.Lock()


def clear_registry() -> None:
    """Empty the registry (test isolation helper); it reloads on next use."""
    global _LOADED
    with _LOAD_LOCK:
        _REGISTRY.clear()
        _DERIVED.clear()
        _LOADED = False


# ---------------------------------------------------------------------------
# Near-duplicate derivation: <base>~nd<digits>.
# ---------------------------------------------------------------------------

#: Relative jitter applied to mixes and grids when deriving a near
#: duplicate.  Small enough that the variant stays in the base kernel's
#: behaviour regime, large enough that every spec signature (and hence
#: the content digest) changes.
ND_JITTER = 0.02

_ND_PATTERN = re.compile(r"^(?P<base>.+)~nd(?P<variant>\d+)$")

# Derived specs memoized outside _REGISTRY so the corpus-facing views
# (iter_workloads, suites, validation sweeps) never see them.
_DERIVED: dict[str, WorkloadSpec] = {}
_DERIVED_LOCK = threading.Lock()


def _jittered(rng: Random, value: float, spread: float = ND_JITTER) -> float:
    return value * (1.0 + spread * (2.0 * rng.random() - 1.0))


def _perturb_launches(
    launches: list[KernelLaunch], derived_name: str
) -> list[KernelLaunch]:
    """Deterministically jitter a launch stream into a near duplicate.

    Each distinct kernel spec gets one mix-scale draw (so repeats of a
    kernel stay self-consistent, as a recompiled binary's would) and each
    launch gets an independent grid draw.  All draws come from one RNG
    seeded by the derived name, and launches are visited in stream order,
    so every process derives bit-identical variants.
    """
    rng = Random(zlib.crc32(f"{derived_name}/near-duplicate".encode("utf-8")))
    perturbed: dict[int, KernelSpec] = {}
    out: list[KernelLaunch] = []
    for launch in launches:
        signature = launch.spec.signature()
        spec = perturbed.get(signature)
        if spec is None:
            spec = launch.spec.with_mix(
                launch.spec.mix.scaled(max(0.5, _jittered(rng, 1.0)))
            )
            perturbed[signature] = spec
        grid = max(1, round(_jittered(rng, float(launch.grid_blocks))))
        out.append(
            KernelLaunch(
                spec=spec,
                grid_blocks=grid,
                launch_id=launch.launch_id,
                nvtx=dict(launch.nvtx),
            )
        )
    return out


def _derived_workload(name: str) -> WorkloadSpec | None:
    """Resolve a ``<base>~nd<digits>`` name, or None if it is not one."""
    match = _ND_PATTERN.match(name)
    if match is None:
        return None
    base_name = match.group("base")
    base = _REGISTRY.get(base_name)
    if base is None:
        # The base may itself be derivable (a~nd1~nd2 is rejected: one
        # level keeps digests and provenance simple).
        return None
    with _DERIVED_LOCK:
        cached = _DERIVED.get(name)
        if cached is None:

            def deriving(builder: Builder) -> Builder:
                return lambda: _perturb_launches(builder(), name)

            cached = WorkloadSpec(
                name=name,
                suite=base.suite,
                builder=deriving(base.builder),
                scale=base.scale,
                completable=base.completable,
                min_memory_gb=base.min_memory_gb,
                quirks=base.quirks,
                variant_builders={
                    generation: deriving(builder)
                    for generation, builder in base.variant_builders.items()
                },
            )
            _DERIVED[name] = cached
    return cached


def _ensure_loaded() -> None:
    """Populate the registry from the suite modules on first access.

    Each suite module exposes ``build_suite() -> list[WorkloadSpec]``;
    importing is deferred to avoid a circular import at package load.
    Lock-guarded: the evaluation service hits first access from many
    request threads at once, and a double load would register every
    workload twice.
    """
    global _LOADED
    if _LOADED:
        return
    with _LOAD_LOCK:
        if _LOADED:
            return
        from repro.workloads import (
            cutlass,
            deepbench,
            mlperf,
            parboil,
            polybench,
            rodinia,
        )

        for module in (rodinia, parboil, polybench, cutlass, deepbench, mlperf):
            for spec in module.build_suite():
                register(spec)
        _LOADED = True
