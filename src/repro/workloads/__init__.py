"""The synthetic 147-workload corpus (Rodinia, Parboil, Polybench,
CUTLASS, DeepBench, MLPerf) and the registry that serves it."""

from repro.workloads.generator import (
    LaunchBuilder,
    compute_spec,
    irregular_spec,
    streaming_spec,
    tensor_spec,
    tiny_spec,
    workload_rng,
)
from repro.workloads.validation import (
    ValidationIssue,
    ValidationReport,
    validate_corpus,
    validate_workload,
)
from repro.workloads.spec import (
    WorkloadSpec,
    clear_registry,
    get_workload,
    iter_workloads,
    register,
    suite_names,
    workload_names,
)

__all__ = [
    "LaunchBuilder",
    "ValidationIssue",
    "ValidationReport",
    "WorkloadSpec",
    "clear_registry",
    "compute_spec",
    "get_workload",
    "irregular_spec",
    "iter_workloads",
    "register",
    "streaming_spec",
    "suite_names",
    "tensor_spec",
    "tiny_spec",
    "validate_corpus",
    "validate_workload",
    "workload_names",
    "workload_rng",
]
