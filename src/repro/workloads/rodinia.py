"""Synthetic Rodinia 3.1 suite.

Each workload reproduces the *structure* that drives PKS/PKP behaviour in
the paper's Table 4: kernel-launch counts (gaussian_208 launches 414
kernels that cluster into one group; nw launches a triangular sweep),
regular-versus-irregular block behaviour (bfs and hybridsort are
divergent and uneven), and single-kernel apps that see no PKS benefit
(b+tree, backprop, nn, hotspot).
"""

from __future__ import annotations

from repro.workloads.generator import (
    LaunchBuilder,
    compute_spec,
    irregular_spec,
    streaming_spec,
    tiny_spec,
)
from repro.workloads.spec import WorkloadSpec

__all__ = ["build_suite"]

MIB = 1024 * 1024


def _btree() -> list:
    builder = LaunchBuilder()
    find_k = irregular_spec(
        "findK", divergence=0.7, duration_cv=0.2, loads=190.0, working_set=96 * MIB
    )
    find_range = irregular_spec(
        "findRangeK", divergence=0.65, duration_cv=0.2, loads=220.0,
        working_set=96 * MIB,
    )
    builder.add(find_k, 1_280)
    builder.add(find_range, 1_280)
    return builder.launches()


def _backprop() -> list:
    builder = LaunchBuilder()
    forward = compute_spec("bpnn_layerforward", flops=900.0, shared=240.0)
    adjust = streaming_spec("bpnn_adjust_weights", loads=80.0, stores=64.0)
    builder.add(forward, 1_024)
    builder.add(adjust, 1_024)
    return builder.launches()


def _bfs(levels: int, peak_blocks: int, name_prefix: str) -> list:
    """Level-synchronous BFS: frontier grows then shrinks across launches.

    Frontier sizes are quantized to powers of four (the runtime rounds
    its grid up to tile multiples), so the same launch geometry recurs
    across levels and PKS needs only a handful of groups.
    """
    import math

    builder = LaunchBuilder()
    kernel1 = irregular_spec(
        f"{name_prefix}_Kernel", divergence=0.35, duration_cv=0.7, sectors=20.0
    )
    kernel2 = tiny_spec(f"{name_prefix}_Kernel2", work=40.0, duration_cv=0.3)
    for level in range(levels):
        # Frontier ramps up to the peak around the middle levels.
        position = level / max(levels - 1, 1)
        raw = max(1.0, peak_blocks * (4.0 ** (-((position - 0.45) * 4) ** 2)))
        frontier = int(4 ** round(math.log(raw, 4)))
        builder.add(kernel1, frontier)
        builder.add(kernel2, frontier)
    return builder.launches()


def _dwt2d(levels: int, base_blocks: int, suffix: str) -> list:
    """Wavelet transform: per-level kernel pairs on shrinking images."""
    builder = LaunchBuilder()
    fdwt = compute_spec(f"fdwt53Kernel_{suffix}", flops=180.0, locality=0.6)
    copy = streaming_spec(f"c_CopySrcToComponents_{suffix}", loads=12.0, stores=12.0)
    builder.add(copy, base_blocks)
    for level in range(levels):
        builder.add(fdwt, max(1, base_blocks >> (2 * level)))
    return builder.launches()


def _gaussian(matrix_size: int, blocks_hint: int) -> list:
    """Gaussian elimination: Fan1+Fan2 per row over a shrinking matrix.

    Launches 2*(size-1) kernels that PKS clusters into one or two groups
    (Table 3 reports gaussian_208 -> one group of 414 kernels).
    """
    builder = LaunchBuilder()
    fan1 = tiny_spec("Fan1", work=30.0, threads_per_block=256)
    fan2 = tiny_spec("Fan2", work=50.0, threads_per_block=256)
    for row in range(matrix_size - 1):
        remaining = matrix_size - row
        grid = max(1, int(blocks_hint * remaining / matrix_size))
        builder.add(fan1, max(1, grid // 4))
        builder.add(fan2, grid)
    return builder.launches()


def _hotspot(grid_blocks: int, suffix: str) -> list:
    builder = LaunchBuilder()
    kernel = compute_spec(
        f"calculate_temp_{suffix}", flops=900.0, locality=0.75, shared=240.0
    )
    builder.add(kernel, grid_blocks)
    return builder.launches()


def _hybridsort(passes: int, name: str, histogram_blocks: int) -> list:
    """Hybridsort: histogram + bucket + many uneven merge-sort passes.

    The merge passes repeat the same few launch geometries (grids are
    halved then clamped to tile multiples), which is what gives the
    paper's ~5x PKS reduction on an otherwise irregular sort.
    """
    builder = LaunchBuilder()
    histogram = irregular_spec(
        f"{name}_histogram1024", atomics=6.0, divergence=0.6, duration_cv=0.3
    )
    bucketsort = irregular_spec(
        f"{name}_bucketsort", divergence=0.5, duration_cv=0.5, sectors=24.0
    )
    mergesort = irregular_spec(
        f"{name}_mergeSortPass", divergence=0.55, duration_cv=0.6, loads=36.0
    )
    merge_grids = (histogram_blocks, histogram_blocks // 2, histogram_blocks // 4)
    builder.add(histogram, histogram_blocks, repeat=2)
    builder.add(bucketsort, histogram_blocks, repeat=2)
    for pass_index in range(passes):
        builder.add(mergesort, max(1, merge_grids[pass_index % len(merge_grids)]))
    return builder.launches()


def _kmeans(points_blocks: int, iterations: int, name: str) -> list:
    builder = LaunchBuilder()
    assign = streaming_spec(
        f"{name}_kmeansPoint", loads=40.0, stores=4.0, locality=0.3, duration_cv=0.1
    )
    swap = tiny_spec(f"{name}_invert_mapping", work=30.0)
    builder.add(swap, points_blocks)
    for _ in range(iterations):
        builder.add(assign, points_blocks)
    return builder.launches()


def _lavamd() -> list:
    builder = LaunchBuilder()
    kernel = compute_spec(
        "kernel_gpu_cuda",
        flops=42_000.0,
        loads=1_200.0,
        shared=3_000.0,
        threads_per_block=128,
        locality=0.8,
        working_set=64 * MIB,
        duration_cv=0.06,
    )
    builder.add(kernel, 1_280)
    return builder.launches()


def _lud(matrix_blocks: int, name: str) -> list:
    """LU decomposition: diagonal/perimeter/internal per iteration."""
    builder = LaunchBuilder()
    diagonal = tiny_spec(f"{name}_lud_diagonal", work=120.0)
    perimeter = compute_spec(f"{name}_lud_perimeter", flops=150.0, shared=80.0)
    internal = compute_spec(f"{name}_lud_internal", flops=200.0, shared=90.0)
    for step in range(matrix_blocks - 1):
        remaining = matrix_blocks - step - 1
        builder.add(diagonal, 1)
        builder.add(perimeter, max(1, remaining))
        builder.add(internal, max(1, remaining * remaining))
    builder.add(diagonal, 1)
    return builder.launches()


def _myocyte() -> list:
    """Excluded in the paper: profiling and tracing runs mismatch."""
    builder = LaunchBuilder()
    solver = irregular_spec("myocyte_solver_2", divergence=0.3, duration_cv=0.4)
    builder.add(solver, 2, repeat=40)
    return builder.launches()


def _pathfinder() -> list:
    builder = LaunchBuilder()
    dynproc = compute_spec("dynproc_kernel", flops=110.0, shared=90.0, locality=0.6)
    builder.add(dynproc, 463, repeat=5)
    return builder.launches()


def _nn() -> list:
    builder = LaunchBuilder()
    euclid = streaming_spec("euclid", loads=130.0, stores=30.0, locality=0.1)
    builder.add(euclid, 640)
    return builder.launches()


def _nw() -> list:
    """Needleman-Wunsch: two alternating kernels over a triangular sweep.

    Every launch is latency-bound (tiny per-diagonal grids), so despite
    256 launches with 128 distinct grid sizes the kernels all cost about
    the same — one or two PKS groups cover the app, giving the paper's
    ~88x reduction.
    """
    builder = LaunchBuilder()
    kernel1 = compute_spec(
        "needle_cuda_shared_1", flops=90.0, shared=100.0, loads=4.0, stores=2.0,
        working_set=4 * MIB, locality=0.8,
    )
    kernel2 = compute_spec(
        "needle_cuda_shared_2", flops=90.0, shared=100.0, loads=4.0, stores=2.0,
        working_set=4 * MIB, locality=0.8,
    )
    diagonals = 128
    for diag in range(1, diagonals + 1):
        builder.add(kernel1, diag)
    for diag in range(diagonals, 0, -1):
        builder.add(kernel2, diag)
    return builder.launches()


def _streamcluster() -> list:
    builder = LaunchBuilder()
    pgain = irregular_spec(
        "kernel_compute_cost", divergence=0.5, duration_cv=0.35, loads=50.0
    )
    center = tiny_spec("kernel_center_table", work=25.0)
    for _ in range(129):
        builder.add(pgain, 512)
        builder.add(center, 16)
    return builder.launches()


def _srad_v1() -> list:
    builder = LaunchBuilder()
    srad1 = streaming_spec("srad_cuda_1", loads=28.0, stores=8.0, locality=0.4)
    srad2 = streaming_spec("srad_cuda_2", loads=24.0, stores=8.0, locality=0.4)
    for _ in range(100):
        builder.add(srad1, 1024)
        builder.add(srad2, 1024)
    return builder.launches()


def build_suite() -> list[WorkloadSpec]:
    """All 27 Rodinia workloads of the paper's Table 4."""
    suite = "rodinia"
    return [
        WorkloadSpec("b+tree", suite, _btree),
        WorkloadSpec("backprop", suite, _backprop),
        WorkloadSpec("bfs1MW", suite, lambda: _bfs(24, 4000, "bfs1MW")),
        WorkloadSpec("bfs4096", suite, lambda: _bfs(10, 16, "bfs4096")),
        WorkloadSpec("bfs65536", suite, lambda: _bfs(40, 256, "bfs65536")),
        WorkloadSpec("dwt2d_192", suite, lambda: _dwt2d(5, 144, "192")),
        WorkloadSpec("dwt2d_rgb", suite, lambda: _dwt2d(7, 1024, "rgb")),
        WorkloadSpec("gauss_208", suite, lambda: _gaussian(208, 8)),
        WorkloadSpec("gauss_mat4", suite, lambda: _gaussian(7, 2)),
        WorkloadSpec("gauss_s16", suite, lambda: _gaussian(16, 2)),
        WorkloadSpec("gauss_s64", suite, lambda: _gaussian(64, 4)),
        WorkloadSpec("gauss_s256", suite, lambda: _gaussian(256, 8)),
        WorkloadSpec("hots_1024", suite, lambda: _hotspot(1_024, "1024")),
        WorkloadSpec("hots_512", suite, lambda: _hotspot(256, "512")),
        WorkloadSpec("hstort_500k", suite, lambda: _hybridsort(18, "hs500k", 1000)),
        WorkloadSpec("hstort_r", suite, lambda: _hybridsort(30, "hsr", 2000)),
        WorkloadSpec("kmeans_28k", suite, lambda: _kmeans(110, 3, "km28k")),
        WorkloadSpec("kmeans_819k", suite, lambda: _kmeans(1_280, 4, "km819k")),
        WorkloadSpec("kmeans_oi", suite, lambda: _kmeans(1_280, 3, "kmoi")),
        WorkloadSpec("lavaMD", suite, _lavamd),
        WorkloadSpec("lud_i", suite, lambda: _lud(16, "ludi")),
        WorkloadSpec("lud_256", suite, lambda: _lud(8, "lud256")),
        WorkloadSpec(
            "myocyte", suite, _myocyte, quirks=("kernel_mismatch",)
        ),
        WorkloadSpec("nn", suite, _nn),
        WorkloadSpec("pathfinder", suite, _pathfinder),
        WorkloadSpec("nw", suite, _nw),
        WorkloadSpec("scluster", suite, _streamcluster),
        WorkloadSpec("srad_v1", suite, _srad_v1),
    ]
