"""Helpers for synthesizing deterministic kernel-launch sequences.

The suite modules describe workloads in terms of a few archetypal kernel
behaviours — dense compute, streaming memory, irregular graph traversal,
tensor-core GEMM — and a launch schedule.  This module provides those
archetypes plus a :class:`LaunchBuilder` that assigns chronological launch
ids.
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.gpu.kernels import InstructionMix, KernelLaunch, KernelSpec

__all__ = [
    "LaunchBuilder",
    "compute_spec",
    "streaming_spec",
    "irregular_spec",
    "tensor_spec",
    "tiny_spec",
    "workload_rng",
]

KIB = 1024
MIB = 1024 * 1024


def workload_rng(workload_name: str, stream: str = "") -> np.random.Generator:
    """A deterministic RNG scoped to one workload (and optional stream)."""
    seed = zlib.crc32(f"{workload_name}/{stream}".encode("utf-8"))
    return np.random.default_rng(seed)


class LaunchBuilder:
    """Accumulates launches, assigning chronological launch ids."""

    def __init__(self) -> None:
        self._launches: list[KernelLaunch] = []

    def add(
        self,
        spec: KernelSpec,
        grid_blocks: int,
        *,
        repeat: int = 1,
        nvtx: dict[str, str] | None = None,
    ) -> None:
        """Append ``repeat`` launches of ``spec`` with the given grid."""
        for _ in range(repeat):
            self._launches.append(
                KernelLaunch(
                    spec=spec,
                    grid_blocks=max(1, int(grid_blocks)),
                    launch_id=len(self._launches),
                    nvtx=dict(nvtx) if nvtx else {},
                )
            )

    def launches(self) -> list[KernelLaunch]:
        return list(self._launches)

    def __len__(self) -> int:
        return len(self._launches)


def compute_spec(
    name: str,
    *,
    threads_per_block: int = 256,
    flops: float = 400.0,
    loads: float = 20.0,
    stores: float = 8.0,
    shared: float = 40.0,
    locality: float = 0.7,
    working_set: float = 24 * MIB,
    regs: int = 48,
    shared_mem: int = 8 * KIB,
    duration_cv: float = 0.04,
    phase_drift: float = 0.0,
    cold_start: float = 0.2,
) -> KernelSpec:
    """A compute-bound kernel: dense arithmetic over tiled shared memory."""
    mix = InstructionMix(
        fp_ops=flops,
        int_ops=flops * 0.25,
        global_loads=loads,
        global_stores=stores,
        shared_loads=shared,
        shared_stores=shared * 0.5,
        control_ops=flops * 0.05,
    )
    return KernelSpec(
        name=name,
        threads_per_block=threads_per_block,
        mix=mix,
        regs_per_thread=regs,
        shared_mem_per_block=shared_mem,
        sectors_per_global_access=4.0,
        l2_locality=locality,
        working_set_bytes=working_set,
        duration_cv=duration_cv,
        phase_drift=phase_drift,
        cold_start_factor=cold_start,
    )


def streaming_spec(
    name: str,
    *,
    threads_per_block: int = 256,
    loads: float = 24.0,
    stores: float = 12.0,
    flops: float = 30.0,
    locality: float = 0.15,
    working_set: float = 256 * MIB,
    sectors: float = 4.0,
    duration_cv: float = 0.05,
    phase_drift: float = 0.0,
    cold_start: float = 0.15,
) -> KernelSpec:
    """A bandwidth-bound kernel: streaming loads/stores, little reuse."""
    mix = InstructionMix(
        fp_ops=flops,
        int_ops=flops * 0.5,
        global_loads=loads,
        global_stores=stores,
        control_ops=4.0,
    )
    return KernelSpec(
        name=name,
        threads_per_block=threads_per_block,
        mix=mix,
        regs_per_thread=32,
        sectors_per_global_access=sectors,
        l2_locality=locality,
        working_set_bytes=working_set,
        duration_cv=duration_cv,
        phase_drift=phase_drift,
        cold_start_factor=cold_start,
    )


def irregular_spec(
    name: str,
    *,
    threads_per_block: int = 256,
    loads: float = 30.0,
    stores: float = 6.0,
    flops: float = 25.0,
    atomics: float = 2.0,
    divergence: float = 0.4,
    sectors: float = 16.0,
    locality: float = 0.25,
    working_set: float = 128 * MIB,
    duration_cv: float = 0.5,
    phase_drift: float = 0.0,
    cold_start: float = 0.3,
) -> KernelSpec:
    """A graph/sort-style kernel: divergent, scattered, uneven blocks."""
    mix = InstructionMix(
        fp_ops=flops * 0.3,
        int_ops=flops,
        global_loads=loads,
        global_stores=stores,
        global_atomics=atomics,
        control_ops=flops * 0.4,
    )
    return KernelSpec(
        name=name,
        threads_per_block=threads_per_block,
        mix=mix,
        regs_per_thread=32,
        divergence_efficiency=divergence,
        sectors_per_global_access=sectors,
        l2_locality=locality,
        working_set_bytes=working_set,
        duration_cv=duration_cv,
        phase_drift=phase_drift,
        cold_start_factor=cold_start,
    )


def tensor_spec(
    name: str,
    *,
    threads_per_block: int = 256,
    tensor_ops: float = 300.0,
    loads: float = 24.0,
    stores: float = 8.0,
    shared: float = 80.0,
    locality: float = 0.8,
    working_set: float = 48 * MIB,
    duration_cv: float = 0.03,
) -> KernelSpec:
    """A tensor-core GEMM kernel (CUTLASS WMMA / cuDNN style)."""
    mix = InstructionMix(
        fp_ops=tensor_ops * 0.1,
        int_ops=tensor_ops * 0.15,
        tensor_ops=tensor_ops,
        global_loads=loads,
        global_stores=stores,
        shared_loads=shared,
        shared_stores=shared * 0.5,
        control_ops=tensor_ops * 0.03,
    )
    return KernelSpec(
        name=name,
        threads_per_block=threads_per_block,
        mix=mix,
        regs_per_thread=64,
        shared_mem_per_block=32 * KIB,
        sectors_per_global_access=4.0,
        l2_locality=locality,
        working_set_bytes=working_set,
        duration_cv=duration_cv,
        uses_tensor_cores=True,
    )


def tiny_spec(
    name: str,
    *,
    threads_per_block: int = 128,
    work: float = 60.0,
    duration_cv: float = 0.08,
) -> KernelSpec:
    """A latency-bound helper kernel (reductions, argmax, bookkeeping)."""
    mix = InstructionMix(
        fp_ops=work * 0.4,
        int_ops=work * 0.4,
        global_loads=work * 0.15,
        global_stores=work * 0.05,
        control_ops=work * 0.1,
    )
    return KernelSpec(
        name=name,
        threads_per_block=threads_per_block,
        mix=mix,
        regs_per_thread=24,
        l2_locality=0.6,
        working_set_bytes=1 * MIB,
        duration_cv=duration_cv,
        cold_start_factor=0.1,
    )
