"""Synthetic MLPerf suite: the paper's scaled, century-to-simulate workloads.

Seven workloads — three ResNet-50 inference batch sizes, SSD training,
BERT offline inference, GNMT training and 3D-UNet inference — built from
layer-structured generators that attach PyProf-style NVTX annotations
(layer tag, tensor volume) to every launch, the extra signal the paper's
two-level profiling uses.

Launch counts are downscaled by each workload's ``scale`` factor (the
paper's SSD training launches 5.3 million kernels; we generate 53,000 and
record scale=100) so the suite is buildable in memory; all time
projections multiply the factor back in.  None of these are completable
in full simulation, and none fit in the RTX 2060's 6 GB
(``min_memory_gb=16``).
"""

from __future__ import annotations

from repro.workloads.generator import (
    LaunchBuilder,
    compute_spec,
    streaming_spec,
    tensor_spec,
    tiny_spec,
)
from repro.workloads.spec import WorkloadSpec

__all__ = ["build_suite"]

MIB = 1024 * 1024


def _nvtx(layer: str, volume: float) -> dict[str, str]:
    return {"layer": layer, "tensor_volume": str(float(volume))}


class _ResNetKernels:
    """The kernel families of a cuDNN ResNet-50 forward pass."""

    def __init__(self, batch: int) -> None:
        self.batch = batch
        scale = batch / 64.0
        self.winograd_big = compute_spec(
            "winograd_big",
            flops=2_400.0,
            shared=220.0,
            locality=0.8,
            working_set=(64 + 96 * scale) * MIB,
        )
        self.implicit_con_wide = compute_spec(
            "implicit_con",
            flops=1_500.0,
            shared=160.0,
            locality=0.78,
            working_set=(48 + 64 * scale) * MIB,
        )
        self.implicit_con_narrow = compute_spec(
            "implicit_con",
            flops=600.0,
            shared=90.0,
            locality=0.7,
            working_set=(24 + 24 * scale) * MIB,
        )
        self.sgemm = compute_spec(
            "sgemm", flops=1_900.0, shared=180.0, locality=0.82,
            working_set=80 * MIB,
        )
        self.bn = streaming_spec(
            "bn_fw_inf", loads=10.0, stores=10.0, locality=0.3
        )
        self.relu_big = streaming_spec(
            "big_relu_interior", loads=6.0, stores=6.0, locality=0.2
        )
        self.relu_tiny = tiny_spec("tiny_relu_1", work=40.0)
        self.add = streaming_spec(
            "SimpleBinary", loads=8.0, stores=4.0, locality=0.25
        )
        self.pool = streaming_spec(
            "MaxPool2D", loads=14.0, stores=4.0, locality=0.4
        )
        self.gemv = streaming_spec(
            "gemv2N", loads=30.0, stores=1.0, locality=0.3
        )
        self.softmax = tiny_spec("somax_fw", work=70.0)
        self.reduce = tiny_spec("RowwiseReduce", work=55.0)

    def batch_grid(self, spatial: int, channels: int) -> int:
        return max(1, self.batch * spatial * spatial * channels // 32_768)

    def stage_grid(self, spatial: int) -> int:
        """Conv grid for a stage, quantized to two cuDNN tile regimes.

        cuDNN picks from a small set of tile configurations, so launch
        grids collapse onto a few recurring values — the recurrence is
        what lets PKS cover ResNet with ~a dozen groups.
        """
        blocks = 784 if spatial >= 28 else 392
        return max(1, blocks * self.batch // 64)


def _resnet_builder(batch: int, images: int):
    """ResNet-50 inference over ``images`` images in ``batch``-sized chunks."""

    def build() -> list:
        kernels = _ResNetKernels(batch)
        builder = LaunchBuilder()
        batches = max(1, images // batch)
        # (stage spatial size, channels, bottleneck count) per ResNet stage.
        stages = [(56, 256, 3), (28, 512, 4), (14, 1024, 6), (7, 2048, 3)]
        for batch_index in range(batches):
            tag = f"batch{batch_index}"
            # Stem: 7x7 conv + bn + relu + maxpool.
            builder.add(
                kernels.winograd_big,
                kernels.batch_grid(112, 64),
                nvtx=_nvtx(f"{tag}.conv1", batch * 112 * 112 * 64),
            )
            builder.add(kernels.bn, kernels.batch_grid(112, 64) // 2 + 1,
                        nvtx=_nvtx(f"{tag}.bn1", batch * 112 * 112 * 64))
            builder.add(kernels.pool, kernels.batch_grid(56, 64),
                        nvtx=_nvtx(f"{tag}.maxpool", batch * 56 * 56 * 64))
            for stage_index, (spatial, channels, blocks) in enumerate(stages):
                for block in range(blocks):
                    layer = f"{tag}.layer{stage_index + 1}.{block}"
                    volume = batch * spatial * spatial * channels
                    grid = kernels.stage_grid(spatial)
                    conv_3x3 = (
                        kernels.implicit_con_wide
                        if spatial >= 28
                        else kernels.implicit_con_narrow
                    )
                    builder.add(kernels.sgemm, grid,
                                nvtx=_nvtx(f"{layer}.conv1", volume // 4))
                    builder.add(conv_3x3, grid, nvtx=_nvtx(f"{layer}.conv2", volume))
                    builder.add(kernels.sgemm, grid,
                                nvtx=_nvtx(f"{layer}.conv3", volume))
                    builder.add(kernels.bn, max(1, grid // 4),
                                nvtx=_nvtx(f"{layer}.bn", volume))
                    relu = kernels.relu_big if spatial >= 28 else kernels.relu_tiny
                    builder.add(relu, max(1, grid // 4),
                                nvtx=_nvtx(f"{layer}.relu", volume))
                    builder.add(kernels.add, max(1, grid // 4),
                                nvtx=_nvtx(f"{layer}.add", volume))
            # Head: avgpool + fc + softmax.
            builder.add(kernels.reduce, max(1, batch // 8),
                        nvtx=_nvtx(f"{tag}.avgpool", batch * 2048))
            builder.add(kernels.gemv, max(1, batch // 2),
                        nvtx=_nvtx(f"{tag}.fc", batch * 2048))
            builder.add(kernels.softmax, max(1, batch // 16),
                        nvtx=_nvtx(f"{tag}.softmax", batch * 1000))
        return builder.launches()

    return build


def _ssd_training_builder():
    """SSD training: forward + backward + a storm of optimizer kernels.

    265 synthetic iterations of ~200 launches stand in for the paper's
    5.3 million kernels at scale=100.
    """

    def build() -> list:
        builder = LaunchBuilder()
        backbone_conv = compute_spec(
            "ssd_implicit_convolve_sgemm", flops=1_200.0, shared=140.0,
            locality=0.75, working_set=96 * MIB,
        )
        head_conv = compute_spec(
            "ssd_head_conv", flops=500.0, shared=60.0, locality=0.65,
            working_set=32 * MIB,
        )
        dgrad = compute_spec(
            "ssd_dgrad_engine", flops=1_300.0, loads=60.0, locality=0.7,
            working_set=96 * MIB,
        )
        wgrad = compute_spec(
            "ssd_wgrad_alg0", flops=1_100.0, loads=55.0, locality=0.68,
            working_set=96 * MIB,
        )
        bn_fwd = streaming_spec("ssd_bn_fw_tr", loads=12.0, stores=12.0, locality=0.3)
        bn_bwd = streaming_spec("ssd_bn_bw", loads=16.0, stores=12.0, locality=0.3)
        elementwise = tiny_spec("ssd_op_tensor_kernel", work=50.0)
        loss = tiny_spec("ssd_smooth_l1_loss", work=80.0, duration_cv=0.2)
        sgd = tiny_spec("ssd_sgd_momentum_update", work=35.0)
        for iteration in range(265):
            nvtx = _nvtx(f"iter{iteration}", 32 * 300 * 300 * 3)
            for layer in range(20):
                builder.add(backbone_conv, 420, nvtx=nvtx)
                builder.add(bn_fwd, 105, nvtx=nvtx)
                builder.add(elementwise, 52, nvtx=nvtx)
            for head in range(12):
                builder.add(head_conv, 96, nvtx=nvtx)
            builder.add(loss, 24, repeat=6, nvtx=nvtx)
            for layer in range(20):
                builder.add(dgrad, 420, nvtx=nvtx)
                builder.add(wgrad, 210, nvtx=nvtx)
                builder.add(bn_bwd, 105, nvtx=nvtx)
                builder.add(elementwise, 52, repeat=2, nvtx=nvtx)
            builder.add(sgd, 16, repeat=30, nvtx=nvtx)
        return builder.launches()

    return build


def _bert_builder():
    """BERT-large offline inference: 24 transformer layers per batch."""

    def build() -> list:
        builder = LaunchBuilder()
        qkv_gemm = tensor_spec(
            "volta_fp16_s884gemm_fp16_128x128_qkv", tensor_ops=1_024.0,
            loads=40.0, working_set=64 * MIB,
        )
        # The FFN GEMMs are 4x the arithmetic of the attention GEMMs —
        # distinct enough that a single-group projection misses badly,
        # which is what pushes BERT's K sweep past K=1.
        ffn_gemm = tensor_spec(
            "volta_fp16_s884gemm_fp16_256x128_ffn", tensor_ops=4_096.0,
            loads=90.0, working_set=192 * MIB,
        )
        attn_softmax = streaming_spec(
            "softmax_warp_forward", loads=10.0, stores=8.0, locality=0.4
        )
        layernorm = streaming_spec(
            "cuApplyLayerNorm", loads=12.0, stores=8.0, locality=0.35
        )
        gelu = tiny_spec("gelu_kernel", work=45.0)
        embed = streaming_spec(
            "embedding_lookup_kernel", loads=20.0, stores=8.0, locality=0.2,
            sectors=16.0,
        )
        for batch in range(120):
            nvtx_prefix = f"batch{batch}"
            builder.add(embed, 128, nvtx=_nvtx(f"{nvtx_prefix}.embed", 384 * 1024))
            for layer in range(24):
                nvtx = _nvtx(f"{nvtx_prefix}.layer{layer}", 384 * 1024 * 16)
                builder.add(qkv_gemm, 288, repeat=2, nvtx=nvtx)
                builder.add(attn_softmax, 96, nvtx=nvtx)
                builder.add(qkv_gemm, 288, nvtx=nvtx)
                builder.add(layernorm, 48, nvtx=nvtx)
                builder.add(ffn_gemm, 576, repeat=2, nvtx=nvtx)
                builder.add(gelu, 72, nvtx=nvtx)
                builder.add(layernorm, 48, nvtx=nvtx)
        return builder.launches()

    return build


def _gnmt_builder():
    """GNMT training: LSTM encoder/decoder time-step storms."""

    def build() -> list:
        builder = LaunchBuilder()
        lstm_gemm = compute_spec(
            "gnmt_lstm_gemm", flops=1_024.0, shared=128.0, locality=0.8,
            working_set=64 * MIB,
        )
        lstm_cell = tiny_spec("gnmt_lstm_elementwise", work=85.0)
        attention = streaming_spec(
            "gnmt_attention_score", loads=24.0, stores=4.0, locality=0.4
        )
        bgrad_gemm = compute_spec(
            "gnmt_lstm_bgrad_gemm", flops=1_100.0, loads=50.0, locality=0.75,
            working_set=64 * MIB,
        )
        embed_grad = streaming_spec(
            "gnmt_embedding_grad", loads=16.0, stores=16.0, locality=0.2,
            sectors=20.0,
        )
        adam = tiny_spec("gnmt_adam_update", work=40.0)
        for iteration in range(34):
            nvtx = _nvtx(f"iter{iteration}", 128 * 1024 * 50)
            for _layer in range(8):
                for _step in range(30):
                    builder.add(lstm_gemm, 128, nvtx=nvtx)
                    builder.add(lstm_cell, 32, nvtx=nvtx)
                builder.add(attention, 64, repeat=10, nvtx=nvtx)
            for _layer in range(8):
                for _step in range(30):
                    builder.add(bgrad_gemm, 128, nvtx=nvtx)
                    builder.add(lstm_cell, 32, nvtx=nvtx)
            builder.add(embed_grad, 256, repeat=4, nvtx=nvtx)
            builder.add(adam, 24, repeat=40, nvtx=nvtx)
        return builder.launches()

    return build


def _unet3d_builder():
    """3D-UNet inference on BRATS-like volumes: few, fat conv3d kernels."""

    def build() -> list:
        builder = LaunchBuilder()
        levels = [
            ("enc", 128, 26_000.0, 960),
            ("enc", 64, 21_000.0, 480),
            ("enc", 32, 16_000.0, 240),
            ("bottleneck", 16, 13_000.0, 120),
            ("dec", 32, 16_000.0, 240),
            ("dec", 64, 21_000.0, 480),
            ("dec", 128, 26_000.0, 960),
        ]
        norm = streaming_spec("unet_instancenorm", loads=14.0, stores=10.0, locality=0.3)
        upsample = streaming_spec("unet_trilinear_upsample", loads=20.0, stores=8.0,
                                  locality=0.35)
        for case in range(16):
            for level_index, (stage, spatial, flops, grid) in enumerate(levels):
                conv = compute_spec(
                    f"unet_conv3d_{stage}_{spatial}",
                    flops=flops,
                    shared=200.0,
                    locality=0.75,
                    working_set=spatial**3 * 32.0,
                )
                nvtx = _nvtx(f"case{case}.{stage}{level_index}", spatial**3 * 32)
                builder.add(conv, grid, repeat=8, nvtx=nvtx)
                builder.add(norm, max(1, grid // 4), repeat=4, nvtx=nvtx)
                if stage == "dec":
                    builder.add(upsample, max(1, grid // 2), nvtx=nvtx)
        return builder.launches()

    return build


def build_suite() -> list[WorkloadSpec]:
    """All 7 MLPerf workloads of the paper's Table 4."""
    suite = "mlperf"
    common = dict(completable=False, min_memory_gb=16.0)
    return [
        WorkloadSpec(
            "mlperf_bert_inference", suite, _bert_builder(), scale=35.0, **common
        ),
        WorkloadSpec(
            "mlperf_ssd_training", suite, _ssd_training_builder(), scale=100.0,
            **common,
        ),
        WorkloadSpec(
            "mlperf_resnet50_64b", suite, _resnet_builder(64, 12_800), scale=8.0,
            **common,
        ),
        WorkloadSpec(
            "mlperf_resnet50_128b", suite, _resnet_builder(128, 12_800), scale=8.0,
            **common,
        ),
        WorkloadSpec(
            "mlperf_resnet50_256b", suite, _resnet_builder(256, 12_800), scale=8.0,
            **common,
        ),
        WorkloadSpec(
            "mlperf_gnmt_training", suite, _gnmt_builder(), scale=25.0, **common
        ),
        WorkloadSpec(
            "mlperf_3dunet_inference", suite, _unet3d_builder(), scale=4.0, **common
        ),
    ]
