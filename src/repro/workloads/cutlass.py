"""Synthetic CUTLASS performance suite.

Twenty workloads: ten SGEMM problem sizes and ten tensor-core WGEMM
problem sizes.  Each runs the paper's seven-launch pattern (Table 3 shows
CUTLASS selecting kernel id 0 out of 7 identical launches), so PKS yields
a modest ~6-7x speedup with near-zero error.
"""

from __future__ import annotations

from repro.workloads.generator import LaunchBuilder, compute_spec, tensor_spec
from repro.workloads.spec import WorkloadSpec

__all__ = ["build_suite"]

MIB = 1024 * 1024

# (m, n, k) problem sizes loosely following CUTLASS's perf sweep.
_PROBLEM_SIZES = [
    (2560, 128, 2560),
    (2560, 512, 2560),
    (2560, 1024, 2560),
    (4096, 128, 4096),
    (4096, 512, 4096),
    (4096, 1024, 4096),
    (4096, 4096, 4096),
    (5124, 700, 2048),
    (5124, 700, 2560),
    (7680, 1024, 2560),
]

_TILE_M = 128
_TILE_N = 128
_REPEATS = 7  # CUTLASS's perf harness re-runs each problem (Table 3)


def _grid_for(m: int, n: int) -> int:
    # CUTLASS raises the K-split rather than the grid for big problems,
    # so launch grids stay within a couple of occupancy waves.
    return min(512, max(1, (m // _TILE_M) * (n // _TILE_N)))


def _sgemm_builder(m: int, n: int, k: int):
    def build() -> list:
        builder = LaunchBuilder()
        spec = compute_spec(
            f"cutlass_sgemm_{m}x{n}x{k}",
            flops=2.0 * k,
            loads=k / 16.0,
            shared=k / 2.0,
            locality=0.85,
            working_set=4.0 * (m * k + k * n + m * n),
            threads_per_block=256,
            duration_cv=0.03,
        )
        builder.add(spec, _grid_for(m, n), repeat=_REPEATS)
        return builder.launches()

    return build


def _wgemm_builder(m: int, n: int, k: int):
    def build() -> list:
        builder = LaunchBuilder()
        spec = tensor_spec(
            f"cutlass_wmma_{m}x{n}x{k}",
            tensor_ops=k / 4.0,
            loads=k / 32.0,
            shared=k / 4.0,
            locality=0.85,
            working_set=2.0 * (m * k + k * n) + 4.0 * m * n,
        )
        builder.add(spec, _grid_for(m, n), repeat=_REPEATS)
        return builder.launches()

    return build


def build_suite() -> list[WorkloadSpec]:
    """All 20 CUTLASS workloads (10 SGEMM + 10 tensor-core WGEMM)."""
    suite = "cutlass"
    specs: list[WorkloadSpec] = []
    for m, n, k in _PROBLEM_SIZES:
        specs.append(
            WorkloadSpec(
                f"cutlass_sgemm_{m}x{n}x{k}", suite, _sgemm_builder(m, n, k)
            )
        )
    for m, n, k in _PROBLEM_SIZES:
        specs.append(
            WorkloadSpec(
                f"cutlass_wgemm_{m}x{n}x{k}", suite, _wgemm_builder(m, n, k)
            )
        )
    return specs
