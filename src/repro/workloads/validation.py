"""Corpus validation: structural invariants every workload must satisfy.

The suite generators are plain code; a typo there silently skews every
downstream experiment.  ``validate_corpus`` checks each workload against
the invariants the rest of the library assumes — chronological launch
ids, bounded grids, launch-field finiteness, buildable determinism,
scale sanity, quirk/metadata coherence — and returns structured
diagnostics instead of crashing, so both the test suite and the ``pka``
CLI can report them.

The issue/report types are the shared ones from
:mod:`repro.core.validation`, so corpus findings compose with ingestion
diagnostics from PKS/PKA (one vocabulary, one report shape).
"""

from __future__ import annotations

from repro.core.validation import ValidationIssue, ValidationReport, launch_issues
from repro.workloads.spec import WorkloadSpec, iter_workloads

__all__ = ["ValidationIssue", "ValidationReport", "validate_workload", "validate_corpus"]

_MAX_GRID_BLOCKS = 60_000
_MAX_LAUNCHES = 120_000


def validate_workload(spec: WorkloadSpec) -> list[ValidationIssue]:
    """Check one workload's structural invariants."""
    issues: list[ValidationIssue] = []

    def issue(check: str, detail: str) -> None:
        issues.append(ValidationIssue(spec.name, check, detail))

    try:
        launches = spec.build()
    except Exception as error:  # noqa: BLE001 — reported, not raised
        issue("buildable", f"builder raised {error!r}")
        return issues

    if not launches:
        issue("nonempty", "builder returned no launches")
        return issues
    if len(launches) > _MAX_LAUNCHES:
        issue(
            "bounded_launches",
            f"{len(launches)} launches exceed the {_MAX_LAUNCHES} cap",
        )

    ids = [launch.launch_id for launch in launches]
    if ids != list(range(len(launches))):
        issue("chronological_ids", "launch ids are not 0..n-1 in order")

    oversized = [
        launch.launch_id
        for launch in launches
        if launch.grid_blocks > _MAX_GRID_BLOCKS
    ]
    if oversized:
        issue(
            "bounded_grids",
            f"launches {oversized[:5]} exceed {_MAX_GRID_BLOCKS} blocks",
        )

    # Shared ingestion checks: every spec/mix field must be finite.  A
    # NaN here would sail through the simulator's arithmetic unnoticed.
    issues.extend(launch_issues(spec.name, launches))

    rebuilt = spec.build()
    if len(rebuilt) != len(launches) or any(
        a.spec.signature() != b.spec.signature() or a.grid_blocks != b.grid_blocks
        for a, b in zip(launches, rebuilt, strict=True)
    ):
        issue("deterministic", "two builds disagree")

    if spec.suite == "mlperf":
        if spec.scale <= 1.0:
            issue("mlperf_scale", "MLPerf workloads must record a scale factor")
        if spec.completable:
            issue("mlperf_completable", "MLPerf must not claim completability")
        untagged = sum(1 for launch in launches if not launch.nvtx)
        if untagged / len(launches) > 0.05:
            issue(
                "nvtx_annotations",
                f"{untagged} launches lack PyProf-style NVTX tags",
            )

    for generation, builder in spec.variant_builders.items():
        try:
            variant = builder()
        except Exception as error:  # noqa: BLE001
            issue("variant_buildable", f"{generation} variant raised {error!r}")
            continue
        if not variant:
            issue("variant_nonempty", f"{generation} variant is empty")

    return issues


def validate_corpus(suite: str | None = None) -> ValidationReport:
    """Validate every registered workload (optionally one suite)."""
    issues: list[ValidationIssue] = []
    count = 0
    for spec in iter_workloads(suite):
        count += 1
        issues.extend(validate_workload(spec))
    return ValidationReport(checked=count, issues=tuple(issues))
