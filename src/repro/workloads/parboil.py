"""Synthetic Parboil suite.

Structured after Table 3's PKS examples: histo clusters into four groups
of 20 kernels each; cutcp into three groups of sizes 2/3/6.
"""

from __future__ import annotations

from repro.workloads.generator import (
    LaunchBuilder,
    compute_spec,
    irregular_spec,
    streaming_spec,
    tiny_spec,
)
from repro.workloads.spec import WorkloadSpec

__all__ = ["build_suite"]

MIB = 1024 * 1024


def _bfs() -> list:
    builder = LaunchBuilder()
    kernel = irregular_spec("BFS_kernel", divergence=0.35, duration_cv=0.65)
    frontiers = [2, 18, 160, 900, 2400, 3000, 2100, 800, 150, 20, 4, 1]
    for frontier in frontiers:
        builder.add(kernel, frontier)
    return builder.launches()


def _cutcp() -> list:
    """Three kernel families of 2, 3 and 6 instances (Table 3)."""
    builder = LaunchBuilder()
    lattice = compute_spec("cuda_cutoff_potential_lattice", flops=900.0, shared=120.0)
    setup = tiny_spec("cutcp_setup", work=50.0)
    exclusion = streaming_spec("cutcp_exclusions", loads=18.0, stores=6.0)
    builder.add(setup, 64, repeat=2)
    builder.add(exclusion, 512, repeat=3)
    builder.add(lattice, 1200, repeat=6)
    return builder.launches()


def _histo() -> list:
    """Four kernel families of 20 instances each (Table 3)."""
    builder = LaunchBuilder()
    prescan = tiny_spec("histo_prescan_kernel", work=45.0)
    intermediate = irregular_spec(
        "histo_intermediates_kernel", atomics=4.0, divergence=0.7, duration_cv=0.25
    )
    main = irregular_spec(
        "histo_main_kernel", atomics=8.0, divergence=0.6, duration_cv=0.3, loads=40.0
    )
    final = streaming_spec(
        "histo_final_kernel", loads=4.0, stores=22.0, sectors=16.0, locality=0.05
    )
    for _ in range(20):
        builder.add(prescan, 64)
        builder.add(intermediate, 390)
        builder.add(main, 84)
        builder.add(final, 42)
    return builder.launches()


def _mri() -> list:
    builder = LaunchBuilder()
    phi = compute_spec("ComputePhiMag_GPU", flops=60.0, loads=8.0)
    q_kernel = compute_spec("ComputeQ_GPU", flops=1400.0, loads=10.0, locality=0.85)
    for _ in range(3):
        builder.add(phi, 128)
        builder.add(q_kernel, 640, repeat=2)
    return builder.launches()


def _sad() -> list:
    builder = LaunchBuilder()
    sad_calc = compute_spec("mb_sad_calc", flops=1_400.0, loads=120.0, locality=0.6)
    sad_8 = streaming_spec("larger_sad_calc_8", loads=14.0, stores=8.0)
    sad_16 = streaming_spec("larger_sad_calc_16", loads=12.0, stores=6.0)
    builder.add(sad_calc, 792)
    builder.add(sad_8, 99)
    builder.add(sad_16, 99)
    return builder.launches()


def _sgemm() -> list:
    builder = LaunchBuilder()
    gemm = compute_spec(
        "mysgemmNT",
        flops=14_000.0,
        shared=1_300.0,
        locality=0.85,
        working_set=96 * MIB,
        threads_per_block=128,
    )
    builder.add(gemm, 1_280)
    return builder.launches()


def _spmv() -> list:
    builder = LaunchBuilder()
    kernel = irregular_spec(
        "spmv_jds_naive", divergence=0.55, duration_cv=0.45, sectors=22.0, loads=34.0
    )
    builder.add(kernel, 574, repeat=50)
    return builder.launches()


def _stencil() -> list:
    builder = LaunchBuilder()
    kernel = streaming_spec(
        "block2D_hybrid_coarsen_x", loads=26.0, stores=8.0, locality=0.45
    )
    builder.add(kernel, 1024, repeat=100)
    return builder.launches()


def build_suite() -> list[WorkloadSpec]:
    """All 8 Parboil workloads of the paper's Table 4."""
    suite = "parboil"
    return [
        WorkloadSpec("parboil_bfs", suite, _bfs),
        WorkloadSpec("cutcp", suite, _cutcp),
        WorkloadSpec("histo", suite, _histo),
        WorkloadSpec("mri", suite, _mri),
        WorkloadSpec("sad", suite, _sad),
        WorkloadSpec("parboil_sgemm", suite, _sgemm),
        WorkloadSpec("spmv", suite, _spmv),
        WorkloadSpec("parboil_stencil", suite, _stencil),
    ]
