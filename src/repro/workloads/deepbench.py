"""Synthetic DeepBench suite: 69 workloads across 12 sub-families.

Convolution, GEMM and RNN benchmarks in inference and training variants,
with and without tensor cores — each over several problem-size "inputs",
matching the input counts of the paper's Table 4 (e.g. 9 RNN-inference
inputs, 10 tensor-core RNN-inference inputs).

Two quirks from the paper are modelled faithfully:

* cuDNN's runtime algorithm selection makes convolution *training* runs
  launch different kernels under the profiler on Turing (the 51.3% Turing
  error row) — expressed as a ``variant_builders["turing"]`` that swaps
  the algorithm;
* the same mismatch breaks the simulator's trace/profile pairing, so the
  CUDA conv-training simulation column is "*" — expressed as the
  ``"sim_kernel_mismatch"`` quirk.
"""

from __future__ import annotations

from repro.workloads.generator import (
    LaunchBuilder,
    compute_spec,
    streaming_spec,
    tensor_spec,
    tiny_spec,
)
from repro.workloads.spec import WorkloadSpec

__all__ = ["build_suite"]

MIB = 1024 * 1024

# (batch, input_channels, output_channels, spatial) per conv input.
_CONV_INPUTS = [
    (16, 64, 128, 56),
    (16, 128, 256, 28),
    (32, 256, 512, 14),
    (8, 64, 64, 112),
    (16, 512, 512, 7),
]

# (m, n, k) per GEMM input.
_GEMM_INPUTS = [
    (1760, 128, 1760),
    (2048, 64, 2048),
    (2560, 256, 2560),
    (4096, 128, 4096),
    (5124, 700, 2048),
]

# (hidden, time_steps) per RNN-inference input (9 of them; the
# tensor-core variant has a 10th).
_RNN_INF_INPUTS = [
    (512, 25),
    (512, 50),
    (1024, 25),
    (1024, 50),
    (1536, 50),
    (2048, 25),
    (2048, 50),
    (2560, 50),
    (2816, 25),
]
_RNN_INF_TC_EXTRA = (3072, 25)

_RNN_TRAIN_INPUTS = [
    (512, 25),
    (1024, 25),
    (1536, 25),
    (2048, 25),
    (2560, 25),
]


def _autotune_probes(builder: LaunchBuilder, tag: str, work: float, grid: int) -> None:
    """cudnnFind*AlgorithmEx warm-up: candidate algorithms tried once each.

    The losing candidates are memory-inefficient (scattered access, no
    reuse), so these leading launches burn many cycles per instruction —
    the reason "simulate the first N instructions" grossly misreads
    DeepBench-style workloads (and the very cuDNN behaviour behind the
    paper's kernel-count-mismatch quirk).
    """
    naive = streaming_spec(
        f"cudnn_autotune_direct_{tag}",
        loads=work / 4.0,
        stores=work / 16.0,
        flops=work / 8.0,
        locality=0.02,
        sectors=32.0,
        working_set=512 * MIB,
    )
    fft_probe = streaming_spec(
        f"cudnn_autotune_fft_{tag}",
        loads=work / 5.0,
        stores=work / 10.0,
        flops=work / 6.0,
        locality=0.05,
        sectors=24.0,
        working_set=512 * MIB,
    )
    builder.add(naive, grid, repeat=2)
    builder.add(fft_probe, grid, repeat=2)


def _conv_specs(tag: str, channels: int, spatial: int, tensor: bool):
    """The kernel family one cuDNN conv algorithm uses."""
    work = channels * 2.0
    working_set = 4.0 * channels * spatial * spatial * 8
    if tensor:
        main = tensor_spec(
            f"implicit_convolve_hgemm_{tag}",
            tensor_ops=work / 2.0,
            loads=work / 24.0,
            working_set=working_set,
        )
    else:
        main = compute_spec(
            f"implicit_convolve_sgemm_{tag}",
            flops=work,
            loads=work / 12.0,
            shared=work / 4.0,
            locality=0.8,
            working_set=working_set,
        )
    bias = streaming_spec(f"cudnn_add_bias_{tag}", loads=6.0, stores=6.0)
    return main, bias


def _conv_inference_builder(index: int, tensor: bool):
    batch, cin, cout, spatial = _CONV_INPUTS[index]
    tag = f"{'tc' if tensor else 'fp32'}_inf_{index}"

    def build() -> list:
        builder = LaunchBuilder()
        main, bias = _conv_specs(tag, cin + cout, spatial, tensor)
        grid = max(8, batch * spatial * spatial // 64)
        _autotune_probes(builder, tag, work=float(cin + cout), grid=grid)
        for _ in range(3):  # deepbench repeats each problem a few times
            builder.add(main, grid)
            builder.add(bias, max(1, grid // 8))
        return builder.launches()

    return build


def _conv_training_builder(index: int, tensor: bool, algorithm: str = "winograd"):
    """Training = forward + data-grad + weight-grad kernel triple.

    ``algorithm`` models cuDNN's runtime autotuner: under the profiler on
    Turing a different algorithm wins, changing both the kernel names and
    the launch count.
    """
    batch, cin, cout, spatial = _CONV_INPUTS[index]
    tag = f"{'tc' if tensor else 'fp32'}_train_{index}_{algorithm}"

    def build() -> list:
        builder = LaunchBuilder()
        main, bias = _conv_specs(tag, cin + cout, spatial, tensor)
        dgrad = compute_spec(
            f"cudnn_dgrad_{tag}",
            flops=(cin + cout) * 2.2,
            loads=(cin + cout) / 10.0,
            locality=0.75,
            working_set=4.0 * cin * spatial * spatial * 8,
        )
        wgrad = compute_spec(
            f"cudnn_wgrad_{tag}",
            flops=(cin + cout) * 1.8,
            loads=(cin + cout) / 9.0,
            locality=0.7,
            working_set=4.0 * cout * spatial * spatial * 8,
        )
        grid = max(8, batch * spatial * spatial // 64)
        _autotune_probes(builder, tag, work=float(cin + cout), grid=grid)
        repeats = 3 if algorithm == "winograd" else 4
        for _ in range(repeats):
            builder.add(main, grid)
            builder.add(bias, max(1, grid // 8))
            builder.add(dgrad, grid)
            builder.add(wgrad, max(1, grid // 2))
            if algorithm != "winograd":
                # The FFT-based algorithm adds transform kernels.
                builder.add(
                    streaming_spec(f"fft2d_r2c_{tag}", loads=18.0, stores=18.0),
                    max(1, grid // 4),
                )
        return builder.launches()

    return build


def _gemm_builder(index: int, tensor: bool, training: bool):
    m, n, k = _GEMM_INPUTS[index]
    mode = "train" if training else "inf"
    tag = f"{'tc' if tensor else 'fp32'}_{mode}_{index}"

    def build() -> list:
        builder = LaunchBuilder()
        if tensor:
            gemm = tensor_spec(
                f"volta_h884gemm_{tag}",
                tensor_ops=k / 4.0,
                loads=k / 32.0,
                working_set=2.0 * (m * k + k * n),
            )
        else:
            gemm = compute_spec(
                f"volta_sgemm_128x64_{tag}",
                flops=2.0 * k,
                loads=k / 16.0,
                shared=k / 2.0,
                locality=0.85,
                working_set=4.0 * (m * k + k * n),
            )
        grid = max(4, min(512, (m // 128) * (n // 64)))
        _autotune_probes(builder, tag, work=float(k) / 8.0, grid=grid)
        passes = 3 if training else 2  # fwd+dgrad+wgrad vs fwd only
        for _ in range(passes):
            builder.add(gemm, grid)
        if training:
            builder.add(
                streaming_spec(f"sgd_update_{tag}", loads=8.0, stores=8.0),
                max(1, grid // 4),
            )
        return builder.launches()

    return build


def _rnn_builder(hidden: int, steps: int, tensor: bool, training: bool):
    """cuDNN RNNs fuse the time-step loop into *persistent* kernels, so a
    whole sequence is a handful of heavyweight launches — PKS reduction
    is modest (~2-5x), matching the paper's RNN-bench rows."""
    mode = "train" if training else "inf"
    tag = f"{'tc' if tensor else 'fp32'}_{mode}_h{hidden}"

    def build() -> list:
        builder = LaunchBuilder()
        work = hidden * steps / 8.0
        if tensor:
            persistent = tensor_spec(
                f"lstm_persist_h884gemm_{tag}",
                tensor_ops=work,
                loads=work / 16.0,
                working_set=8.0 * hidden * hidden,
            )
        else:
            persistent = compute_spec(
                f"lstm_persist_gemm_{tag}",
                flops=work,
                loads=work / 12.0,
                shared=work / 4.0,
                locality=0.8,
                working_set=8.0 * hidden * hidden,
            )
        embed = streaming_spec(f"lstm_embed_{tag}", loads=14.0, stores=10.0)
        pointwise = tiny_spec(f"lstm_final_elementwise_{tag}", work=90.0)
        grid = max(8, hidden * 4 // 128)
        builder.add(embed, grid)
        # Four stacked layers, each one persistent launch per direction.
        builder.add(persistent, grid, repeat=4)
        builder.add(pointwise, max(1, grid // 2), repeat=2)
        if training:
            bgemm = compute_spec(
                f"lstm_persist_bgrad_{tag}",
                flops=work * 1.1,
                loads=work / 10.0,
                locality=0.75,
                working_set=8.0 * hidden * hidden,
            )
            builder.add(bgemm, grid, repeat=4)
            builder.add(pointwise, max(1, grid // 2), repeat=2)
        return builder.launches()

    return build


def build_suite() -> list[WorkloadSpec]:
    """All 69 DeepBench workloads of the paper's Table 4."""
    suite = "deepbench"
    specs: list[WorkloadSpec] = []

    for tensor in (False, True):
        flavor = "tc" if tensor else "fp32"
        for index in range(len(_CONV_INPUTS)):
            specs.append(
                WorkloadSpec(
                    f"db_conv_inf_{flavor}_{index}",
                    suite,
                    _conv_inference_builder(index, tensor),
                )
            )
        for index in range(len(_CONV_INPUTS)):
            if tensor:
                # Paper: the tensor-core training runs mismatch on Turing
                # and Ampere silicon entirely ("*" columns).
                quirks = ("no_turing", "no_ampere")
                variants = {}
            else:
                # Paper: Turing's autotuner picks a different algorithm
                # under the profiler (51.3% error row) and the simulator's
                # trace/profile pairing breaks ("*" sim column).
                quirks = ("sim_kernel_mismatch",)
                variants = {
                    "turing": _conv_training_builder(index, tensor, algorithm="fft")
                }
            specs.append(
                WorkloadSpec(
                    f"db_conv_train_{flavor}_{index}",
                    suite,
                    _conv_training_builder(index, tensor),
                    quirks=quirks,
                    variant_builders=variants,
                )
            )
        for training in (False, True):
            mode = "train" if training else "inf"
            for index in range(len(_GEMM_INPUTS)):
                specs.append(
                    WorkloadSpec(
                        f"db_gemm_{mode}_{flavor}_{index}",
                        suite,
                        _gemm_builder(index, tensor, training),
                    )
                )

    for index, (hidden, steps) in enumerate(_RNN_INF_INPUTS):
        specs.append(
            WorkloadSpec(
                f"db_rnn_inf_fp32_{index}",
                suite,
                _rnn_builder(hidden, steps, tensor=False, training=False),
            )
        )
    tc_inputs = list(_RNN_INF_INPUTS) + [_RNN_INF_TC_EXTRA]
    for index, (hidden, steps) in enumerate(tc_inputs):
        specs.append(
            WorkloadSpec(
                f"db_rnn_inf_tc_{index}",
                suite,
                _rnn_builder(hidden, steps, tensor=True, training=False),
            )
        )
    for index, (hidden, steps) in enumerate(_RNN_TRAIN_INPUTS):
        specs.append(
            WorkloadSpec(
                f"db_rnn_train_fp32_{index}",
                suite,
                _rnn_builder(hidden, steps, tensor=False, training=True),
            )
        )
        specs.append(
            WorkloadSpec(
                f"db_rnn_train_tc_{index}",
                suite,
                _rnn_builder(hidden, steps, tensor=True, training=True),
            )
        )
    return specs
