"""NVArchSim-style single-iteration scaling (the Section-6 comparison).

Villa et al. [HPCA'21] sidestep scaled ML workloads by simulating a single
training/inference iteration in full and scaling the result by the
iteration count.  Intuitive, but it requires contextual knowledge of the
application (where iteration boundaries are) and simulates far more than
PKA: the paper measures roughly 3x the simulation of PKS and 48x that of
PKA on ResNet at comparable accuracy.

Iteration boundaries come from the PyProf-style NVTX annotations our
MLPerf generators attach (``iterN`` / ``batchN`` / ``caseN`` layer tags).
"""

from __future__ import annotations

import re
from collections.abc import Sequence

from repro.errors import ReproError
from repro.gpu.kernels import KernelLaunch
from repro.sim.perfmodel import KERNEL_LAUNCH_OVERHEAD
from repro.sim.simulator import Simulator
from repro.sim.stats import AppRunResult

__all__ = ["iteration_key", "split_iterations", "run_single_iteration"]

_ITERATION_PATTERN = re.compile(r"^(iter|batch|case)(\d+)")


def iteration_key(launch: KernelLaunch) -> str | None:
    """Extract the iteration tag ("iter3", "batch12"...) from a launch."""
    layer = launch.nvtx.get("layer", "")
    match = _ITERATION_PATTERN.match(layer)
    return match.group(0) if match else None


def split_iterations(
    launches: Sequence[KernelLaunch],
) -> list[list[KernelLaunch]]:
    """Group launches into iterations by their NVTX tags (order-preserving).

    Launches with no iteration tag attach to the current iteration (or
    the first one, for leading untagged kernels).
    """
    iterations: list[list[KernelLaunch]] = []
    current_key: str | None = None
    for launch in launches:
        key = iteration_key(launch)
        if key is not None and key != current_key:
            iterations.append([])
            current_key = key
        if not iterations:
            iterations.append([])
        iterations[-1].append(launch)
    return iterations


def run_single_iteration(
    workload_name: str,
    launches: Sequence[KernelLaunch],
    simulator: Simulator,
    *,
    iteration_index: int = 1,
) -> AppRunResult:
    """Fully simulate one iteration and scale by the iteration count.

    ``iteration_index`` defaults to the *second* iteration so warm-up
    effects in the first do not pollute the scaled estimate (the
    practitioners' usual choice).
    """
    iterations = split_iterations(launches)
    if len(iterations) < 2:
        raise ReproError(
            f"{workload_name} has no NVTX iteration structure; "
            "single-iteration scaling needs application knowledge"
        )
    index = min(iteration_index, len(iterations) - 1)
    chosen = iterations[index]

    iteration_cycles = 0.0
    iteration_insts = 0.0
    iteration_bytes = 0.0
    for launch in chosen:
        result = simulator.run_kernel(launch)
        iteration_cycles += result.cycles + KERNEL_LAUNCH_OVERHEAD
        iteration_insts += result.warp_instructions
        iteration_bytes += result.dram_bytes

    count = len(iterations)
    return AppRunResult(
        workload=workload_name,
        gpu=simulator.gpu,
        method="single_iteration",
        total_cycles=iteration_cycles * count,
        total_instructions=iteration_insts * count,
        total_dram_bytes=iteration_bytes * count,
        simulated_cycles=iteration_cycles - KERNEL_LAUNCH_OVERHEAD * len(chosen),
    )
