"""The "simulate the first N instructions" baseline.

The commonly used practice the paper compares against (its Figures 7, 8
and 10): simulate kernels in launch order until a budget of one billion
thread-level instructions is spent, then report the statistics of that
prefix as if they represented the whole application.  Fast, but blind to
everything after the warm-up phase — which is exactly where scaled
workloads spend their time.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ReproError
from repro.gpu.kernels import KernelLaunch
from repro.sim.perfmodel import KERNEL_LAUNCH_OVERHEAD
from repro.sim.simulator import Simulator
from repro.sim.stats import AppRunResult

__all__ = ["ONE_BILLION", "run_first_n_instructions"]

ONE_BILLION = 1_000_000_000.0


def run_first_n_instructions(
    workload_name: str,
    launches: Sequence[KernelLaunch],
    simulator: Simulator,
    *,
    instruction_budget: float = ONE_BILLION,
) -> AppRunResult:
    """Simulate the leading launches until the instruction budget is spent.

    The application estimate extrapolates the prefix IPC over the
    application's (known) total instruction count — the standard way
    prefix statistics get quoted as whole-program numbers.  The final
    kernel that crosses the budget is still simulated whole (simulators
    do not stop mid-kernel in this methodology).
    """
    if instruction_budget <= 0:
        raise ReproError("instruction_budget must be positive")
    if not launches:
        raise ReproError("cannot simulate an empty workload")

    prefix_kernel_cycles = 0.0
    prefix_bytes = 0.0
    thread_insts_seen = 0.0
    launches_simulated = 0
    for launch in launches:
        result = simulator.run_kernel(launch)
        prefix_kernel_cycles += result.cycles
        prefix_bytes += result.dram_bytes
        thread_insts_seen += launch.thread_instructions
        launches_simulated += 1
        if thread_insts_seen >= instruction_budget:
            break

    # Extrapolate the prefix's kernel cycles over the whole application by
    # instruction count; launch overheads are known exactly (one per
    # launch) and added separately.
    total_thread_insts = sum(launch.thread_instructions for launch in launches)
    expansion = (
        total_thread_insts / thread_insts_seen if thread_insts_seen > 0 else 1.0
    )
    return AppRunResult(
        workload=workload_name,
        gpu=simulator.gpu,
        method="first_1b",
        total_cycles=prefix_kernel_cycles * expansion
        + KERNEL_LAUNCH_OVERHEAD * len(launches),
        # Instruction totals are trace-exact regardless of truncation.
        total_instructions=sum(launch.warp_instructions for launch in launches),
        total_dram_bytes=prefix_bytes * expansion,
        simulated_cycles=prefix_kernel_cycles,
    )
