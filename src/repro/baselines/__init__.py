"""Baselines the paper compares PKA against: TBPoint, first-1B-instruction
truncation, and NVArchSim-style single-iteration scaling."""

from repro.baselines.first_n import ONE_BILLION, run_first_n_instructions
from repro.baselines.single_iteration import (
    iteration_key,
    run_single_iteration,
    split_iterations,
)
from repro.baselines.tbpoint import (
    TBPointSelection,
    select_tbpoint,
    simulate_tbpoint,
)

__all__ = [
    "ONE_BILLION",
    "TBPointSelection",
    "iteration_key",
    "run_first_n_instructions",
    "run_single_iteration",
    "select_tbpoint",
    "simulate_tbpoint",
    "split_iterations",
]
