"""TBPoint-style sampled simulation (the prior-work baseline).

TBPoint [Huang et al., IPDPS'14] reduces the number of kernels simulated
by hierarchically clustering per-kernel feature vectors obtained from
*full functional simulation*, cutting the dendrogram at a hand-tuned
distance threshold.  Two properties separate it from PKS and drive the
paper's comparison:

* the feature vectors require functionally simulating the entire
  application first, so the method only applies to workloads that are
  completable — hierarchical clustering additionally needs the full
  O(n^2) distance matrix, which is the scalability wall
  (:class:`repro.mlkit.ClusteringCapacityError`) at MLPerf kernel counts;
* the distance threshold needs per-application tuning; in lieu of hand
  tuning, this implementation sweeps 20 thresholds between 0.01 and 0.2
  (as the paper does for its TBPoint results) and keeps the best by the
  same projected-error criterion PKS uses;
* representatives are cluster medoids rather than first-chronological
  kernels, which is the conservative choice that costs TBPoint its 2.19x
  extra simulation time in Figure 7.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.features import FeaturePipeline, profile_feature_matrix
from repro.errors import ReproError
from repro.gpu.kernels import KernelLaunch
from repro.mlkit import ClusteringCapacityError, build_merge_tree
from repro.profiling.detailed import DetailedProfile
from repro.sim.perfmodel import KERNEL_LAUNCH_OVERHEAD
from repro.sim.simulator import Simulator
from repro.sim.stats import AppRunResult

__all__ = ["TBPointSelection", "select_tbpoint", "simulate_tbpoint"]

_THRESHOLD_SWEEP = np.linspace(0.01, 0.2, 20)


@dataclass(frozen=True)
class TBPointSelection:
    """TBPoint's chosen clustering: representative ids and weights."""

    workload: str
    total_launches: int
    threshold: float
    n_clusters: int
    representative_launch_ids: tuple[int, ...]
    weights: tuple[int, ...]
    projection_error: float


def select_tbpoint(
    workload_name: str,
    profiles: Sequence[DetailedProfile],
    *,
    target_error: float = 0.05,
    max_points: int = 20_000,
) -> TBPointSelection:
    """Cluster kernels TBPoint-style with the 20-threshold sweep.

    Raises :class:`ClusteringCapacityError` for kernel counts beyond the
    hierarchical-clustering capacity — TBPoint does not scale to MLPerf.
    """
    if not profiles:
        raise ReproError("TBPoint requires at least one profile")
    if len(profiles) > max_points:
        raise ClusteringCapacityError(
            f"TBPoint cannot cluster {len(profiles)} kernels "
            f"(capacity {max_points})"
        )

    counters = profile_feature_matrix(profiles)
    pipeline = FeaturePipeline()
    reduced = pipeline.fit_transform(counters)
    # Normalize to unit scale so the absolute threshold sweep is
    # comparable across applications.
    spread = float(np.abs(reduced).max()) or 1.0
    normalized = reduced / spread
    cycles = np.asarray([profile.cycles for profile in profiles])
    actual_total = float(cycles.sum())

    # Agglomerate once; cut the same dendrogram at every sweep threshold.
    tree = build_merge_tree(normalized, linkage="average", max_points=max_points)
    best: TBPointSelection | None = None
    for threshold in _THRESHOLD_SWEEP:
        labels = tree.labels_at_threshold(float(threshold))
        selection = _selection_for(
            workload_name, profiles, normalized, labels, cycles, actual_total,
            float(threshold),
        )
        if best is None or _better(selection, best, target_error):
            best = selection
    assert best is not None
    return best


def _better(
    candidate: TBPointSelection, incumbent: TBPointSelection, target: float
) -> bool:
    """Prefer fewer clusters among selections meeting the error target,
    otherwise lower error."""
    candidate_ok = candidate.projection_error <= target
    incumbent_ok = incumbent.projection_error <= target
    if candidate_ok and incumbent_ok:
        return candidate.n_clusters < incumbent.n_clusters
    if candidate_ok != incumbent_ok:
        return candidate_ok
    return candidate.projection_error < incumbent.projection_error


def _selection_for(
    workload_name: str,
    profiles: Sequence[DetailedProfile],
    normalized: np.ndarray,
    labels: np.ndarray,
    cycles: np.ndarray,
    actual_total: float,
    threshold: float,
) -> TBPointSelection:
    representative_ids: list[int] = []
    weights: list[int] = []
    projected = 0.0
    for cluster in sorted(np.unique(labels)):
        members = np.flatnonzero(labels == cluster)
        centroid = normalized[members].mean(axis=0)
        distances = np.linalg.norm(normalized[members] - centroid, axis=1)
        medoid = int(members[int(np.argmin(distances))])
        representative_ids.append(profiles[medoid].launch_id)
        weights.append(len(members))
        projected += float(cycles[medoid]) * len(members)
    error = abs(projected - actual_total) / actual_total if actual_total else 0.0
    return TBPointSelection(
        workload=workload_name,
        total_launches=len(profiles),
        threshold=threshold,
        n_clusters=len(representative_ids),
        representative_launch_ids=tuple(representative_ids),
        weights=tuple(weights),
        projection_error=error,
    )


def simulate_tbpoint(
    selection: TBPointSelection,
    launches: Sequence[KernelLaunch],
    simulator: Simulator,
    *,
    warmup_fraction: float = 0.5,
) -> AppRunResult:
    """Simulate TBPoint's representatives and project the application.

    TBPoint's intra-kernel reduction needs per-thread-block statistics
    from full simulation, so representatives here are simulated whole,
    plus a ``warmup_fraction`` of extra simulated cycles modelling the
    detailed-warmup runs its methodology prescribes — together the source
    of its conservative (2.19x-more-simulation) cost profile.
    """
    by_id = {launch.launch_id: launch for launch in launches}
    total_cycles = KERNEL_LAUNCH_OVERHEAD * selection.total_launches
    total_bytes = 0.0
    simulated = 0.0
    for launch_id, weight in zip(
        selection.representative_launch_ids, selection.weights, strict=True
    ):
        launch = by_id[launch_id]
        result = simulator.run_kernel(launch)
        total_cycles += result.cycles * weight
        total_bytes += result.dram_bytes * weight
        simulated += result.cycles * (1.0 + warmup_fraction)
    return AppRunResult(
        workload=selection.workload,
        gpu=simulator.gpu,
        method="tbpoint",
        total_cycles=total_cycles,
        # Instruction totals are trace-exact regardless of sampling.
        total_instructions=sum(launch.warp_instructions for launch in launches),
        total_dram_bytes=total_bytes,
        simulated_cycles=simulated,
    )
