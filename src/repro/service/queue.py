"""Bounded, fair job queue for the evaluation service.

Ordering is two-level:

1. **Priority** — lower numbers dispatch first (``priority=0`` is an
   express lane for interactive probes ahead of bulk sweeps).
2. **Per-client round-robin** — within a priority band the queue deals
   one job per client in rotation, so a client that dumps 500 jobs
   cannot starve a client that submits one.

Depth is bounded: :meth:`JobQueue.put` raises a typed
:class:`~repro.errors.QueueFullError` (HTTP 429) instead of buffering
without limit — backpressure is the client's signal to slow down.
Queued jobs can be plucked back out by id (:meth:`JobQueue.remove`),
which is how ``DELETE /v1/jobs/<id>`` cancels work that has not started.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque

from repro.errors import QueueFullError
from repro.service.jobs import JobRecord

__all__ = ["JobQueue"]


class JobQueue:
    """Thread-safe bounded FIFO with priority bands and client fairness."""

    def __init__(self, max_depth: int = 256) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        # priority -> client -> deque of JobRecord.  OrderedDict keeps the
        # client rotation order stable (insertion order, rotated on take).
        self._bands: dict[int, "OrderedDict[str, deque[JobRecord]]"] = {}
        self._depth = 0
        self._closed = False

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    def oldest_submitted_us(self) -> float | None:
        """Submission timestamp (``now_us`` clock) of the longest-queued
        job, or ``None`` when the queue is empty.  Feeds the oldest-wait
        gauge on ``/metricsz`` and the autoscaler's SLO-breach signal."""
        with self._lock:
            oldest: float | None = None
            for band in self._bands.values():
                for jobs in band.values():
                    for record in jobs:
                        if oldest is None or record.submitted_us < oldest:
                            oldest = record.submitted_us
            return oldest

    def put(self, record: JobRecord) -> None:
        """Enqueue, or raise :class:`QueueFullError` when at capacity."""
        with self._lock:
            if self._depth >= self.max_depth:
                raise QueueFullError(
                    f"job queue is full ({self._depth}/{self.max_depth})",
                    depth=self._depth,
                    max_depth=self.max_depth,
                )
            band = self._bands.setdefault(record.request.priority, OrderedDict())
            band.setdefault(record.request.client, deque()).append(record)
            self._depth += 1
            self._not_empty.notify()

    def put_front(self, record: JobRecord) -> None:
        """Re-enqueue at the head of the record's band (redispatch path).

        Used when a worker dies mid-job and its in-flight work must run
        again: the job already passed admission once, so this bypasses
        the depth bound (re-dispatch is recovery, not new load) and jumps
        the client's line so recovered work is not penalized by the
        fairness rotation.
        """
        with self._lock:
            band = self._bands.setdefault(record.request.priority, OrderedDict())
            jobs = band.setdefault(record.request.client, deque())
            jobs.appendleft(record)
            band.move_to_end(record.request.client, last=False)
            self._depth += 1
            self._not_empty.notify()

    def take_batch(
        self,
        max_jobs: int,
        *,
        linger: float = 0.02,
        timeout: float | None = None,
    ) -> list[JobRecord]:
        """Dequeue up to ``max_jobs`` jobs, fairly.

        Blocks up to ``timeout`` seconds for the first job (``None`` =
        forever, return ``[]`` only when closed), then lingers briefly so
        a burst of submissions coalesces into one batch instead of many
        single-job fan-outs.
        """
        with self._lock:
            while self._depth == 0 and not self._closed:
                if not self._not_empty.wait(timeout):
                    return []
        if linger > 0:
            # Outside the lock: give a burst time to arrive.
            threading.Event().wait(linger)
        with self._lock:
            return self._drain_locked(max_jobs)

    def _drain_locked(self, max_jobs: int) -> list[JobRecord]:
        taken: list[JobRecord] = []
        for priority in sorted(self._bands):
            band = self._bands[priority]
            # Round-robin: one job per client per pass until the band is
            # empty or the batch is full.
            while band and len(taken) < max_jobs:
                for client in list(band):
                    jobs = band[client]
                    taken.append(jobs.popleft())
                    self._depth -= 1
                    if jobs:
                        band.move_to_end(client)  # rotate
                    else:
                        del band[client]
                    if len(taken) >= max_jobs:
                        break
            if not band:
                del self._bands[priority]
            if len(taken) >= max_jobs:
                break
        return taken

    def remove(self, job_id: str) -> JobRecord | None:
        """Pluck a still-queued job out by id (for cancellation)."""
        with self._lock:
            for priority, band in list(self._bands.items()):
                for client, jobs in list(band.items()):
                    for record in jobs:
                        if record.job_id == job_id:
                            jobs.remove(record)
                            self._depth -= 1
                            if not jobs:
                                del band[client]
                            if not band:
                                del self._bands[priority]
                            return record
        return None

    def drain_all(self) -> list[JobRecord]:
        """Empty the queue entirely (drain-timeout cancellation sweep)."""
        with self._lock:
            leftovers = self._drain_locked(self._depth)
            return leftovers

    def close(self) -> None:
        """Wake any blocked :meth:`take_batch` callers for shutdown."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobQueue(depth={self.depth}, max_depth={self.max_depth})"
