"""The serving scheduler: dedup, batching, durability, and completion.

Three serving-layer optimizations happen here, all invisible to the
client beyond latency:

* **Single-flight dedup.**  Job ids are deterministic functions of the
  cell's content digest (:func:`~repro.service.jobs.job_id_for`), so a
  second submission of an in-flight or finished cell returns the
  *existing* record instead of scheduling twice.  Duplicate-heavy load
  therefore fans out strictly fewer backend cells than it accepts jobs.

* **Submission-time cache probe.**  Before queueing, the scheduler asks
  the harness's :class:`~repro.analysis.persistence.RunCache` for the
  cell by digest; a warm entry completes the job immediately (``source
  = "cache"``) without ever touching the queue or backend — this is
  what keeps cache-hit p95 latency in single-digit milliseconds.
  Fault-carrying jobs skip the probe (and get salted ids): an injected
  fault must actually reach the backend, not be satisfied from cache.

* **Batching.**  The dispatcher lingers briefly to coalesce a burst of
  submissions into one :meth:`~repro.analysis.harness.
  EvaluationHarness.evaluate_cells` fan-out, amortizing pool dispatch
  overhead.  Jobs still complete individually, as soon as their cell's
  :class:`~repro.sim.parallel.TaskOutcome` is decided, via the
  harness's job-granular ``progress`` hook.

Two robustness layers stack on top in fleet mode:

* **Durability.**  With a :class:`~repro.service.journal.JobJournal`
  attached, every accepted job is journaled *before* the submission
  returns, and every terminal transition afterwards.  A restarted
  coordinator calls :meth:`recover`: terminal jobs are restored (their
  results re-attached from the run cache), incomplete jobs re-enqueued.
  Zero accepted jobs are lost to a coordinator ``kill -9``.

* **Degradation.**  With a :class:`~repro.service.supervisor.
  WorkerSupervisor` attached, dispatch goes to worker processes instead
  of an in-process thread, and admission control becomes load-aware:
  queue-full submissions shed with 429 + ``Retry-After``; when *all*
  workers are down a circuit breaker flips to warm-cache-only mode —
  cache hits still complete, cold jobs shed with a typed
  :class:`~repro.errors.WorkersUnavailableError` (503) instead of
  queueing behind a dead fleet.

The scheduler owns the job registry: every record a client can observe
lives in ``_jobs`` and is mutated only under ``_lock``.
"""

from __future__ import annotations

import math
import threading
import time

from repro.analysis.harness import CellFailure, EvaluationHarness
from repro.errors import (
    DeadlineUnattainableError,
    JobNotFinishedError,
    JobNotFoundError,
    QueueFullError,
    ReproError,
    ServiceDrainingError,
    ServiceError,
    WorkersUnavailableError,
)
from repro.obs import get_tracer, now_us, obs_count, span_percentiles
from repro.service.jobs import (
    JobRecord,
    JobRequest,
    job_id_for,
    parse_job_fault,
)
from repro.service.journal import JobJournal
from repro.service.queue import JobQueue
from repro.sim.faults import FaultPlan, InjectedFault

__all__ = ["Scheduler"]


class Scheduler:
    """Single-flight, batching job scheduler over an EvaluationHarness.

    Construction does not start the dispatcher; call :meth:`start`.
    (Tests exploit this: submissions to an unstarted scheduler stay
    ``queued``, which is how cancellation and backpressure are pinned
    down deterministically.)

    ``journal`` and ``supervisor`` are optional and independent: a
    journal alone gives a single-process service durable recovery; a
    supervisor alone gives a fleet without persistence; together they
    are fleet mode as ``pka serve --workers N`` configures it.
    """

    #: EWMA smoothing for the observed per-job service time that feeds
    #: the admission-control queue-wait estimate.
    EWMA_ALPHA = 0.3

    def __init__(
        self,
        harness: EvaluationHarness,
        *,
        max_queue: int = 256,
        batch_max: int = 32,
        linger: float = 0.02,
        journal: JobJournal | None = None,
        supervisor=None,
        autoscaler=None,
        retry_after: float = 1.0,
        default_deadline: float | None = None,
        brownout_hold: float = 2.0,
    ) -> None:
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if default_deadline is not None and not default_deadline > 0:
            raise ValueError("default_deadline must be > 0 seconds")
        self.harness = harness
        self.queue = JobQueue(max_depth=max_queue)
        self.batch_max = batch_max
        self.linger = linger
        self.journal = journal
        self.supervisor = supervisor
        self.autoscaler = autoscaler
        self.retry_after = retry_after
        self.default_deadline = default_deadline
        self.brownout_hold = brownout_hold
        self._lock = threading.RLock()
        self._jobs: dict[str, JobRecord] = {}
        self._draining = False
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # Observed mean service time (seconds per computed job), EWMA'd;
        # None until the first computed completion warms the estimator.
        self._service_time_ewma_s: float | None = None
        # Deadline sheds latch the brownout readiness state briefly so
        # load balancers see a stable signal, not a per-request flicker.
        self._brownout_until = 0.0
        if supervisor is not None:
            supervisor.bind(self)
        if autoscaler is not None:
            autoscaler.bind(self)
        if journal is not None:
            self.recover()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        if self.supervisor is not None:
            self.supervisor.start()
            if self.autoscaler is not None:
                self.autoscaler.start()
            return
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="pka-scheduler", daemon=True
        )
        self._thread.start()

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: float = 30.0) -> bool:
        """Stop accepting work and wait for accepted jobs to finish.

        Returns ``True`` when every accepted job reached a terminal
        state within ``timeout`` (a *clean* drain).  On timeout, jobs
        still queued are cancelled (they can no longer run) and the
        drain reports unclean; jobs already running are left to finish
        or die with the process.  A clean drain compacts the journal, so
        the next boot replays a minimal file.
        """
        self._draining = True
        # Stop the control loop first: a drain must not race scale
        # decisions (growing a pool that is shutting down, or retiring a
        # worker the drain is waiting on).
        if self.autoscaler is not None:
            self.autoscaler.stop()
        deadline = threading.Event()
        step = 0.02
        waited = 0.0
        while waited < timeout:
            if not self._pending_jobs():
                break
            deadline.wait(step)
            waited += step
        # Anything still queued after the deadline will never run.
        for record in self.queue.drain_all():
            self._complete(record, "cancelled")
        clean = not self._pending_jobs()
        self._stop.set()
        self.queue.close()
        if self.supervisor is not None:
            self.supervisor.stop()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.journal is not None:
            if clean:
                try:
                    self.journal.compact()
                except OSError:
                    pass
            self.journal.close()
        return clean

    def close(self) -> None:
        """Immediate stop (no drain): cancel queued jobs, join the loop."""
        self._draining = True
        if self.autoscaler is not None:
            self.autoscaler.stop()
        self._stop.set()
        self.queue.close()
        for record in self.queue.drain_all():
            self._complete(record, "cancelled")
        if self.supervisor is not None:
            self.supervisor.stop(kill=True)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self.journal is not None:
            self.journal.close()

    def _pending_jobs(self) -> int:
        with self._lock:
            return sum(1 for record in self._jobs.values() if not record.terminal)

    # -- durability ------------------------------------------------------

    def _journal_event(self, event: str, record: JobRecord, **data) -> None:
        if self.journal is None:
            return
        try:
            self.journal.append(event, record.job_id, **data)
        except OSError:
            # A journal that cannot be written must not take serving
            # down; durability degrades, availability does not.
            obs_count("journal.append_failures")

    def note_fleet(self, action: str, **data) -> None:
        """Journal a worker-pool transition (grow/retire) as an audit
        record.  Replay ignores ``fleet`` events for job recovery, so
        this never perturbs durability — it only makes scaling decisions
        reconstructible after the fact."""
        if self.journal is None:
            return
        try:
            self.journal.append("fleet", f"fleet:{action}", **data)
        except OSError:
            obs_count("journal.append_failures")

    def recover(self) -> int:
        """Replay the journal into the registry; returns jobs restored.

        Terminal jobs come back terminal, with their results re-attached
        from the run cache when it still holds them.  Jobs accepted but
        never completed are re-enqueued at the front of the queue — they
        run as soon as :meth:`start` is called.  The journal is then
        compacted so repeated crash/restart cycles do not grow it
        without bound.
        """
        if self.journal is None:
            return 0
        records = self.journal.replay()
        if not records:
            return 0
        accepted: dict[str, dict] = {}
        completed: dict[str, dict] = {}
        order: list[str] = []
        for entry in records:
            if entry.event == "accepted":
                if entry.job_id not in accepted:
                    order.append(entry.job_id)
                accepted[entry.job_id] = entry.data
            elif entry.event == "completed":
                completed[entry.job_id] = entry.data
        pending: list[JobRecord] = []
        restored = 0
        with self._lock:
            for job_id in order:
                if job_id in self._jobs:
                    continue
                data = accepted[job_id]
                try:
                    request = JobRequest.from_document(data["request"])
                    digest = data["digest"]
                except (KeyError, ServiceError):
                    obs_count("journal.unrecoverable")
                    continue
                record = JobRecord(
                    job_id=job_id, request=request, digest=digest
                )
                final = completed.get(job_id)
                if final is not None:
                    record.state = final.get("state", "done")
                    record.error = final.get("error")
                    record.source = final.get("source")
                    record.attempts = final.get("attempts") or 0
                    record.latency_ms = final.get("latency_ms")
                    if record.state == "done":
                        record.result = self._cached_result(record)
                else:
                    record.state = "queued"
                    pending.append(record)
                self._jobs[job_id] = record
                restored += 1
        # Front of the queue, original order: recovered work predates
        # anything submitted after the restart.
        for record in reversed(pending):
            self.queue.put_front(record)
        obs_count("service.recovered_jobs", restored)
        if pending:
            obs_count("service.recovered_pending", len(pending))
        try:
            self.journal.compact(records)
        except OSError:
            pass
        return restored

    def _cached_result(self, record: JobRecord):
        """Re-attach a recovered job's result from the run cache."""
        if record.request.method == "selection":
            return self.harness.run_cache.get_selection(record.digest)
        return self.harness.run_cache.get_run(record.digest)

    # -- admission control ------------------------------------------------

    def _dispatch_capacity(self) -> int:
        """Parallel drain capacity: serving (non-draining, alive) fleet
        workers, or 1 for the in-process dispatcher."""
        if self.supervisor is None:
            return 1
        return max(1, self.supervisor.serving_workers)

    def estimate_queue_wait(self, extra: int = 0) -> float | None:
        """Predicted queue wait (seconds) for a job arriving now behind
        the current backlog plus ``extra`` jobs, from the observed
        per-job service-time EWMA and the serving capacity.  ``None``
        until the estimator has seen at least one computed completion —
        a cold estimator must not shed anything."""
        with self._lock:
            ewma = self._service_time_ewma_s
        if ewma is None:
            return None
        backlog = self.queue.depth + extra
        # Defense in depth for scale events: _dispatch_capacity clamps
        # to >= 1 already, but a supervisor mid-replacement can briefly
        # report zero (or a mocked/raced value) serving workers — never
        # let a transient fleet state turn the estimate into a
        # ZeroDivisionError or a non-finite shed-everything answer.
        capacity = max(1, self._dispatch_capacity())
        estimate = backlog * ewma / capacity
        if not math.isfinite(estimate):
            return None
        return estimate

    def _observe_service_time(self, seconds: float) -> None:
        if seconds < 0:
            return
        with self._lock:
            if self._service_time_ewma_s is None:
                self._service_time_ewma_s = seconds
            else:
                self._service_time_ewma_s += self.EWMA_ALPHA * (
                    seconds - self._service_time_ewma_s
                )

    @property
    def service_time_ewma_s(self) -> float | None:
        with self._lock:
            return self._service_time_ewma_s

    def in_brownout(self) -> bool:
        """True while deadline-aware admission is shedding (or would
        shed) work: recent deadline sheds latch it for ``brownout_hold``
        seconds, and a warm estimator predicting waits beyond the
        default deadline reports it proactively."""
        if time.monotonic() < self._brownout_until:
            return True
        if self.default_deadline is not None:
            predicted = self.estimate_queue_wait(extra=1)
            if predicted is not None and predicted > self.default_deadline:
                return True
        return False

    def _admit_deadline(self, record: JobRecord) -> None:
        """Shed the job now if its predicted queue wait exceeds its
        deadline.  Raises :class:`DeadlineUnattainableError` with a
        ``Retry-After`` derived from the backlog estimate."""
        deadline = record.request.deadline_s
        if deadline is None:
            deadline = self.default_deadline
        if deadline is None:
            return
        predicted = self.estimate_queue_wait(extra=1)
        if predicted is None or predicted <= deadline:
            return
        with self._lock:
            self._jobs.pop(record.job_id, None)
        self._brownout_until = time.monotonic() + self.brownout_hold
        obs_count("service.jobs_shed")
        obs_count("service.jobs_rejected")
        obs_count("service.deadline_sheds")
        raise DeadlineUnattainableError(
            f"predicted queue wait {predicted:.2f}s exceeds the "
            f"{deadline:.2f}s deadline; job shed at admission",
            predicted_wait=predicted,
            deadline=deadline,
            # How long until the backlog has drained enough for this
            # deadline to fit — not a static constant.
            retry_after=max(0.05, predicted - deadline),
        )

    # -- client-facing operations ----------------------------------------

    def submit(self, request: JobRequest) -> tuple[JobRecord, bool]:
        """Accept one job; returns ``(record, created)``.

        ``created=False`` means single-flight dedup matched an existing
        job (queued, running, or already terminal) and the caller
        attached to it.  Raises :class:`ServiceDrainingError` while
        draining, :class:`InvalidJobRequestError` for requests naming
        unknown workloads/methods/GPUs, :class:`QueueFullError` when
        backpressure applies, and :class:`WorkersUnavailableError` for a
        cold cell while every fleet worker is down (warm-cache-only
        mode).

        Durability contract: when a journal is attached, the job's
        ``accepted`` record is on disk before this method returns — a
        coordinator crash after the client's 202 can never lose the job.
        """
        if self._draining:
            raise ServiceDrainingError(
                "service is draining and no longer accepts jobs"
            )
        try:
            digest = self.harness.cell_digest_for(
                request.workload, request.method, request.gpu
            )
        except ServiceError:
            raise
        except ReproError as exc:
            # Unknown workload / method / GPU: the client's fault, not ours.
            from repro.errors import InvalidJobRequestError

            raise InvalidJobRequestError(str(exc)) from exc
        job_id = job_id_for(digest, request.fault)
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                existing.dedup_hits += 1
                obs_count("service.dedup_hits")
                return existing, False
            record = JobRecord(job_id=job_id, request=request, digest=digest)
            self._jobs[job_id] = record
        obs_count("service.jobs_submitted")
        if request.fault is None and self._probe_cache(record, digest):
            obs_count("service.cache_hits")
            return record, True
        # Semantic-cache warm path: a digest miss whose kernels are all
        # covered by already-simulated clusters is answered by transfer
        # and completes right here — it never queues and never runs the
        # DES.  Declined lookups (coverage or bound escalations) fall
        # through to the normal compute pipeline below.
        if request.fault is None and self._probe_transfer(record, digest):
            obs_count("service.transfer_hits")
            return record, True
        # Prediction warm path: both exact and similarity probes missed,
        # but the prediction tiers can price the cell within their error
        # bound — the job completes at submission without any event
        # loop.  Escalations fall through to the compute pipeline.
        if request.fault is None and self._probe_predict(record, digest):
            obs_count("service.predict_hits")
            return record, True
        # Circuit breaker: a cold cell cannot complete while every
        # worker is down — shed it now with retry advice instead of
        # queueing behind a dead fleet.  (Checked outside _lock; the
        # supervisor takes its own lock for liveness.)
        supervisor = self.supervisor
        if supervisor is not None and not supervisor.any_alive:
            with self._lock:
                self._jobs.pop(job_id, None)
            obs_count("service.jobs_shed")
            obs_count("service.jobs_rejected")
            raise WorkersUnavailableError(
                "all fleet workers are down; cold jobs are shed "
                "(warm-cache submissions still complete)",
                retry_after=supervisor.next_retry_after(),
            )
        # Deadline-aware admission: shed a job whose predicted queue
        # wait cannot meet its (or the server's default) deadline.
        self._admit_deadline(record)
        # Journal before enqueue: once the client hears "accepted", the
        # record is already durable.
        self._journal_event(
            "accepted",
            record,
            request=request.to_document(),
            digest=digest,
        )
        try:
            self.queue.put(record)
        except QueueFullError as exc:
            with self._lock:
                del self._jobs[job_id]
            # Compensate the accepted record so replay won't resurrect it.
            self._journal_event("completed", record, state="cancelled")
            obs_count("service.jobs_shed")
            obs_count("service.jobs_rejected")
            # Backlog-derived backoff when the estimator is warm (time
            # for one queue slot to open up); static fallback otherwise.
            with self._lock:
                ewma = self._service_time_ewma_s
            if ewma is not None:
                exc.retry_after = max(0.05, ewma / self._dispatch_capacity())
            else:
                exc.retry_after = self.retry_after
            raise
        # A drain that raced this submission may already have swept the
        # queue; make the outcome exactly-once either way.  If the
        # record is still in the queue, pull it back and refuse; if it
        # is not, the dispatcher or the drain sweep owns it and will
        # complete or cancel it exactly once.
        if self._draining:
            plucked = self.queue.remove(job_id)
            if plucked is not None:
                with self._lock:
                    self._jobs.pop(job_id, None)
                self._journal_event("completed", record, state="cancelled")
                obs_count("service.jobs_rejected")
                raise ServiceDrainingError(
                    "service is draining and no longer accepts jobs"
                )
        return record, True

    def _probe_cache(self, record: JobRecord, digest: str) -> bool:
        """Complete the job from the on-disk cache if the cell is warm."""
        if record.request.method == "selection":
            cached = self.harness.run_cache.get_selection(digest)
        else:
            cached = self.harness.run_cache.get_run(digest)
        if cached is None:
            return False
        self._journal_event(
            "accepted",
            record,
            request=record.request.to_document(),
            digest=digest,
        )
        self._complete(record, "done", result=cached, source="cache")
        return True

    def _probe_transfer(self, record: JobRecord, digest: str) -> bool:
        """Complete the job by similarity transfer if the index covers it.

        Mirrors :meth:`_probe_cache`'s durability contract: the accepted
        record is journaled before the completion, so replay accounting
        holds for transfer answers too.
        """
        if getattr(self.harness, "semcache", None) is None:
            return False
        transfer = self.harness.transfer_probe(
            record.request.workload, record.request.method, record.request.gpu
        )
        if transfer is None:
            return False
        self._journal_event(
            "accepted",
            record,
            request=record.request.to_document(),
            digest=digest,
        )
        self._complete(record, "done", result=transfer, source="transfer")
        return True

    def _probe_predict(self, record: JobRecord, digest: str) -> bool:
        """Complete the job from the prediction tiers if they can serve
        it within their configured error bound.

        Same durability contract as the other submit-time probes: the
        accepted record is journaled before the completion.
        """
        if getattr(self.harness, "predict", None) is None:
            return False
        predicted = self.harness.predict_probe(
            record.request.workload, record.request.method, record.request.gpu
        )
        if predicted is None:
            return False
        self._journal_event(
            "accepted",
            record,
            request=record.request.to_document(),
            digest=digest,
        )
        self._complete(record, "done", result=predicted, source="predicted")
        return True

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            record = self._jobs.get(job_id)
        if record is None:
            raise JobNotFoundError(f"no such job: {job_id}")
        return record

    def result(self, job_id: str) -> JobRecord:
        record = self.get(job_id)
        if not record.terminal:
            raise JobNotFinishedError(
                f"job {job_id} is still {record.state}; poll until terminal"
            )
        return record

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued job.  Terminal jobs are a no-op; running jobs
        cannot be recalled from the backend and raise."""
        record = self.get(job_id)
        with self._lock:
            if record.terminal:
                return record
            if record.state == "queued":
                plucked = self.queue.remove(job_id)
                if plucked is not None:
                    self._complete(record, "cancelled")
                    return record
            # Between take_batch and the running transition there is a
            # sliver where the job is neither in the queue nor marked
            # running; treat it like running — it is about to execute.
        raise JobNotFinishedError(
            f"job {job_id} is {record.state} and can no longer be cancelled"
        )

    def jobs(self) -> list[JobRecord]:
        with self._lock:
            return list(self._jobs.values())

    # -- fleet hooks (called by the WorkerSupervisor) --------------------

    def begin(self, record: JobRecord) -> bool:
        """Transition queued -> running at dispatch; False if the job was
        cancelled (or completed) in the take-batch window."""
        with self._lock:
            if record.state != "queued":
                return False
            record.state = "running"
            started_us = now_us()
            record.started_us = started_us
            record.queue_wait_ms = (started_us - record.submitted_us) / 1000.0
            get_tracer().record_span(
                "service.queue_wait",
                start_us=record.submitted_us,
                duration_us=started_us - record.submitted_us,
                job=record.job_id,
            )
        self._journal_event("started", record)
        return True

    def requeue(
        self,
        record: JobRecord,
        *,
        evidence: dict | None = None,
        count: bool = True,
    ) -> bool:
        """Put an in-flight job back at the front of the queue after its
        worker died.  ``count=False`` is for dispatch backouts (no
        worker actually failed the job)."""
        with self._lock:
            if record.terminal:
                return False
            record.state = "queued"
            if count:
                record.redispatches += 1
        if count:
            obs_count("service.redispatches")
            self._journal_event(
                "requeued",
                record,
                redispatches=record.redispatches,
                evidence=evidence,
            )
        self.queue.put_front(record)
        return True

    def quarantine(self, record: JobRecord, evidence: dict) -> None:
        """Poison-job terminal state: this job killed its worker once per
        redispatch allowed by the budget; fail it with the evidence."""
        obs_count("service.jobs_quarantined")
        self._complete(
            record,
            "failed",
            error={
                "kind": "quarantined",
                "error_type": "WorkerCrashError",
                "message": (
                    f"job killed {record.redispatches + 1} worker(s); "
                    "quarantined after exhausting its redispatch budget"
                ),
                "evidence": evidence,
            },
            attempts=record.redispatches + 1,
        )

    def finish(
        self,
        record: JobRecord,
        *,
        result=None,
        error: dict | None = None,
        attempts: int | None = None,
        source: str | None = "computed",
    ) -> None:
        """Terminal completion from a fleet worker's reported outcome."""
        state = "failed" if error is not None else "done"
        self._complete(
            record,
            state,
            result=result,
            error=error,
            attempts=attempts,
            source=source,
        )

    # -- dispatch --------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            batch = self.queue.take_batch(
                self.batch_max, linger=self.linger, timeout=0.1
            )
            if not batch:
                continue
            try:
                self._run_batch(batch)
            except Exception as exc:  # defensive: never kill the loop
                for record in batch:
                    if not record.terminal:
                        self._complete(
                            record,
                            "failed",
                            error={
                                "kind": "scheduler",
                                "error_type": type(exc).__name__,
                                "message": str(exc),
                            },
                        )

    def _run_batch(self, batch: list[JobRecord]) -> None:
        ready = [record for record in batch if self.begin(record)]
        if not ready:
            return
        cells = [
            (r.request.workload, r.request.method, r.request.gpu) for r in ready
        ]
        faults = []
        for index, record in enumerate(ready):
            if record.request.fault is not None:
                kind, attempts = parse_job_fault(record.request.fault)
                faults.append(
                    InjectedFault(task_index=index, kind=kind, attempts=attempts)
                )
        plan = FaultPlan(faults=tuple(faults)) if faults else None
        obs_count("service.backend_fanouts")
        obs_count("service.batch_cells", len(ready))

        def progress(outcome) -> None:
            # Job-granular completion: don't make job 1 wait for job 32.
            if outcome.ok:
                self._complete(
                    ready[outcome.index],
                    "done",
                    result=outcome.value,
                    source="computed",
                )

        results = self.harness.evaluate_cells(
            cells, strict=False, fault_plan=plan, progress=progress
        )
        for record, result in zip(ready, results, strict=True):
            if record.terminal:
                continue
            if isinstance(result, CellFailure):
                self._complete(
                    record,
                    "failed",
                    error=result.to_record(),
                    attempts=result.attempts,
                )
            else:
                self._complete(record, "done", result=result, source="computed")

    def _complete(
        self,
        record: JobRecord,
        state: str,
        *,
        result=None,
        error: dict | None = None,
        attempts: int | None = None,
        source: str | None = None,
    ) -> None:
        with self._lock:
            if record.terminal:
                return
            record.state = state
            record.result = result
            record.error = error
            if attempts is not None:
                record.attempts = attempts
            if source is not None:
                record.source = source
            end_us = now_us()
            record.latency_ms = (end_us - record.submitted_us) / 1000.0
            if (
                state == "done"
                and source == "computed"
                and record.started_us is not None
            ):
                self._observe_service_time(
                    (end_us - record.started_us) / 1_000_000.0
                )
            get_tracer().record_span(
                "service.job",
                start_us=record.submitted_us,
                duration_us=end_us - record.submitted_us,
                job=record.job_id,
                state=state,
                source=record.source or "none",
            )
        obs_count(f"service.jobs_{state}")
        self._journal_event(
            "completed",
            record,
            state=state,
            source=record.source,
            error=error,
            attempts=record.attempts,
            latency_ms=record.latency_ms,
        )

    # -- introspection ---------------------------------------------------

    def metrics(self) -> dict:
        """A JSON-ready snapshot for ``/metricsz`` and drain manifests."""
        tracer = get_tracer()
        with self._lock:
            states: dict[str, int] = {}
            for record in self._jobs.values():
                states[record.state] = states.get(record.state, 0) + 1
            total_jobs = len(self._jobs)
        counters = {
            name: value
            for name, value in sorted(tracer.counters.items())
            if name.startswith(
                ("service.", "tasks.", "harness.", "cache.", "backend.",
                 "fleet.", "journal.", "autoscaler.", "semcache.",
                 "predict.")
            )
        }
        cache = self.harness.run_cache
        lookups = cache.hits + cache.misses
        latency = {
            "all": span_percentiles(tracer, "service.job"),
            "cache": span_percentiles(
                tracer, "service.job", where=lambda args: args.get("source") == "cache"
            ),
            "computed": span_percentiles(
                tracer,
                "service.job",
                where=lambda args: args.get("source") == "computed",
            ),
            "transfer": span_percentiles(
                tracer,
                "service.job",
                where=lambda args: args.get("source") == "transfer",
            ),
            "predicted": span_percentiles(
                tracer,
                "service.job",
                where=lambda args: args.get("source") == "predicted",
            ),
        }
        oldest_us = self.queue.oldest_submitted_us()
        queue_age = span_percentiles(tracer, "service.queue_wait")
        queue_age["oldest_wait_s"] = (
            max(0.0, (now_us() - oldest_us) / 1_000_000.0)
            if oldest_us is not None
            else None
        )
        ewma = self.service_time_ewma_s
        document = {
            "queue_depth": self.queue.depth,
            "draining": self._draining,
            "jobs": total_jobs,
            "states": states,
            "counters": counters,
            "queue_age": queue_age,
            "admission": {
                "default_deadline_s": self.default_deadline,
                "service_time_ewma_ms": (
                    ewma * 1000.0 if ewma is not None else None
                ),
                "predicted_wait_s": self.estimate_queue_wait(extra=1),
                "brownout": self.in_brownout(),
            },
            "cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "writes": cache.writes,
                "evictions": cache.evictions,
                "evicted_bytes": cache.evicted_bytes,
                "hit_ratio": (cache.hits / lookups) if lookups else None,
            },
            "latency_ms": latency,
        }
        semcache = getattr(self.harness, "semcache", None)
        document["semcache"] = (
            semcache.snapshot() if semcache is not None else {"enabled": False}
        )
        predict = getattr(self.harness, "predict", None)
        document["predict"] = (
            predict.snapshot() if predict is not None else {"enabled": False}
        )
        if self.supervisor is not None:
            document["workers"] = self.supervisor.snapshot()
        if self.autoscaler is not None:
            document["autoscaler"] = self.autoscaler.snapshot()
        if self.journal is not None:
            document["journal"] = self.journal.stats()
        return document
