"""SLO-driven autoscaler: the control loop that makes the fleet elastic.

The :class:`Autoscaler` samples the same signals ``/metricsz`` exports —
queue depth, busy/serving worker counts, the oldest queued job's wait —
and drives the :class:`~repro.service.supervisor.WorkerSupervisor` pool
between a configured ``min_workers`` and ``max_workers``.

The policy is **target tracking with hysteresis**, built so scaling and
the supervisor's respawn backoff never fight and the pool never flaps:

* **Demand model.**  ``demand = queue_depth + busy`` (work waiting plus
  work in flight).  The pool's target size is ``ceil(demand /
  target_queue_per_worker)`` — each worker is expected to absorb a small
  personal backlog before another is worth its spawn cost.

* **Hysteresis band.**  Scale-up triggers when the target exceeds the
  current size *or* the oldest queued job has waited past the queue-wait
  SLO; scale-down only when demand falls below a separate, much lower
  watermark (``down_queue_per_worker`` per *remaining* worker).  The gap
  between the two watermarks is the dead band where no decision fires.

* **Consecutive-breach streaks.**  A single noisy sample never scales:
  the breach must persist for ``breaches_up`` (or ``breaches_down``)
  consecutive control intervals.  Any sample inside the dead band resets
  both streaks.

* **Per-direction cooldowns.**  After acting, the same direction is
  locked out for ``cooldown_up`` / ``cooldown_down`` seconds; a breach
  that is streak-complete but cooldown-blocked increments the
  ``flap_suppressed`` counter instead of acting.

Scale-down is **graceful and loss-free**: the autoscaler retires one
worker per decision via :meth:`WorkerSupervisor.retire`, which marks the
victim *draining* (no further dispatch), lets its in-flight job finish
within ``drain_grace`` seconds, and only then retires the slot.  A
worker that blows the grace deadline is reaped through the exact same
kill-and-redispatch path a crashed worker takes, so the in-flight job is
re-dispatched, never lost.  Every transition is journaled as a ``fleet``
audit record.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

from ..obs import now_us, obs_count

__all__ = ["Autoscaler", "AutoscalerConfig", "FleetSignals"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Policy knobs for the elastic fleet, validated at construction.

    The defaults suit the repo's silicon workloads (tens to hundreds of
    milliseconds per job): a 0.25 s control interval reacts to a burst
    within ~0.5 s (two up-breaches) while the 4-sample down requirement
    plus the 2 s cooldown keeps the pool from thrashing on the trailing
    edge.
    """

    min_workers: int = 1
    max_workers: int = 4
    #: Control loop sampling period, seconds.
    interval: float = 0.25
    #: Queue-wait SLO: when the oldest queued job has waited longer than
    #: this, it is an up-breach regardless of the demand model.
    slo_queue_wait_s: float = 2.0
    #: Backlog each worker is expected to absorb before another worker
    #: is warranted (scale-up watermark).
    target_queue_per_worker: float = 2.0
    #: Scale-down watermark: demand per *remaining* worker below which
    #: the pool is considered over-provisioned.  Must sit well below the
    #: scale-up watermark — the gap is the hysteresis dead band.
    down_queue_per_worker: float = 0.5
    #: Consecutive breach samples required before acting.
    breaches_up: int = 2
    breaches_down: int = 4
    #: Per-direction lockout after acting, seconds.
    cooldown_up: float = 0.5
    cooldown_down: float = 2.0
    #: How long a draining worker may finish its in-flight job before
    #: the supervisor reaps it (kill + redispatch).
    drain_grace: float = 10.0

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_workers < self.min_workers:
            raise ValueError("max_workers must be >= min_workers")
        if not self.interval > 0:
            raise ValueError("interval must be > 0")
        if not self.slo_queue_wait_s > 0:
            raise ValueError("slo_queue_wait_s must be > 0")
        if not self.target_queue_per_worker > 0:
            raise ValueError("target_queue_per_worker must be > 0")
        if self.down_queue_per_worker < 0:
            raise ValueError("down_queue_per_worker must be >= 0")
        if self.down_queue_per_worker >= self.target_queue_per_worker:
            raise ValueError(
                "down_queue_per_worker must be < target_queue_per_worker "
                "(the gap is the hysteresis dead band)"
            )
        if self.breaches_up < 1 or self.breaches_down < 1:
            raise ValueError("breach requirements must be >= 1")
        if self.cooldown_up < 0 or self.cooldown_down < 0:
            raise ValueError("cooldowns must be >= 0")
        if not self.drain_grace > 0:
            raise ValueError("drain_grace must be > 0")


@dataclass(frozen=True)
class FleetSignals:
    """One control-interval sample of the signals the policy reads.

    Mirrors what ``/metricsz`` exports, so a decision can always be
    reproduced from the metrics endpoint's history.  Synthetic instances
    drive the policy unit tests without a live fleet.
    """

    queue_depth: int
    busy: int
    serving: int
    configured: int
    oldest_wait_s: float | None = None

    @property
    def demand(self) -> int:
        return self.queue_depth + self.busy


@dataclass
class _Decision:
    action: str = "none"  # none | scale-up | scale-down | suppressed
    reason: str = "startup"
    from_workers: int = 0
    to_workers: int = 0
    at: float = 0.0

    def to_document(self) -> dict:
        return {
            "action": self.action,
            "reason": self.reason,
            "from_workers": self.from_workers,
            "to_workers": self.to_workers,
            "at": self.at,
        }


class Autoscaler:
    """Target-tracking control loop over a bound scheduler's fleet.

    Construction takes only the config; :meth:`bind` attaches the
    scheduler (whose ``supervisor`` is the actuator), matching how the
    supervisor itself is wired.  :meth:`step` is a pure policy
    transition over a :class:`FleetSignals` sample and an explicit
    clock, so tests replay synthetic load traces deterministically;
    :meth:`start` runs the real sampled loop on a daemon thread.
    """

    def __init__(self, config: AutoscalerConfig | None = None) -> None:
        self.config = config or AutoscalerConfig()
        self.scheduler = None
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._up_streak = 0
        self._down_streak = 0
        self._last_up_at = float("-inf")
        self._last_down_at = float("-inf")
        self._target = self.config.min_workers
        self._last_decision = _Decision()
        self.scale_ups = 0
        self.scale_downs = 0
        self.flap_suppressed = 0
        self.evaluations = 0

    # -- wiring ----------------------------------------------------------

    def bind(self, scheduler) -> None:
        self.scheduler = scheduler

    @property
    def supervisor(self):
        return self.scheduler.supervisor if self.scheduler is not None else None

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="pka-autoscaler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.config.interval):
            try:
                self.step(self.collect(), time.monotonic())
            except Exception:  # defensive: never kill the control loop
                obs_count("autoscaler.loop_errors")

    # -- sampling --------------------------------------------------------

    def collect(self) -> FleetSignals:
        """Sample the bound scheduler's queue and fleet into signals."""
        scheduler = self.scheduler
        supervisor = self.supervisor
        if scheduler is None or supervisor is None:
            raise RuntimeError("autoscaler is not bound to a fleet scheduler")
        oldest_us = scheduler.queue.oldest_submitted_us()
        oldest_wait_s = None
        if oldest_us is not None:
            oldest_wait_s = max(0.0, (now_us() - oldest_us) / 1_000_000.0)
        return FleetSignals(
            queue_depth=scheduler.queue.depth,
            busy=supervisor.busy_workers,
            serving=supervisor.serving_workers,
            configured=supervisor.workers,
            oldest_wait_s=oldest_wait_s,
        )

    # -- policy ----------------------------------------------------------

    def desired_workers(self, signals: FleetSignals) -> int:
        """Demand-model pool target, clamped to [min, max]."""
        cfg = self.config
        desired = math.ceil(signals.demand / cfg.target_queue_per_worker)
        return max(cfg.min_workers, min(cfg.max_workers, desired))

    def step(self, signals: FleetSignals, now: float) -> _Decision:
        """One control-interval transition: classify the sample, advance
        the breach streaks, and act when a streak completes outside its
        cooldown.  Returns the decision taken (``action="none"`` for the
        common no-op interval)."""
        cfg = self.config
        with self._lock:
            self.evaluations += 1
            configured = signals.configured
            desired = self.desired_workers(signals)
            self._target = desired

            slo_breach = (
                signals.oldest_wait_s is not None
                and signals.oldest_wait_s > cfg.slo_queue_wait_s
                and signals.queue_depth > 0
            )
            up_breach = configured < cfg.max_workers and (
                desired > configured or slo_breach
            )
            down_breach = (
                configured > cfg.min_workers
                and signals.demand
                <= cfg.down_queue_per_worker * (configured - 1)
            )

            if up_breach:
                self._up_streak += 1
                self._down_streak = 0
            elif down_breach:
                self._down_streak += 1
                self._up_streak = 0
            else:
                # Inside the dead band: demand neither justifies growth
                # nor shrinkage.  Reset both streaks so a breach must be
                # sustained, not merely frequent.
                self._up_streak = 0
                self._down_streak = 0

            decision = _Decision(
                action="none", reason="in-band", from_workers=configured,
                to_workers=configured, at=now,
            )
            if up_breach and self._up_streak >= cfg.breaches_up:
                if now - self._last_up_at < cfg.cooldown_up:
                    self.flap_suppressed += 1
                    obs_count("autoscaler.flap_suppressed")
                    decision.action = "suppressed"
                    decision.reason = "scale-up due but inside cooldown"
                else:
                    target = min(
                        cfg.max_workers, max(configured + 1, desired)
                    )
                    decision = self._scale_up(
                        configured, target, now,
                        reason=(
                            "queue-wait SLO breached"
                            if slo_breach and desired <= configured
                            else f"demand {signals.demand} wants "
                            f"{target} worker(s)"
                        ),
                    )
            elif down_breach and self._down_streak >= cfg.breaches_down:
                if now - self._last_down_at < cfg.cooldown_down:
                    self.flap_suppressed += 1
                    obs_count("autoscaler.flap_suppressed")
                    decision.action = "suppressed"
                    decision.reason = "scale-down due but inside cooldown"
                else:
                    decision = self._scale_down(
                        configured, now,
                        reason=(
                            f"demand {signals.demand} below the "
                            f"{configured - 1}-worker watermark"
                        ),
                    )
            self._last_decision = decision
            return decision

    def _scale_up(
        self, configured: int, target: int, now: float, *, reason: str
    ) -> _Decision:
        grown = self.supervisor.grow(target - configured)
        self._last_up_at = now
        self._up_streak = 0
        self.scale_ups += 1
        obs_count("autoscaler.scale_ups")
        if self.scheduler is not None:
            self.scheduler.note_fleet(
                "scale-up", from_workers=configured, to_workers=grown,
                reason=reason,
            )
        return _Decision(
            action="scale-up", reason=reason,
            from_workers=configured, to_workers=grown, at=now,
        )

    def _scale_down(self, configured: int, now: float, *, reason: str) -> _Decision:
        # One worker per decision: shrinking is deliberately slower than
        # growing, and each retirement is graceful (drain, then retire).
        self.supervisor.retire(1, grace=self.config.drain_grace)
        self._last_down_at = now
        self._down_streak = 0
        self.scale_downs += 1
        obs_count("autoscaler.scale_downs")
        if self.scheduler is not None:
            self.scheduler.note_fleet(
                "scale-down", from_workers=configured,
                to_workers=configured - 1, reason=reason,
            )
        return _Decision(
            action="scale-down", reason=reason,
            from_workers=configured, to_workers=configured - 1, at=now,
        )

    # -- introspection ---------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready state for the ``/metricsz`` ``autoscaler`` section."""
        supervisor = self.supervisor
        with self._lock:
            current = supervisor.workers if supervisor is not None else None
            return {
                "min_workers": self.config.min_workers,
                "max_workers": self.config.max_workers,
                "current_workers": current,
                "target_workers": self._target,
                "pinned_at_max": (
                    current is not None
                    and current >= self.config.max_workers
                    and self._target >= self.config.max_workers
                ),
                "last_decision": self._last_decision.to_document(),
                "counters": {
                    "evaluations": self.evaluations,
                    "scale_ups": self.scale_ups,
                    "scale_downs": self.scale_downs,
                    "flap_suppressed": self.flap_suppressed,
                },
            }
