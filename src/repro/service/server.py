"""Stdlib HTTP facade over the scheduler: the PKA evaluation service.

JSON API (all bodies are ``application/json``):

========  =======================  ==============================================
Method    Path                     Meaning
========  =======================  ==============================================
POST      ``/v1/jobs``             Submit a job; 202 accepted (or 200 when dedup
                                   / cache completed it already)
GET       ``/v1/jobs/<id>``        Job record (state, latency, provenance)
GET       ``/v1/jobs/<id>/result`` Terminal job's result payload (409 earlier)
DELETE    ``/v1/jobs/<id>``        Cancel a queued job
GET       ``/healthz``             Liveness (always 200 while the process runs)
GET       ``/readyz``              Readiness (503 while draining)
GET       ``/metricsz``            Counters, queue depth, cache hit ratio,
                                   latency percentiles
========  =======================  ==============================================

Error mapping is type-driven: every :class:`~repro.errors.ServiceError`
subclass carries an HTTP status (400 invalid request, 404 unknown job,
409 not finished, 429 queue full, 503 draining or all workers down);
anything else is a 500 with the exception type in the body.  Shedding
responses (429/503) carry a ``Retry-After`` header with the server's
backoff advice.

**Fleet mode** (``workers >= 1``) attaches a
:class:`~repro.service.supervisor.WorkerSupervisor` (N supervised
worker processes execute jobs) and, when a journal path is configured,
a :class:`~repro.service.journal.JobJournal` — the service then
recovers accepted jobs across coordinator restarts.  ``/readyz``
reports ``degraded`` (503) while every worker is down; ``/metricsz``
gains ``workers`` and ``journal`` sections.

**Elastic fleet** (an :class:`~repro.service.autoscaler.
AutoscalerConfig` passed as ``autoscale``) additionally runs the
SLO-driven :class:`~repro.service.autoscaler.Autoscaler` control loop,
scaling the pool between ``min_workers`` and ``max_workers``;
``/readyz`` gains the ``brownout`` state (200, but deadline-aware
admission is shedding) and ``/metricsz`` the ``autoscaler`` and
``queue_age`` sections.

Built on :class:`http.server.ThreadingHTTPServer` — dependency-free by
design, like the rest of the repo.  Request handling is thin: parse,
call the scheduler, serialize; all serving policy lives in
:mod:`repro.service.scheduler`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.analysis.harness import EvaluationHarness
from repro.analysis.persistence import dump_run, dump_selection
from repro.analysis.semcache import TransferResult
from repro.core.pka import KernelSelection
from repro.predict import PredictedResult
from repro.errors import (
    DeadlineUnattainableError,
    InvalidJobRequestError,
    JobNotFinishedError,
    JobNotFoundError,
    QueueFullError,
    ServiceDrainingError,
    ServiceError,
    WorkersUnavailableError,
)
from repro.obs import enable as obs_enable, get_tracer
from repro.service.autoscaler import Autoscaler, AutoscalerConfig
from repro.service.jobs import JobRecord, JobRequest
from repro.service.journal import JobJournal
from repro.service.scheduler import Scheduler
from repro.service.supervisor import WorkerSupervisor
from repro.sim.stats import AppRunResult

__all__ = ["PKAService", "STATUS_FOR"]

#: HTTP status per typed service error (matched in subclass order).
STATUS_FOR = (
    (InvalidJobRequestError, 400),
    (JobNotFoundError, 404),
    (JobNotFinishedError, 409),
    (QueueFullError, 429),
    (DeadlineUnattainableError, 429),
    (WorkersUnavailableError, 503),
    (ServiceDrainingError, 503),
)


def _status_for(exc: ServiceError) -> int:
    for cls, status in STATUS_FOR:
        if isinstance(exc, cls):
            return status
    return 500


def _result_document(record: JobRecord) -> dict:
    """JSON-ready result payload for a terminal job."""
    result = record.result
    if isinstance(result, AppRunResult):
        payload: object = json.loads(dump_run(result))
        kind = "app_run"
    elif isinstance(result, KernelSelection):
        payload = json.loads(dump_selection(result))
        kind = "selection"
    elif result is None:
        # Either a not-applicable cell (done, value None) or a
        # failed/cancelled job with no value at all.
        payload = None
        kind = "none"
    else:  # pragma: no cover - future result types serialize as repr
        payload = repr(result)
        kind = type(result).__name__
    document = {
        "job": record.to_document(),
        "result_kind": kind,
        "result": payload,
    }
    if isinstance(result, TransferResult):
        # Transfer answers keep the app_run wire shape (clients parse
        # them unchanged; job.source == "transfer" tells them apart) and
        # additionally advertise the modeled bound and provenance.
        document["transfer"] = {
            "error_bound": result.transfer_error_bound,
            "transferred_from": list(result.transferred_from),
        }
    if isinstance(result, PredictedResult):
        # Same contract for prediction answers: app_run wire shape,
        # job.source == "predicted", plus bound and answering tier.
        document["predicted"] = {
            "error_bound": result.prediction_error_bound,
            "predicted_by": result.predicted_by,
        }
    return document


class _Handler(BaseHTTPRequestHandler):
    """One request; the service instance rides on the server object."""

    server_version = "pka-service/1.0"
    protocol_version = "HTTP/1.1"

    # Silence the default stderr-per-request logging; the service keeps
    # its own counters.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    @property
    def service(self) -> "PKAService":
        return self.server.pka_service  # type: ignore[attr-defined]

    # -- plumbing --------------------------------------------------------

    def _send_json(
        self, status: int, document: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, exc: Exception) -> None:
        if isinstance(exc, ServiceError):
            status = _status_for(exc)
        else:
            status = 500
        document = {"error": type(exc).__name__, "message": str(exc)}
        if isinstance(exc, QueueFullError):
            document["depth"] = exc.depth
            document["max_depth"] = exc.max_depth
        if isinstance(exc, DeadlineUnattainableError):
            document["predicted_wait"] = exc.predicted_wait
            document["deadline"] = exc.deadline
        headers = None
        retry_after = getattr(exc, "retry_after", None)
        if status in (429, 503):
            # Shedding responses always advise a retry delay; a fraction
            # of a second is fine (the client parses it as a float).
            if retry_after is None:
                retry_after = self.service.retry_after
            document["retry_after"] = retry_after
            headers = {"Retry-After": format(retry_after, "g")}
        self._send_json(status, document, headers)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise InvalidJobRequestError("request body required")
        raw = self.rfile.read(length)
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidJobRequestError(f"body is not valid JSON: {exc}") from exc
        return document

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif self.path == "/readyz":
                status, document = self.service.readiness()
                self._send_json(status, document)
            elif self.path == "/metricsz":
                self._send_json(200, self.service.metrics())
            elif self.path.startswith("/v1/jobs/") and self.path.endswith("/result"):
                job_id = self.path[len("/v1/jobs/") : -len("/result")]
                record = self.service.scheduler.result(job_id)
                self._send_json(200, _result_document(record))
            elif self.path.startswith("/v1/jobs/"):
                job_id = self.path[len("/v1/jobs/") :]
                record = self.service.scheduler.get(job_id)
                self._send_json(200, record.to_document())
            else:
                self._send_json(404, {"error": "NotFound", "message": self.path})
        except Exception as exc:  # typed errors -> typed statuses
            self._send_error_json(exc)

    def do_POST(self) -> None:  # noqa: N802
        try:
            if self.path != "/v1/jobs":
                self._send_json(404, {"error": "NotFound", "message": self.path})
                return
            request = JobRequest.from_document(self._read_body())
            record, created = self.service.scheduler.submit(request)
            document = record.to_document()
            document["created"] = created
            self._send_json(202 if created and not record.terminal else 200, document)
        except Exception as exc:
            self._send_error_json(exc)

    def do_DELETE(self) -> None:  # noqa: N802
        try:
            if not self.path.startswith("/v1/jobs/"):
                self._send_json(404, {"error": "NotFound", "message": self.path})
                return
            job_id = self.path[len("/v1/jobs/") :]
            record = self.service.scheduler.cancel(job_id)
            self._send_json(200, record.to_document())
        except Exception as exc:
            self._send_error_json(exc)


class PKAService:
    """The evaluation service: scheduler + HTTP listener + drain logic.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    construction.  Use as a context manager in tests::

        with PKAService(harness) as service:
            client = ServiceClient(port=service.port)
            ...
    """

    def __init__(
        self,
        harness: EvaluationHarness,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue: int = 256,
        batch_max: int = 32,
        linger: float = 0.02,
        drain_timeout: float = 30.0,
        workers: int = 0,
        journal_path: str | None = None,
        heartbeat_timeout: float = 10.0,
        redispatch_budget: int = 2,
        respawn_backoff: float = 0.25,
        retry_after: float = 1.0,
        autoscale: AutoscalerConfig | None = None,
        default_deadline: float | None = None,
    ) -> None:
        # Percentile latency and counter export need the tracer on from
        # the start: journal recovery below already counts into it.
        obs_enable()
        self.harness = harness
        self.retry_after = retry_after
        self.journal = JobJournal(journal_path) if journal_path else None
        if autoscale is not None:
            # Elastic fleet: start at min_workers (or the explicit
            # worker count, clamped into the autoscaler's band) and let
            # the control loop take it from there.
            initial = workers if workers > 0 else autoscale.min_workers
            workers = max(
                autoscale.min_workers, min(autoscale.max_workers, initial)
            )
        self.supervisor = (
            WorkerSupervisor(
                harness,
                workers,
                heartbeat_timeout=heartbeat_timeout,
                redispatch_budget=redispatch_budget,
                respawn_backoff=respawn_backoff,
            )
            if workers > 0
            else None
        )
        self.autoscaler = (
            Autoscaler(autoscale)
            if autoscale is not None and self.supervisor is not None
            else None
        )
        # Journal recovery (replay + re-enqueue) happens inside the
        # scheduler constructor — before the HTTP listener exists, so a
        # client can never observe a half-recovered registry.
        self.scheduler = Scheduler(
            harness,
            max_queue=max_queue,
            batch_max=batch_max,
            linger=linger,
            journal=self.journal,
            supervisor=self.supervisor,
            autoscaler=self.autoscaler,
            retry_after=retry_after,
            default_deadline=default_deadline,
        )
        self.drain_timeout = drain_timeout
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.pka_service = self  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._serve_thread: threading.Thread | None = None
        # Wall-clock start is display-only (and seeds the service id);
        # the uptime delta is monotonic so an NTP step can never make
        # ``uptime_seconds`` jump or go negative.
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self.service_id = f"service-{os.getpid()}-{int(self.started_at)}"

    def start(self, *, run_scheduler: bool = True) -> "PKAService":
        """Start serving.  ``run_scheduler=False`` accepts jobs but never
        dispatches them — tests use it to observe pre-dispatch states
        (queued, cancelled, queue-full) deterministically."""
        if run_scheduler:
            self.scheduler.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="pka-http",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def metrics(self) -> dict:
        document = self.scheduler.metrics()
        document["service_id"] = self.service_id
        document["started_at"] = self.started_at
        document["uptime_seconds"] = time.monotonic() - self._started_monotonic
        return document

    def readiness(self) -> tuple[int, dict]:
        """``/readyz`` semantics: 503 while draining or degraded.

        ``degraded`` means every fleet worker is down — the service
        still answers warm-cache submissions, but a load balancer
        should prefer a healthy replica.  ``brownout`` (still 200) sits
        between healthy and the circuit breaker: workers are alive but
        deadline-aware admission is shedding work, so new traffic will
        see 429s until the backlog drains or the pool scales up.
        """
        if self.scheduler.draining:
            return 503, {"status": "draining"}
        supervisor = self.supervisor
        if supervisor is not None:
            alive = supervisor.alive_workers
            document = {
                "status": "ready",
                "workers_alive": alive,
                "workers_configured": supervisor.workers,
            }
            if alive == 0:
                document["status"] = "degraded"
                document["retry_after"] = supervisor.next_retry_after()
                return 503, document
            if self.scheduler.in_brownout():
                document["status"] = "brownout"
                document["predicted_wait_s"] = self.scheduler.estimate_queue_wait(
                    extra=1
                )
            return 200, document
        if self.scheduler.in_brownout():
            return 200, {
                "status": "brownout",
                "predicted_wait_s": self.scheduler.estimate_queue_wait(extra=1),
            }
        return 200, {"status": "ready"}

    def drain(self, timeout: float | None = None) -> tuple[dict, bool]:
        """Graceful shutdown: refuse new work, finish accepted work.

        Returns ``(manifest, clean)``.  The manifest — every accepted
        job with its terminal state, plus the final counters — is
        persisted to the run cache under the service id, so "zero jobs
        lost" is auditable after the process is gone.
        """
        clean = self.scheduler.drain(
            timeout if timeout is not None else self.drain_timeout
        )
        jobs = [record.to_document() for record in self.scheduler.jobs()]
        states: dict[str, int] = {}
        for job in jobs:
            states[job["state"]] = states.get(job["state"], 0) + 1
        manifest = {
            "service_id": self.service_id,
            "clean": clean,
            "jobs": jobs,
            "states": states,
            "counters": {
                name: value
                for name, value in sorted(get_tracer().counters.items())
                if name.startswith("service.")
            },
        }
        self.harness.run_cache.put_manifest(self.service_id, manifest)
        self.close()
        return manifest, clean

    def close(self) -> None:
        """Stop serving immediately (no drain)."""
        self.scheduler.close()
        self._httpd.shutdown()
        self._httpd.server_close()
        backend_close = getattr(self.harness.backend, "close", None)
        if backend_close is not None:
            backend_close()

    def __enter__(self) -> "PKAService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
