"""Crash-safe append-only job journal for the evaluation service.

The journal is the durability layer of fleet mode: every job the service
*accepts* is recorded before the client sees its 202, and every state
transition after that (started, requeued, completed) is appended as it
happens.  After a coordinator crash — ``kill -9``, OOM, power loss — a
restart replays the journal, restores terminal jobs (answering their
results from the run cache) and re-enqueues everything that never made
it to a terminal state.  Nothing accepted is ever lost.

Design mirrors the run cache's integrity envelope (:mod:`repro.analysis.
persistence`): one JSON record per line, each carrying a ``sha256`` over
the canonical rendering of its other fields.  A torn final line (the
classic crash-mid-append artifact) or a bit-flipped record fails its
checksum and is skipped with a counter rather than poisoning replay —
the same quarantine-not-crash posture the cache takes with corrupt
entries.

Appends go through a single ``write + flush`` of one line under a lock,
so concurrent scheduler threads interleave whole records.  Compaction
(rewriting the journal to one summary record per live job) uses the
cache's atomic temp-file + ``os.replace`` pattern so a crash mid-compact
leaves either the old journal or the new one, never a hybrid.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Iterable

from ..obs import obs_count

__all__ = ["JOURNAL_SCHEMA_VERSION", "JobJournal", "JournalRecord"]

# Bumped whenever the record layout changes incompatibly; a journal from
# a foreign schema is ignored on replay (counted, not crashed on).
JOURNAL_SCHEMA_VERSION = 1

# Events a record may carry, in lifecycle order.  "accepted" is written
# before the submission response; "completed" carries the terminal state.
# "fleet" records worker-pool transitions (autoscaler grow/retire) for
# the audit trail; replay ignores them for job recovery and compaction
# drops them.
EVENTS = ("accepted", "started", "requeued", "completed", "fleet")


class JournalRecord(dict):
    """One replayed journal record (a dict with attribute sugar)."""

    @property
    def event(self) -> str:
        return self["event"]

    @property
    def job_id(self) -> str:
        return self["job_id"]

    @property
    def data(self) -> dict:
        return self.get("data", {})


def _checksum(document: dict) -> str:
    """sha256 over the canonical JSON of ``document`` (sans envelope)."""
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class JobJournal:
    """Append-only journal of job lifecycle events with integrity checks.

    Parameters
    ----------
    path:
        Journal file location.  Parent directories are created lazily on
        first append, so constructing a journal never touches disk.
    fsync:
        When true, every append is ``fsync``'d for durability across
        power loss (not just process crash).  Defaults to false: the
        chaos scenarios this repo tests are process kills, and fsync per
        record would dominate service latency.
    """

    def __init__(self, path: str | Path, *, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        self._handle = None
        # Jobs accepted but not yet completed, per this journal's view.
        # len() of this is the journal lag surfaced in /metricsz.
        self._open_jobs: set[str] = set()
        self._appends = 0
        self._replayed = 0
        self._corrupt_skipped = 0
        self._compactions = 0

    # ------------------------------------------------------------------
    # Appending

    def append(self, event: str, job_id: str, **data: object) -> None:
        """Durably append one lifecycle event for ``job_id``.

        The record is a single line flushed before return, so once this
        method returns the event survives a coordinator ``kill -9``.
        """
        if event not in EVENTS:
            raise ValueError(f"unknown journal event {event!r}")
        document = {
            "schema": JOURNAL_SCHEMA_VERSION,
            "event": event,
            "job_id": job_id,
            "ts": time.time(),
            "data": data,
        }
        document["sha256"] = _checksum(
            {k: v for k, v in document.items() if k != "sha256"}
        )
        line = json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"
        with self._lock:
            handle = self._ensure_handle()
            handle.write(line)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
            self._appends += 1
            if event == "accepted":
                self._open_jobs.add(job_id)
            elif event == "completed":
                self._open_jobs.discard(job_id)
        obs_count("journal.appends")

    def _ensure_handle(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    # ------------------------------------------------------------------
    # Replay

    def replay(self) -> list[JournalRecord]:
        """Read every intact record from disk, oldest first.

        Corrupt records — torn final lines, checksum mismatches, foreign
        schema versions — are skipped and counted, never raised: the
        journal's job after a crash is to recover as much as it can.
        Replaying also rebuilds the open-jobs (lag) accounting.
        """
        records: list[JournalRecord] = []
        corrupt = 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return records
        except OSError:
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            record = self._parse_line(line)
            if record is None:
                corrupt += 1
                continue
            records.append(record)
        with self._lock:
            self._replayed += len(records)
            self._corrupt_skipped += corrupt
            self._open_jobs = self._open_after(records)
        if corrupt:
            obs_count("journal.corrupt_skipped", corrupt)
        obs_count("journal.replayed", len(records))
        return records

    @staticmethod
    def _parse_line(line: str) -> JournalRecord | None:
        try:
            document = json.loads(line)
        except (json.JSONDecodeError, ValueError):
            return None
        if not isinstance(document, dict):
            return None
        if document.get("schema") != JOURNAL_SCHEMA_VERSION:
            return None
        checksum = document.get("sha256")
        body = {k: v for k, v in document.items() if k != "sha256"}
        if checksum != _checksum(body):
            return None
        if document.get("event") not in EVENTS:
            return None
        if not isinstance(document.get("job_id"), str):
            return None
        return JournalRecord(document)

    @staticmethod
    def _open_after(records: Iterable[JournalRecord]) -> set[str]:
        open_jobs: set[str] = set()
        for record in records:
            if record.event == "accepted":
                open_jobs.add(record.job_id)
            elif record.event == "completed":
                open_jobs.discard(record.job_id)
        return open_jobs

    # ------------------------------------------------------------------
    # Compaction

    def compact(self, records: Iterable[JournalRecord] | None = None) -> int:
        """Rewrite the journal to its minimal equivalent and return the
        number of records written.

        For every job the compacted journal keeps the latest ``accepted``
        record and, when the job is terminal, the latest ``completed``
        record — replaying the compacted journal reconstructs exactly the
        same job set as replaying the original.  The rewrite is atomic
        (temp file + ``os.replace``) so a crash mid-compact cannot tear
        the journal.
        """
        if records is None:
            records = self.replay()
        accepted: dict[str, JournalRecord] = {}
        completed: dict[str, JournalRecord] = {}
        order: list[str] = []
        for record in records:
            if record.event == "accepted":
                if record.job_id not in accepted:
                    order.append(record.job_id)
                accepted[record.job_id] = record
            elif record.event == "completed":
                completed[record.job_id] = record
        keep: list[JournalRecord] = []
        for job_id in order:
            keep.append(accepted[job_id])
            if job_id in completed:
                keep.append(completed[job_id])
        lines = [
            json.dumps(dict(record), sort_keys=True, separators=(",", ":"))
            for record in keep
        ]
        payload = "\n".join(lines) + ("\n" if lines else "")
        with self._lock:
            self._close_handle_locked()
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle, tmp_name = tempfile.mkstemp(
                dir=self.path.parent, prefix=self.path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w", encoding="utf-8") as tmp:
                    tmp.write(payload)
                os.replace(tmp_name, self.path)
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            self._compactions += 1
            self._open_jobs = self._open_after(keep)
        obs_count("journal.compactions")
        return len(keep)

    # ------------------------------------------------------------------
    # Introspection / lifecycle

    def lag(self) -> int:
        """Number of accepted jobs not yet journaled as completed."""
        with self._lock:
            return len(self._open_jobs)

    def stats(self) -> dict:
        with self._lock:
            return {
                "path": str(self.path),
                "lag": len(self._open_jobs),
                "appends": self._appends,
                "replayed": self._replayed,
                "corrupt_skipped": self._corrupt_skipped,
                "compactions": self._compactions,
            }

    def close(self) -> None:
        with self._lock:
            self._close_handle_locked()

    def _close_handle_locked(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
