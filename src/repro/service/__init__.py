"""repro.service: a long-lived evaluation service over the harness.

Turns the batch-oriented :class:`~repro.analysis.harness.
EvaluationHarness` into an interactive job server: typed jobs with a
small lifecycle, a bounded fair queue, a single-flight batching
scheduler that exploits the content-addressed run cache, a stdlib JSON
HTTP API, a polling client, and a seeded load generator.  Dependency-
free, like everything else in the repo.

**Fleet mode** adds three robustness layers: a crash-safe append-only
:class:`JobJournal` (durable job recovery across coordinator restarts),
a :class:`WorkerSupervisor` (N supervised worker processes with
heartbeat liveness, dead-worker re-dispatch, poison-job quarantine, and
exponential-backoff respawn), and overload degradation (queue shedding
with ``Retry-After``, warm-cache-only circuit breaker while all workers
are down).

**Elastic fleet** makes the pool size dynamic: the SLO-driven
:class:`Autoscaler` control loop grows and shrinks the worker pool
between a min/max band from queue depth and queue-wait signals, with
hysteresis and per-direction cooldowns so scaling never flaps; scale-
down drains the victim worker gracefully (zero jobs lost).  Deadline-
aware admission control sheds jobs whose predicted queue wait exceeds
their deadline, with backlog-derived ``Retry-After`` advice and a
``brownout`` readiness state while shedding.
"""

from repro.service.autoscaler import Autoscaler, AutoscalerConfig, FleetSignals
from repro.service.client import ServiceClient
from repro.service.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    JobRecord,
    JobRequest,
    job_id_for,
    parse_job_fault,
)
from repro.service.journal import JobJournal
from repro.service.loadgen import (
    LoadConfig,
    LoadReport,
    arrival_offsets,
    build_plan,
    parse_chaos,
    parse_shape,
    run_load,
)
from repro.service.queue import JobQueue
from repro.service.scheduler import Scheduler
from repro.service.server import PKAService
from repro.service.supervisor import WorkerSupervisor

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "Autoscaler",
    "AutoscalerConfig",
    "FleetSignals",
    "JobJournal",
    "JobQueue",
    "JobRecord",
    "JobRequest",
    "LoadConfig",
    "LoadReport",
    "PKAService",
    "Scheduler",
    "ServiceClient",
    "WorkerSupervisor",
    "arrival_offsets",
    "build_plan",
    "job_id_for",
    "parse_chaos",
    "parse_job_fault",
    "parse_shape",
    "run_load",
]
