"""Blocking client for the PKA evaluation service.

Small on purpose: :mod:`urllib.request` plus the typed error taxonomy.
The server's HTTP statuses map back to the exact exception types the
scheduler raised in-process, so code written against
:class:`~repro.service.scheduler.Scheduler` ports to the wire unchanged
— a 429 *is* a :class:`~repro.errors.QueueFullError` with ``depth`` and
``max_depth`` filled in, a 503 *is* a
:class:`~repro.errors.ServiceDrainingError` or
:class:`~repro.errors.WorkersUnavailableError`, and so on.

Polling is polite: :meth:`ServiceClient.wait` uses jittered exponential
backoff instead of a fixed interval, and every retry path honors the
server's ``Retry-After`` advice (parsed onto the typed exception as
``retry_after``), so a shedding or degraded server is never hammered at
poll frequency.
"""

from __future__ import annotations

import email.utils
import json
import random
import time
import urllib.error
import urllib.request
from datetime import datetime, timezone

from repro.errors import (
    DeadlineUnattainableError,
    InvalidJobRequestError,
    JobNotFinishedError,
    JobNotFoundError,
    QueueFullError,
    ServiceDrainingError,
    ServiceError,
    WorkersUnavailableError,
)
from repro.service.jobs import JobRequest

__all__ = ["ServiceClient"]

_ERROR_FOR_STATUS = {
    400: InvalidJobRequestError,
    404: JobNotFoundError,
    409: JobNotFinishedError,
    429: QueueFullError,
    503: ServiceDrainingError,
}


class ServiceClient:
    """Talks JSON to one :class:`~repro.service.server.PKAService`.

    ``backoff`` is the multiplier applied to the poll interval after
    each non-terminal poll (capped at ``poll_max``); ``jitter`` is the
    +/- fraction of random spread on every sleep so a thundering herd of
    identical clients decorrelates.  ``seed`` makes the jitter sequence
    reproducible for tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8471,
        *,
        timeout: float = 10.0,
        backoff: float = 1.6,
        poll_max: float = 2.0,
        jitter: float = 0.2,
        seed: int | None = None,
    ) -> None:
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout
        self.backoff = max(1.0, backoff)
        self.poll_max = poll_max
        self.jitter = max(0.0, min(jitter, 0.99))
        self._rng = random.Random(seed)

    # -- wire plumbing ---------------------------------------------------

    def _call(self, method: str, path: str, body: dict | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._typed_error(exc) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from exc

    @staticmethod
    def _parse_retry_after(raw: object) -> float | None:
        """RFC 9110 ``Retry-After``: delay-seconds or an HTTP-date.

        Either form yields a non-negative delay in seconds; a date in
        the past (or a negative number) clamps to 0 rather than making
        the backoff sleep negative.
        """
        if raw is None:
            return None
        try:
            return max(0.0, float(raw))
        except (TypeError, ValueError):
            pass
        if isinstance(raw, str):
            try:
                when = email.utils.parsedate_to_datetime(raw)
            except (TypeError, ValueError):
                return None
            if when is not None:
                if when.tzinfo is None:
                    when = when.replace(tzinfo=timezone.utc)
                delta = when - datetime.now(timezone.utc)
                return max(0.0, delta.total_seconds())
        return None

    @staticmethod
    def _typed_error(exc: urllib.error.HTTPError) -> ServiceError:
        try:
            document = json.loads(exc.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            document = {}
        message = document.get("message", f"HTTP {exc.code}")
        retry_after = None
        header = exc.headers.get("Retry-After") if exc.headers else None
        for raw in (header, document.get("retry_after")):
            if retry_after is None:
                retry_after = ServiceClient._parse_retry_after(raw)
        cls = _ERROR_FOR_STATUS.get(exc.code)
        if exc.code == 503 and document.get("error") == "WorkersUnavailableError":
            cls = WorkersUnavailableError
        if exc.code == 429 and document.get("error") == "DeadlineUnattainableError":
            cls = DeadlineUnattainableError
        if cls is DeadlineUnattainableError:
            error: ServiceError = DeadlineUnattainableError(
                message,
                predicted_wait=document.get("predicted_wait"),
                deadline=document.get("deadline"),
            )
        elif cls is QueueFullError:
            error: ServiceError = QueueFullError(
                message,
                depth=document.get("depth", 0),
                max_depth=document.get("max_depth", 0),
            )
        elif cls is not None:
            error = cls(message)
        else:
            error = ServiceError(f"HTTP {exc.code}: {message}")
        if retry_after is not None:
            error.retry_after = retry_after
        return error

    def _sleep_for(self, interval: float) -> float:
        """One jittered sleep duration (never negative)."""
        if self.jitter <= 0.0:
            return max(0.0, interval)
        spread = self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(0.0, interval * (1.0 + spread))

    # -- API -------------------------------------------------------------

    def submit(self, request: JobRequest | dict, *, retries: int = 0) -> dict:
        """POST the job; returns the job document (with ``created``).

        ``retries`` resubmissions are attempted when the server sheds
        the job (429 queue-full or deadline-unattainable, 503
        workers-down/draining), sleeping the server's ``Retry-After``
        advice (jittered) between attempts.
        """
        body = request.to_document() if isinstance(request, JobRequest) else request
        attempt = 0
        while True:
            try:
                return self._call("POST", "/v1/jobs", body)
            except (
                DeadlineUnattainableError,
                QueueFullError,
                WorkersUnavailableError,
                ServiceDrainingError,
            ) as exc:
                if attempt >= retries:
                    raise
                attempt += 1
                delay = exc.retry_after if exc.retry_after is not None else 0.5
                time.sleep(self._sleep_for(delay))

    def job(self, job_id: str) -> dict:
        return self._call("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._call("DELETE", f"/v1/jobs/{job_id}")

    def metrics(self) -> dict:
        return self._call("GET", "/metricsz")

    def healthy(self) -> bool:
        try:
            return self._call("GET", "/healthz").get("status") == "ok"
        except ServiceError:
            return False

    def ready(self) -> bool:
        try:
            return self._call("GET", "/readyz").get("status") == "ready"
        except ServiceError:
            return False

    def wait(self, job_id: str, *, timeout: float = 60.0, poll: float = 0.05) -> dict:
        """Poll until the job is terminal; returns the final job document.

        ``poll`` is the *initial* interval; each subsequent poll backs
        off exponentially (``backoff``, capped at ``poll_max``) with
        jitter, and any 429/503 carrying ``Retry-After`` overrides the
        next sleep with the server's own advice.
        """
        deadline = time.monotonic() + timeout
        interval = max(0.001, poll)
        while True:
            sleep = None
            try:
                document = self.job(job_id)
            except (QueueFullError, WorkersUnavailableError) as exc:
                # Shedding statuses on the poll path: honor the advice
                # and keep waiting — the job itself is still accepted.
                document = None
                sleep = exc.retry_after if exc.retry_after is not None else interval
            if document is not None:
                if document["state"] in ("done", "failed", "cancelled"):
                    return document
                sleep = interval
                interval = min(self.poll_max, interval * self.backoff)
            if time.monotonic() >= deadline:
                state = document["state"] if document else "unreachable"
                raise ServiceError(
                    f"job {job_id} still {state} after {timeout}s"
                )
            time.sleep(self._sleep_for(sleep))

    def submit_and_wait(
        self,
        request: JobRequest | dict,
        *,
        timeout: float = 60.0,
        poll: float = 0.05,
        retries: int = 0,
    ) -> dict:
        """Submit, wait for a terminal state, and fetch the result."""
        document = self.submit(request, retries=retries)
        final = self.wait(document["job_id"], timeout=timeout, poll=poll)
        if final["state"] == "done":
            return self.result(final["job_id"])
        return {"job": final, "result_kind": "none", "result": None}
