"""Blocking client for the PKA evaluation service.

Small on purpose: :mod:`urllib.request` plus the typed error taxonomy.
The server's HTTP statuses map back to the exact exception types the
scheduler raised in-process, so code written against
:class:`~repro.service.scheduler.Scheduler` ports to the wire unchanged
— a 429 *is* a :class:`~repro.errors.QueueFullError` with ``depth`` and
``max_depth`` filled in, a 503 *is* a
:class:`~repro.errors.ServiceDrainingError`, and so on.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import (
    InvalidJobRequestError,
    JobNotFinishedError,
    JobNotFoundError,
    QueueFullError,
    ServiceDrainingError,
    ServiceError,
)
from repro.service.jobs import JobRequest

__all__ = ["ServiceClient"]

_ERROR_FOR_STATUS = {
    400: InvalidJobRequestError,
    404: JobNotFoundError,
    409: JobNotFinishedError,
    429: QueueFullError,
    503: ServiceDrainingError,
}


class ServiceClient:
    """Talks JSON to one :class:`~repro.service.server.PKAService`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8471,
        *,
        timeout: float = 10.0,
    ) -> None:
        self.base_url = f"http://{host}:{port}"
        self.timeout = timeout

    # -- wire plumbing ---------------------------------------------------

    def _call(self, method: str, path: str, body: dict | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._typed_error(exc) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from exc

    @staticmethod
    def _typed_error(exc: urllib.error.HTTPError) -> ServiceError:
        try:
            document = json.loads(exc.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            document = {}
        message = document.get("message", f"HTTP {exc.code}")
        cls = _ERROR_FOR_STATUS.get(exc.code)
        if cls is QueueFullError:
            return QueueFullError(
                message,
                depth=document.get("depth", 0),
                max_depth=document.get("max_depth", 0),
            )
        if cls is not None:
            return cls(message)
        return ServiceError(f"HTTP {exc.code}: {message}")

    # -- API -------------------------------------------------------------

    def submit(self, request: JobRequest | dict) -> dict:
        """POST the job; returns the job document (with ``created``)."""
        body = request.to_document() if isinstance(request, JobRequest) else request
        return self._call("POST", "/v1/jobs", body)

    def job(self, job_id: str) -> dict:
        return self._call("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._call("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._call("DELETE", f"/v1/jobs/{job_id}")

    def metrics(self) -> dict:
        return self._call("GET", "/metricsz")

    def healthy(self) -> bool:
        try:
            return self._call("GET", "/healthz").get("status") == "ok"
        except ServiceError:
            return False

    def ready(self) -> bool:
        try:
            return self._call("GET", "/readyz").get("status") == "ready"
        except ServiceError:
            return False

    def wait(self, job_id: str, *, timeout: float = 60.0, poll: float = 0.05) -> dict:
        """Poll until the job is terminal; returns the final job document."""
        deadline = time.monotonic() + timeout
        while True:
            document = self.job(job_id)
            if document["state"] in ("done", "failed", "cancelled"):
                return document
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {document['state']} after {timeout}s"
                )
            time.sleep(poll)

    def submit_and_wait(
        self, request: JobRequest | dict, *, timeout: float = 60.0, poll: float = 0.05
    ) -> dict:
        """Submit, wait for a terminal state, and fetch the result."""
        document = self.submit(request)
        final = self.wait(document["job_id"], timeout=timeout, poll=poll)
        if final["state"] == "done":
            return self.result(final["job_id"])
        return {"job": final, "result_kind": "none", "result": None}
