"""Seeded load generator for the evaluation service.

Drives a :class:`~repro.service.client.ServiceClient` with a
**deterministic** request plan — ``random.Random(seed)`` chooses cells
and duplicate positions, so a failing run replays exactly — in either
of two classic load shapes:

* **open loop**: submissions arrive on a Poisson-ish schedule at
  ``rate`` jobs/second regardless of how fast the service responds
  (the honest way to find a saturation point);
* **closed loop**: ``concurrency`` workers each submit, wait for the
  terminal state, then submit the next (throughput self-limits to
  service speed).

Open-loop arrivals additionally follow a **traffic shape** — a
deterministic multiplier over the base ``rate``:

* ``constant`` — steady arrivals (the default);
* ``burst:<factor>@<t>`` — rate jumps to ``factor``× at ``t`` seconds
  (the autoscaler's scale-up trigger in CI);
* ``ramp:<r>`` — rate grows linearly, ``1 + r*t`` multiplier;
* ``diurnal:<period>`` — sinusoidal ±50% swing with the given period.

Shapes change *when* requests arrive, never *which* requests: the plan
is identical across shapes for a given seed, so the reconciliation
invariant holds under every shape.

``duplicate_ratio`` controls what fraction of submissions repeat an
earlier request *verbatim* — the knob that exercises single-flight
dedup and the warm-cache fast path.  An optional ``fault`` spec rides
on one submission to prove fault injection flows end-to-end through
the wire.

**Chaos schedules** (fleet mode): ``chaos=("kill-worker@0.5", ...)``
fires actions at seeded offsets from the start of the run.
``kill-worker`` SIGKILLs a random (seeded) live worker picked from the
server's ``/metricsz`` snapshot; ``kill-coordinator`` SIGKILLs the
coordinator itself (its pid is parsed from the service id).  Both
assume the loadgen shares a host with the service — exactly the CI
arrangement.  A custom ``chaos_driver`` can replace the kill mechanics
for tests.

The resulting :class:`LoadReport` carries client-observed counts and
latency percentiles plus the server's final ``/metricsz`` snapshot;
:meth:`LoadReport.reconcile` checks the two sides of the conversation
against each other, with shed (429/503) and quarantined jobs accounted
so ``jobs_submitted - jobs_shed == accepted - deduplicated`` balances
even under chaos.
"""

from __future__ import annotations

import math
import os
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    DeadlineUnattainableError,
    QueueFullError,
    ServiceError,
    WorkersUnavailableError,
)
from repro.service.client import ServiceClient
from repro.service.jobs import JobRequest, parse_job_fault
from repro.workloads.spec import iter_workloads

__all__ = [
    "CHAOS_ACTIONS",
    "LoadConfig",
    "LoadReport",
    "arrival_offsets",
    "build_plan",
    "parse_chaos",
    "parse_shape",
    "run_load",
]

TERMINAL = ("done", "failed", "cancelled")

CHAOS_ACTIONS = ("kill-worker", "kill-coordinator")


def _percentile(sorted_values: list[float], percentile: float) -> float | None:
    """Nearest-rank percentile (matches repro.obs.span_percentiles)."""
    if not sorted_values:
        return None
    rank = int(-(-percentile * len(sorted_values) // 100)) - 1
    rank = max(0, min(len(sorted_values) - 1, rank))
    return sorted_values[rank]


def parse_chaos(specs: tuple[str, ...]) -> list[tuple[str, float]]:
    """Parse ``action@seconds`` chaos specs, sorted by fire time."""
    events: list[tuple[str, float]] = []
    for spec in specs:
        action, sep, at_text = spec.strip().partition("@")
        if not sep:
            raise ValueError(
                f"bad chaos spec {spec!r}; expected action@seconds"
            )
        action = action.strip().lower()
        if action not in CHAOS_ACTIONS:
            raise ValueError(
                f"unknown chaos action {action!r}; expected one of "
                f"{CHAOS_ACTIONS}"
            )
        try:
            at = float(at_text)
        except ValueError as exc:
            raise ValueError(f"bad chaos offset in {spec!r}") from exc
        if at < 0:
            raise ValueError("chaos offsets must be >= 0 seconds")
        events.append((action, at))
    return sorted(events, key=lambda event: event[1])


def parse_shape(spec: str) -> Callable[[float], float]:
    """Parse a traffic-shape spec into a rate multiplier ``m(t)``.

    ``t`` is seconds from the start of the run; the instantaneous
    submission rate is ``rate * m(t)``.  Raises :class:`ValueError` on
    malformed specs with the expected grammar in the message.
    """
    text = spec.strip().lower()
    if text == "constant":
        return lambda t: 1.0
    kind, sep, rest = text.partition(":")
    if not sep:
        raise ValueError(
            f"unknown traffic shape {spec!r}; expected constant, "
            "burst:<factor>@<t>, ramp:<r>, or diurnal:<period>"
        )
    if kind == "burst":
        factor_text, at_sep, at_text = rest.partition("@")
        if not at_sep:
            raise ValueError(
                f"bad burst spec {spec!r}; expected burst:<factor>@<seconds>"
            )
        try:
            factor = float(factor_text)
            at = float(at_text)
        except ValueError as exc:
            raise ValueError(f"bad burst numbers in {spec!r}") from exc
        if factor < 1.0:
            raise ValueError("burst factor must be >= 1")
        if at < 0:
            raise ValueError("burst offset must be >= 0 seconds")
        return lambda t: factor if t >= at else 1.0
    if kind == "ramp":
        try:
            slope = float(rest)
        except ValueError as exc:
            raise ValueError(f"bad ramp slope in {spec!r}") from exc
        if slope < 0:
            raise ValueError("ramp slope must be >= 0")
        return lambda t: 1.0 + slope * t
    if kind == "diurnal":
        try:
            period = float(rest)
        except ValueError as exc:
            raise ValueError(f"bad diurnal period in {spec!r}") from exc
        if not period > 0:
            raise ValueError("diurnal period must be > 0 seconds")
        return lambda t: 1.0 + 0.5 * math.sin(2.0 * math.pi * t / period)
    raise ValueError(
        f"unknown traffic shape {spec!r}; expected constant, "
        "burst:<factor>@<t>, ramp:<r>, or diurnal:<period>"
    )


@dataclass(frozen=True)
class LoadConfig:
    """One load run, fully determined by its fields (seed included)."""

    jobs: int = 20
    mode: str = "open"  # "open" | "closed"
    rate: float = 50.0  # open loop: submissions per second
    concurrency: int = 4  # closed loop: worker count
    duplicate_ratio: float = 0.0
    seed: int = 20260807
    workloads: tuple[str, ...] | None = None
    methods: tuple[str, ...] = ("silicon",)
    gpus: tuple[str | None, ...] = (None,)
    fault: str | None = None  # attached to exactly one submission
    timeout: float = 120.0
    poll: float = 0.02
    chaos: tuple[str, ...] = ()  # "kill-worker@0.5", "kill-coordinator@2"
    #: Open-loop arrival pattern; see :func:`parse_shape`.
    shape: str = "constant"
    #: Per-job admission deadline (seconds) riding on every submission;
    #: None submits without one (the server default then applies).
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.mode not in ("open", "closed"):
            raise ValueError("mode must be 'open' or 'closed'")
        if not 0.0 <= self.duplicate_ratio <= 1.0:
            raise ValueError("duplicate_ratio must be within [0, 1]")
        if self.fault is not None:
            parse_job_fault(self.fault)
        parse_chaos(self.chaos)  # validate eagerly
        parse_shape(self.shape)
        if self.mode == "closed" and self.shape.strip().lower() != "constant":
            raise ValueError(
                "traffic shapes apply to open-loop mode only (closed-loop "
                "arrival times are set by service speed, not a schedule)"
            )
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ValueError("deadline_s must be > 0 seconds")


@dataclass
class LoadReport:
    """What happened, from the client's side of the wire.

    ``shed`` counts submissions the server refused under overload
    protection (429 queue-full, 503 workers-down/draining) — distinct
    from ``rejected``, which counts every other submission error.
    ``quarantined`` counts jobs that terminated ``failed`` with the
    poison-quarantine error kind.
    """

    config: LoadConfig
    submitted: int = 0
    accepted: int = 0
    deduplicated: int = 0
    rejected: int = 0
    shed: int = 0
    completed: int = 0
    #: Completed jobs the server answered by semantic-cache transfer
    #: (``source == "transfer"``) rather than an exact-cache hit or a
    #: fresh simulation.
    transferred: int = 0
    #: Completed jobs the prediction tiers answered at submit time
    #: (``source == "predicted"``) — never queued, never simulated.
    predicted: int = 0
    failed: int = 0
    quarantined: int = 0
    cancelled: int = 0
    errors: int = 0
    distinct_jobs: int = 0
    wall_seconds: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    #: Retry-After advice carried by each shed (429/503) response, in
    #: submission order — lets tests assert the advice is backlog-derived.
    shed_retry_afters: list[float] = field(default_factory=list)
    chaos_events: list[dict] = field(default_factory=list)
    server_metrics: dict | None = None

    @property
    def throughput(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.completed / self.wall_seconds

    @property
    def clean(self) -> bool:
        """No job lost, shed, or errored, client-side."""
        return (
            self.rejected == 0
            and self.shed == 0
            and self.errors == 0
            and self.failed == 0
            and self.completed == self.accepted
        )

    def reconcile(self) -> dict:
        """Client-vs-server accounting, chaos-aware.

        The invariant: every *fresh* accepted submission (accepted minus
        dedup hits) corresponds to exactly one server-side registered
        job that was not shed — ``jobs_submitted - jobs_shed ==
        accepted - deduplicated``.  When the server's metrics are
        unavailable (coordinator killed by chaos), ``balanced`` is
        ``None`` rather than a false alarm.
        """
        counters = (self.server_metrics or {}).get("counters", {})
        fresh_client = self.accepted - self.deduplicated
        document = {
            "client_fresh_accepted": fresh_client,
            "client_shed": self.shed,
            "client_quarantined": self.quarantined,
            "server_available": self.server_metrics is not None,
        }
        if self.server_metrics is None:
            document["balanced"] = None
            return document
        submitted_server = counters.get("service.jobs_submitted", 0)
        shed_server = counters.get("service.jobs_shed", 0)
        document["server_jobs_submitted"] = submitted_server
        document["server_jobs_shed"] = shed_server
        document["server_dedup_hits"] = counters.get("service.dedup_hits", 0)
        document["server_quarantined"] = counters.get(
            "service.jobs_quarantined", 0
        )
        document["balanced"] = (
            submitted_server - shed_server == fresh_client
        )
        return document

    def to_document(self) -> dict:
        latencies = sorted(self.latencies_ms)
        return {
            "config": {
                "jobs": self.config.jobs,
                "mode": self.config.mode,
                "rate": self.config.rate,
                "concurrency": self.config.concurrency,
                "duplicate_ratio": self.config.duplicate_ratio,
                "seed": self.config.seed,
                "methods": list(self.config.methods),
                "fault": self.config.fault,
                "chaos": list(self.config.chaos),
                "shape": self.config.shape,
                "deadline_s": self.config.deadline_s,
            },
            "submitted": self.submitted,
            "accepted": self.accepted,
            "deduplicated": self.deduplicated,
            "rejected": self.rejected,
            "shed": self.shed,
            "completed": self.completed,
            "transferred": self.transferred,
            "predicted": self.predicted,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "cancelled": self.cancelled,
            "errors": self.errors,
            "distinct_jobs": self.distinct_jobs,
            "wall_seconds": self.wall_seconds,
            "throughput_jobs_per_s": self.throughput,
            "latency_ms": {
                "count": len(latencies),
                "p50": _percentile(latencies, 50.0),
                "p95": _percentile(latencies, 95.0),
                "max": latencies[-1] if latencies else None,
            },
            "shed_retry_afters": {
                "count": len(self.shed_retry_afters),
                "min": min(self.shed_retry_afters, default=None),
                "max": max(self.shed_retry_afters, default=None),
            },
            "chaos_events": self.chaos_events,
            "reconciliation": self.reconcile(),
            "server_metrics": self.server_metrics,
        }


def build_plan(config: LoadConfig) -> list[JobRequest]:
    """The deterministic submission plan: ``jobs`` requests in order.

    A duplicate slot repeats an earlier request verbatim (same client,
    same fault) so its job id — and therefore the dedup key — matches.
    The fault spec, when present, rides on the first *fresh* request and
    every duplicate of it.
    """
    rng = random.Random(config.seed)
    if config.workloads is not None:
        names = list(config.workloads)
    else:
        names = [spec.name for spec in iter_workloads()]
    if not names:
        raise ValueError("no workloads available to generate load against")
    plan: list[JobRequest] = []
    fresh: list[JobRequest] = []
    for index in range(config.jobs):
        if fresh and rng.random() < config.duplicate_ratio:
            plan.append(rng.choice(fresh))
            continue
        request = JobRequest(
            workload=rng.choice(names),
            method=rng.choice(list(config.methods)),
            gpu=rng.choice(list(config.gpus)),
            client=f"loadgen-{index % max(1, config.concurrency)}",
            fault=config.fault if not fresh else None,
            deadline_s=config.deadline_s,
        )
        plan.append(request)
        fresh.append(request)
    return plan


def arrival_offsets(config: LoadConfig) -> list[float]:
    """Deterministic open-loop submission offsets (seconds from start).

    Integrates the shape's rate multiplier step by step: the gap after
    an arrival at ``t`` is ``1 / (rate * m(t))``, so a ``burst:10@1``
    shape emits 10× denser arrivals from one second in.  Pure function
    of the config — two runs with the same config submit at the same
    offsets.
    """
    if config.rate <= 0:
        return [0.0] * config.jobs
    multiplier = parse_shape(config.shape)
    offsets: list[float] = []
    t = 0.0
    for _ in range(config.jobs):
        offsets.append(t)
        t += 1.0 / (config.rate * max(1e-9, multiplier(t)))
    return offsets


def default_chaos_driver(
    client: ServiceClient, rng: random.Random
) -> Callable[[str], dict]:
    """SIGKILL-based chaos on a co-hosted service (the CI arrangement)."""

    def fire(action: str) -> dict:
        if action == "kill-worker":
            metrics = client.metrics()
            slots = (metrics.get("workers") or {}).get("slots", [])
            alive = [s for s in slots if s.get("alive") and s.get("pid")]
            if not alive:
                return {"action": action, "ok": False, "reason": "no live workers"}
            target = rng.choice(alive)
            os.kill(target["pid"], signal.SIGKILL)
            return {
                "action": action,
                "ok": True,
                "pid": target["pid"],
                "worker_id": target["worker_id"],
            }
        if action == "kill-coordinator":
            metrics = client.metrics()
            service_id = metrics.get("service_id", "")
            try:
                pid = int(service_id.split("-")[1])
            except (IndexError, ValueError):
                return {
                    "action": action,
                    "ok": False,
                    "reason": f"cannot parse pid from {service_id!r}",
                }
            os.kill(pid, signal.SIGKILL)
            return {"action": action, "ok": True, "pid": pid}
        return {"action": action, "ok": False, "reason": "unknown action"}

    return fire


def run_load(
    client: ServiceClient,
    config: LoadConfig,
    *,
    chaos_driver: Callable[[str], dict] | None = None,
) -> LoadReport:
    """Execute the plan against a live service and report."""
    plan = build_plan(config)
    report = LoadReport(config=config)
    report.distinct_jobs = len({id(request) for request in plan})
    lock = threading.Lock()
    job_ids: list[str] = []

    def submit_one(request: JobRequest) -> str | None:
        try:
            document = client.submit(request)
        except (
            DeadlineUnattainableError,
            QueueFullError,
            WorkersUnavailableError,
        ) as exc:
            with lock:
                report.shed += 1
                if exc.retry_after is not None:
                    report.shed_retry_afters.append(exc.retry_after)
            return None
        except ServiceError:
            with lock:
                report.rejected += 1
            return None
        with lock:
            report.accepted += 1
            if not document.get("created", True):
                report.deduplicated += 1
            job_ids.append(document["job_id"])
        return document["job_id"]

    def await_one(job_id: str) -> None:
        try:
            final = client.wait(job_id, timeout=config.timeout, poll=config.poll)
        except ServiceError:
            with lock:
                report.errors += 1
            return
        with lock:
            if final["state"] == "done":
                report.completed += 1
                if final.get("source") == "transfer":
                    report.transferred += 1
                elif final.get("source") == "predicted":
                    report.predicted += 1
            elif final["state"] == "failed":
                report.failed += 1
                if (final.get("error") or {}).get("kind") == "quarantined":
                    report.quarantined += 1
            else:
                report.cancelled += 1
            if final.get("latency_ms") is not None:
                report.latencies_ms.append(final["latency_ms"])

    started = time.monotonic()

    chaos_thread = None
    events = parse_chaos(config.chaos)
    if events:
        driver = chaos_driver or default_chaos_driver(
            client, random.Random(config.seed ^ 0xC4A05)
        )

        def chaos_loop() -> None:
            for action, at in events:
                delay = started + at - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                try:
                    outcome = driver(action)
                except Exception as exc:  # chaos must not kill the loadgen
                    outcome = {
                        "action": action,
                        "ok": False,
                        "reason": f"{type(exc).__name__}: {exc}",
                    }
                with lock:
                    report.chaos_events.append({"at_s": at, **outcome})

        chaos_thread = threading.Thread(
            target=chaos_loop, name="loadgen-chaos", daemon=True
        )
        chaos_thread.start()

    if config.mode == "open":
        offsets = arrival_offsets(config)
        for request, offset in zip(plan, offsets, strict=True):
            target = started + offset
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            submit_one(request)
            report.submitted += 1
        # All submissions are in flight; wait on each outcome.
        waiters = [
            threading.Thread(target=await_one, args=(job_id,), daemon=True)
            for job_id in list(job_ids)
        ]
        for thread in waiters:
            thread.start()
        for thread in waiters:
            thread.join(timeout=config.timeout)
    else:  # closed loop
        cursor = {"next": 0}

        def worker() -> None:
            while True:
                with lock:
                    index = cursor["next"]
                    if index >= len(plan):
                        return
                    cursor["next"] = index + 1
                    report.submitted += 1
                job_id = submit_one(plan[index])
                if job_id is not None:
                    await_one(job_id)

        workers = [
            threading.Thread(target=worker, daemon=True)
            for _ in range(max(1, config.concurrency))
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join(timeout=config.timeout)
    if chaos_thread is not None:
        chaos_thread.join(timeout=config.timeout)
    report.wall_seconds = time.monotonic() - started
    try:
        report.server_metrics = client.metrics()
    except ServiceError:
        report.server_metrics = None
    return report
