"""Supervised worker fleet: process spawning, liveness, and recovery.

Fleet mode splits the service into a **coordinator** (the HTTP process:
admission, single-flight dedup, the journal) and N **worker processes**
that actually compute cells.  The supervisor owns everything about the
workers' lives:

* **Dispatch** — an idle worker pulls the next job from the scheduler's
  fair queue; each worker holds at most one job at a time, so in-flight
  accounting is exact and a dead worker orphans exactly the jobs it was
  visibly running.
* **Liveness** — workers heartbeat on a side channel; a worker whose
  process exited *or* whose heartbeat went stale (hung) is declared
  dead and killed.
* **Recovery** — a dead worker's in-flight job is re-dispatched to the
  front of the queue.  Each job carries a redispatch budget; a job that
  keeps killing workers is routed to **poison quarantine** (a typed
  ``failed`` terminal state carrying the crash evidence) instead of
  crash-looping the fleet — mirroring the run cache's corrupt-entry
  quarantine posture.
* **Respawn** — dead workers are respawned with exponential backoff
  (consecutive deaths back off further; a successful job resets the
  streak), so a systemic failure cannot fork-bomb the host.

When *every* worker is down the scheduler's circuit breaker flips the
service to warm-cache-only mode (see ``Scheduler.submit``); the
supervisor contributes ``any_alive`` and a next-respawn estimate for
the 503 ``Retry-After`` header.

Workers exit on their own when the coordinator disappears (they watch
``getppid``), so a SIGKILLed coordinator does not leak children.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.analysis.harness import EvaluationHarness
from repro.analysis.persistence import (
    RunCache,
    dump_run,
    dump_selection,
    load_run,
    load_selection,
)
from repro.core.pka import KernelSelection
from repro.obs import obs_count
from repro.service.jobs import JobRecord, parse_job_fault
from repro.sim.faults import FaultPlan, InjectedFault
from repro.sim.stats import AppRunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.service.scheduler import Scheduler

__all__ = ["WorkerSupervisor"]


def _mp_context():
    """Prefer fork (same choice as ProcessPoolBackend); fall back."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def _worker_main(
    worker_id: int,
    generation: int,
    task_queue,
    event_queue,
    harness_args: tuple,
    heartbeat_interval: float,
    parent_pid: int,
) -> None:
    """Fleet worker: compute one job at a time with a local harness.

    Runs a daemon heartbeat thread that also watches the parent pid —
    if the coordinator dies (even SIGKILL), the worker exits instead of
    leaking.  Injected "crash" faults run with ``crash_in_process=True``
    so they genuinely ``os._exit`` this process: that is how poison jobs
    kill real workers and exercise the supervisor.
    """
    config, model_error, instruction_budget, cache_root, mode, intra_spec = (
        harness_args
    )
    harness = EvaluationHarness(
        config,
        model_error,
        instruction_budget,
        cache_dir=cache_root,
        validation_mode=mode,
        intra_jobs=intra_spec,
    )
    stop = threading.Event()

    def beat() -> None:
        while not stop.is_set():
            if os.getppid() != parent_pid:
                os._exit(0)  # coordinator died; do not leak
            try:
                event_queue.put(
                    ("heartbeat", worker_id, generation, os.getpid())
                )
            except Exception:
                os._exit(0)
            stop.wait(heartbeat_interval)

    threading.Thread(target=beat, name="pka-worker-beat", daemon=True).start()
    try:
        while True:
            task = task_queue.get()
            if task is None:
                break
            job_id, cell, fault_kind, fault_attempts = task
            plan = None
            if fault_kind is not None and fault_attempts >= 1:
                plan = FaultPlan(
                    faults=(
                        InjectedFault(
                            task_index=0,
                            kind=fault_kind,
                            attempts=fault_attempts,
                        ),
                    )
                )
            results = harness.evaluate_cells(
                [cell], strict=False, fault_plan=plan, crash_in_process=True
            )
            event_queue.put(
                (
                    "finished",
                    worker_id,
                    generation,
                    job_id,
                    _serialize_result(results[0]),
                )
            )
    finally:
        stop.set()


def _serialize_result(result: Any) -> dict:
    """Portable (queue-safe) rendering of one cell result."""
    from repro.analysis.harness import CellFailure

    if isinstance(result, CellFailure):
        return {
            "ok": False,
            "failure": result.to_record(),
            "attempts": result.attempts,
        }
    if isinstance(result, AppRunResult):
        return {"ok": True, "kind": "app_run", "text": dump_run(result)}
    if isinstance(result, KernelSelection):
        return {"ok": True, "kind": "selection", "text": dump_selection(result)}
    return {"ok": True, "kind": "none", "text": None}


def _deserialize_result(payload: dict) -> Any:
    if payload.get("kind") == "app_run":
        return load_run(payload["text"])
    if payload.get("kind") == "selection":
        return load_selection(payload["text"])
    return None


@dataclass
class _WorkerSlot:
    """Coordinator-side bookkeeping for one worker seat."""

    worker_id: int
    process: Any = None
    task_queue: Any = None
    generation: int = 0
    pid: int | None = None
    last_heartbeat: float = 0.0
    current: JobRecord | None = None
    consecutive_deaths: int = 0
    respawn_at: float = 0.0
    deaths: int = 0
    completed: int = 0
    last_exit: dict | None = field(default=None)
    #: Scale-down in progress: no new dispatch; the in-flight job (if
    #: any) finishes — deadline-bounded by ``drain_deadline`` — before
    #: the slot retires.
    draining: bool = False
    drain_deadline: float = 0.0
    #: Retired slots stay in the list (worker ids index it) but are
    #: never dispatched to, never respawned, and not counted as
    #: configured capacity.
    retired: bool = False

    def snapshot(self, now: float) -> dict:
        alive = self.process is not None and self.process.is_alive()
        return {
            "worker_id": self.worker_id,
            "pid": self.pid,
            "alive": alive,
            "generation": self.generation,
            "heartbeat_age_s": (
                round(now - self.last_heartbeat, 3) if alive else None
            ),
            "current_job": self.current.job_id if self.current else None,
            "deaths": self.deaths,
            "completed": self.completed,
            "respawn_in_s": (
                round(max(0.0, self.respawn_at - now), 3)
                if not alive and not self.retired
                else None
            ),
            "draining": self.draining,
            "retired": self.retired,
            "last_exit": self.last_exit,
        }


class WorkerSupervisor:
    """Spawn, watch, and recover a fleet of worker processes.

    The supervisor is bound to its scheduler after construction (the
    scheduler holds the registry and the journal; the supervisor holds
    the processes) and started by ``Scheduler.start()``.
    """

    def __init__(
        self,
        harness: EvaluationHarness,
        workers: int = 2,
        *,
        heartbeat_interval: float = 0.2,
        heartbeat_timeout: float = 10.0,
        redispatch_budget: int = 2,
        respawn_backoff: float = 0.25,
        respawn_backoff_cap: float = 5.0,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if redispatch_budget < 0:
            raise ValueError("redispatch_budget must be >= 0")
        self.harness = harness
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.redispatch_budget = redispatch_budget
        self.respawn_backoff = respawn_backoff
        self.respawn_backoff_cap = respawn_backoff_cap
        self.scheduler: "Scheduler" | None = None
        self._ctx = _mp_context()
        self._events = self._ctx.Queue()
        self._slots = [_WorkerSlot(worker_id=i) for i in range(workers)]
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self._started = False
        # Monotonic counters for /metricsz.
        self.worker_deaths = 0
        self.respawns = 0
        self.redispatches = 0
        self.quarantined = 0
        self.retired_total = 0
        self.grown_total = 0

    @property
    def workers(self) -> int:
        """Configured pool size: non-retired slots (the scaling target).

        Dead-but-respawning and draining slots still count — a slot
        leaves the configured pool only when it retires.
        """
        with self._lock:
            return sum(1 for slot in self._slots if not slot.retired)

    # ------------------------------------------------------------------
    # Lifecycle

    def bind(self, scheduler: "Scheduler") -> None:
        self.scheduler = scheduler

    def start(self) -> None:
        if self._started:
            return
        if self.scheduler is None:
            raise RuntimeError("WorkerSupervisor.start() before bind()")
        self._started = True
        now = time.monotonic()
        with self._lock:
            for slot in self._slots:
                if not slot.retired:
                    self._spawn_locked(slot, now)
        for target, name in (
            (self._dispatch_loop, "pka-fleet-dispatch"),
            (self._event_loop, "pka-fleet-events"),
            (self._monitor_loop, "pka-fleet-monitor"),
        ):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)

    def stop(self, *, kill: bool = False) -> None:
        """Stop the fleet.  Graceful by default (sentinel + join); with
        ``kill=True`` workers are terminated immediately."""
        self._stop.set()
        with self._lock:
            slots = list(self._slots)
        for slot in slots:
            process = slot.process
            if process is None:
                continue
            if kill:
                self._kill_process(process)
            else:
                try:
                    slot.task_queue.put(None)
                except Exception:
                    pass
        deadline = time.monotonic() + (0.5 if kill else 5.0)
        for slot in slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                self._kill_process(process)
                process.join(timeout=1.0)
            slot.process = None
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()

    @staticmethod
    def _kill_process(process) -> None:
        try:
            process.kill()
        except Exception:
            try:
                process.terminate()
            except Exception:
                pass

    # ------------------------------------------------------------------
    # Spawning

    def _harness_args(self) -> tuple:
        harness = self.harness
        cache_root = (
            harness.run_cache.root
            if isinstance(harness.run_cache, RunCache)
            else None
        )
        intra_spec = (
            harness.intra_jobs
            if isinstance(harness.intra_jobs, (str, int))
            else None
        )
        return (
            harness.pka.config,
            harness.model_error,
            harness.instruction_budget,
            cache_root,
            harness.validation_mode,
            intra_spec,
        )

    def _spawn_locked(self, slot: _WorkerSlot, now: float) -> None:
        slot.generation += 1
        slot.task_queue = self._ctx.Queue()
        slot.last_heartbeat = now
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                slot.worker_id,
                slot.generation,
                slot.task_queue,
                self._events,
                self._harness_args(),
                self.heartbeat_interval,
                os.getpid(),
            ),
            name=f"pka-worker-{slot.worker_id}",
            daemon=True,
        )
        process.start()
        slot.process = process
        slot.pid = process.pid
        slot.respawn_at = 0.0

    # ------------------------------------------------------------------
    # Elastic scaling (driven by repro.service.autoscaler)

    def grow(self, count: int) -> int:
        """Add ``count`` fresh worker slots; returns the new configured
        size.  Draining (not yet retired) slots are *resurrected* first —
        cancelling an in-progress scale-down is cheaper and faster than
        forking a new interpreter, and it is how a scale-up decision that
        races a scale-down wins without ever double-spawning.
        """
        if count < 1:
            raise ValueError("grow() needs count >= 1")
        now = time.monotonic()
        added = 0
        with self._lock:
            for slot in self._slots:
                if added >= count:
                    break
                if slot.retired or not slot.draining:
                    continue
                slot.draining = False
                slot.drain_deadline = 0.0
                added += 1
            while added < count:
                slot = _WorkerSlot(worker_id=len(self._slots))
                self._slots.append(slot)
                if self._started:
                    self._spawn_locked(slot, now)
                added += 1
            self.grown_total += count
            configured = sum(1 for s in self._slots if not s.retired)
        obs_count("fleet.grown", count)
        return configured

    def retire(self, count: int = 1, *, grace: float = 10.0) -> int:
        """Begin graceful scale-down of up to ``count`` workers; returns
        how many victims were marked.

        Victim preference is loss-free and respawn-aware: dead slots
        sitting out a respawn backoff retire immediately (scale-down and
        respawn backoff must never fight — the pending respawn is simply
        cancelled), then idle live workers, then busy ones.  A live
        victim is marked ``draining``: dispatch stops, its in-flight job
        (if any) finishes within ``grace`` seconds, and the monitor loop
        retires it; past the deadline the worker is killed and its job
        re-dispatched through the PR-7 recovery path, so scale-down never
        loses an accepted job.
        """
        if count < 1:
            raise ValueError("retire() needs count >= 1")
        now = time.monotonic()
        marked = 0
        with self._lock:
            candidates = [
                slot
                for slot in self._slots
                if not slot.retired and not slot.draining
            ]
            # Dead-in-backoff first (free), then idle, then busy.
            def rank(slot: _WorkerSlot) -> int:
                alive = slot.process is not None and slot.process.is_alive()
                if not alive:
                    return 0
                return 1 if slot.current is None else 2

            for slot in sorted(candidates, key=rank):
                if marked >= count:
                    break
                alive = slot.process is not None and slot.process.is_alive()
                if not alive:
                    self._retire_locked(slot, graceful=True)
                else:
                    slot.draining = True
                    slot.drain_deadline = now + max(0.0, grace)
                marked += 1
        return marked

    def _retire_locked(self, slot: _WorkerSlot, *, graceful: bool) -> None:
        """Finalize one slot's retirement (caller holds the lock)."""
        process = slot.process
        if process is not None and process.is_alive():
            try:
                slot.task_queue.put(None)  # graceful: worker exits its loop
            except Exception:
                self._kill_process(process)
        slot.retired = True
        slot.draining = False
        slot.respawn_at = 0.0
        self.retired_total += 1
        obs_count("fleet.retired")
        scheduler = self.scheduler
        if scheduler is not None:
            scheduler.note_fleet(
                "worker-retired",
                worker_id=slot.worker_id,
                graceful=graceful,
                completed=slot.completed,
                deaths=slot.deaths,
            )

    # ------------------------------------------------------------------
    # Liveness / introspection

    @property
    def alive_workers(self) -> int:
        with self._lock:
            return sum(
                1
                for slot in self._slots
                if not slot.retired
                and slot.process is not None
                and slot.process.is_alive()
            )

    @property
    def serving_workers(self) -> int:
        """Workers that can take *new* work: alive, not retired, not
        draining.  This is the capacity admission control divides by."""
        with self._lock:
            return sum(
                1
                for slot in self._slots
                if not slot.retired
                and not slot.draining
                and slot.process is not None
                and slot.process.is_alive()
            )

    @property
    def busy_workers(self) -> int:
        """Non-retired workers currently holding a job."""
        with self._lock:
            return sum(
                1
                for slot in self._slots
                if not slot.retired and slot.current is not None
            )

    @property
    def any_alive(self) -> bool:
        return self.alive_workers > 0

    def next_retry_after(self) -> float:
        """Seconds until the soonest dead worker is due to respawn —
        the server's ``Retry-After`` advice in warm-cache-only mode."""
        now = time.monotonic()
        with self._lock:
            waits = [
                max(0.0, slot.respawn_at - now)
                for slot in self._slots
                if not slot.retired
                and (slot.process is None or not slot.process.is_alive())
            ]
        if not waits:
            return self.respawn_backoff
        return max(self.respawn_backoff, min(waits))

    def snapshot(self) -> dict:
        now = time.monotonic()
        with self._lock:
            slots = [
                slot.snapshot(now) for slot in self._slots if not slot.retired
            ]
            retired = sum(1 for slot in self._slots if slot.retired)
        return {
            "configured": len(slots),
            "alive": sum(1 for slot in slots if slot["alive"]),
            "draining": sum(1 for slot in slots if slot["draining"]),
            "busy": sum(1 for slot in slots if slot["current_job"]),
            "retired": retired,
            "heartbeat_timeout_s": self.heartbeat_timeout,
            "redispatch_budget": self.redispatch_budget,
            "deaths": self.worker_deaths,
            "respawns": self.respawns,
            "redispatches": self.redispatches,
            "quarantined": self.quarantined,
            "grown": self.grown_total,
            "slots": slots,
        }

    # ------------------------------------------------------------------
    # Dispatch

    def _idle_slots_locked(self) -> list[_WorkerSlot]:
        return [
            slot
            for slot in self._slots
            if not slot.retired
            and not slot.draining
            and slot.process is not None
            and slot.process.is_alive()
            and slot.current is None
        ]

    def _dispatch_loop(self) -> None:
        scheduler = self.scheduler
        while not self._stop.is_set():
            with self._lock:
                idle = self._idle_slots_locked()
            if not idle:
                self._stop.wait(0.05)
                continue
            batch = scheduler.queue.take_batch(
                len(idle), linger=0.0, timeout=0.2
            )
            if not batch:
                continue
            leftovers: list[JobRecord] = []
            with self._lock:
                idle = self._idle_slots_locked()
                for record in batch:
                    if not idle:
                        leftovers.append(record)
                        continue
                    if not scheduler.begin(record):
                        continue  # cancelled in the take window
                    slot = idle.pop(0)
                    slot.current = record
                    try:
                        slot.task_queue.put(self._task_for(record))
                    except Exception:
                        slot.current = None
                        leftovers.append(record)
            # Slots vanished between sizing and assignment: not a loss,
            # the jobs go back to the front of the line.
            for record in leftovers:
                scheduler.requeue(record, count=False)

    @staticmethod
    def _task_for(record: JobRecord) -> tuple:
        request = record.request
        cell = (request.workload, request.method, request.gpu)
        fault_kind = None
        fault_attempts = 0
        if request.fault is not None:
            fault_kind, fault_attempts = parse_job_fault(request.fault)
            # A worker's in-process attempt counter restarts on every
            # dispatch, so charge prior dispatches against the fault's
            # attempt budget: "crashx2" kills two workers, then runs.
            fault_attempts -= record.redispatches
            if fault_attempts <= 0:
                fault_kind = None
        return (record.job_id, cell, fault_kind, fault_attempts)

    # ------------------------------------------------------------------
    # Events

    def _event_loop(self) -> None:
        while not self._stop.is_set():
            try:
                event = self._events.get(timeout=0.2)
            except (queue_mod.Empty, OSError, EOFError):
                continue
            kind = event[0]
            if kind == "heartbeat":
                _, worker_id, generation, _pid = event
                with self._lock:
                    if worker_id >= len(self._slots):
                        continue
                    slot = self._slots[worker_id]
                    if slot.generation == generation:
                        slot.last_heartbeat = time.monotonic()
            elif kind == "finished":
                _, worker_id, generation, job_id, payload = event
                self._handle_finished(worker_id, generation, job_id, payload)

    def _handle_finished(
        self, worker_id: int, generation: int, job_id: str, payload: dict
    ) -> None:
        scheduler = self.scheduler
        with self._lock:
            if worker_id >= len(self._slots):
                return
            slot = self._slots[worker_id]
            if slot.generation == generation:
                if slot.current is not None and slot.current.job_id == job_id:
                    slot.current = None
                slot.completed += 1
                slot.consecutive_deaths = 0
                slot.last_heartbeat = time.monotonic()
        try:
            record = scheduler.get(job_id)
        except Exception:
            return  # job evaporated (should not happen); nothing to complete
        if payload.get("ok"):
            scheduler.finish(
                record, result=_deserialize_result(payload), source="computed"
            )
        else:
            scheduler.finish(
                record,
                error=payload.get("failure"),
                attempts=payload.get("attempts"),
                source="computed",
            )
        obs_count("fleet.jobs_finished")

    # ------------------------------------------------------------------
    # Monitoring

    def _monitor_loop(self) -> None:
        poll = max(0.02, self.heartbeat_interval / 2.0)
        while not self._stop.is_set():
            now = time.monotonic()
            with self._lock:
                for slot in self._slots:
                    if slot.retired:
                        # Collect the exited process of a gracefully
                        # retired worker; never respawn it.
                        process = slot.process
                        if process is not None and not process.is_alive():
                            process.join(timeout=0)
                            slot.process = None
                            slot.pid = None
                        continue
                    if slot.process is None:
                        if now >= slot.respawn_at:
                            self._spawn_locked(slot, now)
                            self.respawns += 1
                            obs_count("fleet.respawns")
                        continue
                    if slot.draining and slot.process.is_alive():
                        if slot.current is None:
                            # In-flight work done (or none): retire now.
                            self._retire_locked(slot, graceful=True)
                            continue
                        if now >= slot.drain_deadline:
                            # Deadline-bounded drain: put the worker
                            # down; _reap_locked re-dispatches the job
                            # (PR-7 path) and then retires the slot.
                            self._reap_locked(
                                slot, now, exited=False,
                                reason="drain-deadline",
                            )
                            continue
                    exited = not slot.process.is_alive()
                    stale = (
                        now - slot.last_heartbeat
                    ) > self.heartbeat_timeout
                    if exited or stale:
                        self._reap_locked(slot, now, exited=exited)
            self._stop.wait(poll)

    def _reap_locked(
        self,
        slot: _WorkerSlot,
        now: float,
        *,
        exited: bool,
        reason: str | None = None,
    ) -> None:
        """Declare one worker dead: kill, record evidence, recover its job."""
        process = slot.process
        if not exited:
            self._kill_process(process)  # hung or overdue: put it down
            process.join(timeout=1.0)
        evidence = {
            "worker_id": slot.worker_id,
            "pid": slot.pid,
            "generation": slot.generation,
            "reason": reason or ("exited" if exited else "stale-heartbeat"),
            "exitcode": process.exitcode,
            "heartbeat_age_s": round(now - slot.last_heartbeat, 3),
        }
        slot.last_exit = evidence
        slot.process = None
        slot.pid = None
        slot.deaths += 1
        slot.consecutive_deaths += 1
        backoff = min(
            self.respawn_backoff_cap,
            self.respawn_backoff * (2 ** (slot.consecutive_deaths - 1)),
        )
        slot.respawn_at = now + backoff
        self.worker_deaths += 1
        obs_count("fleet.worker_deaths")
        record, slot.current = slot.current, None
        if slot.draining:
            # A draining victim that died (or overstayed its drain
            # deadline) retires instead of respawning — scale-down and
            # respawn backoff never compete for the same slot.
            self._retire_locked(slot, graceful=False)
        if record is None or record.terminal:
            return
        evidence = dict(evidence, job_id=record.job_id)
        if record.redispatches >= self.redispatch_budget:
            self.quarantined += 1
            self.scheduler.quarantine(record, evidence)
        else:
            self.redispatches += 1
            obs_count("fleet.redispatches")
            self.scheduler.requeue(record, evidence=evidence)
