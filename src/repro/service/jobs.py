"""Typed jobs: the unit of work the evaluation service schedules.

A **job** is one evaluation cell — ``(workload, method, gpu)`` — plus
serving metadata (client identity, priority, an optional fault-injection
passthrough for chaos testing).  Its identity is **deterministic**:
the job id derives from the cell's :func:`RunKey
<repro.analysis.persistence.RunKey>`-based content digest (the same
address the :class:`~repro.analysis.persistence.RunCache` stores the
result under), so two clients submitting the same request necessarily
collide on one job — which is exactly how the scheduler's single-flight
dedup works.

Lifecycle::

    queued -> running -> done | failed
       \\-> cancelled            (while queued, or at drain timeout)

``done``, ``failed`` and ``cancelled`` are terminal; a graceful drain
guarantees every accepted job reaches one of them.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.errors import InvalidJobRequestError
from repro.obs import now_us
from repro.sim.faults import FAULT_KINDS, PERSISTENT

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "JobRecord",
    "JobRequest",
    "job_id_for",
    "parse_job_fault",
]

JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")


def parse_job_fault(text: str) -> tuple[str, int]:
    """Parse a job-level fault spec: ``kind`` or ``kindxN`` or ``kindxP``.

    The same vocabulary as the CLI's ``--inject-faults`` plans, minus the
    task index (the scheduler assigns that when it places the job in a
    batch).  ``exception`` poisons the first attempt only (transient,
    survivable by retry); ``exceptionx99`` or ``exceptionxP`` is
    persistent poison the job cannot survive.
    """
    bare = text.strip().lower()
    if bare in FAULT_KINDS:
        return bare, 1
    # "exception" contains an 'x', so the attempts suffix must split on
    # the *last* 'x': "exceptionx99" -> ("exception", "99").
    kind, sep, attempts_text = bare.rpartition("x")
    if not sep or kind not in FAULT_KINDS:
        raise InvalidJobRequestError(
            f"unknown fault spec {text!r}; expected kind[xN] with kind "
            f"in {FAULT_KINDS}"
        )
    attempts_text = attempts_text.strip()
    if attempts_text.upper() == "P":
        return kind, PERSISTENT
    try:
        attempts = int(attempts_text)
    except ValueError as exc:
        raise InvalidJobRequestError(
            f"bad fault attempts {attempts_text!r} in {text!r}"
        ) from exc
    if attempts < 1:
        raise InvalidJobRequestError("fault attempts must be >= 1")
    return kind, attempts


@dataclass(frozen=True)
class JobRequest:
    """What a client asks for: one cell, plus serving metadata.

    ``priority`` orders dispatch (lower runs first); ``client``
    participates in the queue's per-client fairness; ``fault`` is the
    chaos-testing passthrough (see :func:`parse_job_fault`) that the
    scheduler turns into a :class:`~repro.sim.faults.FaultPlan` entry
    for this job's slot in its batch.
    """

    workload: str
    method: str
    gpu: str | None = None
    client: str = "anonymous"
    priority: int = 1
    fault: str | None = None
    #: Admission deadline in seconds: the longest queue wait this client
    #: will tolerate.  ``None`` defers to the server's default (which may
    #: itself be None = no deadline-aware admission).  Does not change
    #: job identity — two clients with different deadlines still dedup
    #: onto one computation.
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.fault is not None:
            parse_job_fault(self.fault)  # validate eagerly
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise InvalidJobRequestError("'deadline_s' must be > 0 seconds")

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "JobRequest":
        """Build a request from a JSON document, with typed complaints."""
        if not isinstance(document, Mapping):
            raise InvalidJobRequestError("job request must be a JSON object")
        unknown = set(document) - {
            "workload", "method", "gpu", "client", "priority", "fault",
            "deadline_s",
        }
        if unknown:
            raise InvalidJobRequestError(
                f"unknown job request field(s): {sorted(unknown)}"
            )
        workload = document.get("workload")
        method = document.get("method")
        if not isinstance(workload, str) or not workload:
            raise InvalidJobRequestError("'workload' must be a non-empty string")
        if not isinstance(method, str) or not method:
            raise InvalidJobRequestError("'method' must be a non-empty string")
        gpu = document.get("gpu")
        if gpu is not None and not isinstance(gpu, str):
            raise InvalidJobRequestError("'gpu' must be a string or null")
        client = document.get("client", "anonymous")
        if not isinstance(client, str) or not client:
            raise InvalidJobRequestError("'client' must be a non-empty string")
        priority = document.get("priority", 1)
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise InvalidJobRequestError("'priority' must be an integer")
        fault = document.get("fault")
        if fault is not None and not isinstance(fault, str):
            raise InvalidJobRequestError("'fault' must be a string or null")
        deadline = document.get("deadline_s")
        if deadline is not None:
            if isinstance(deadline, bool) or not isinstance(
                deadline, (int, float)
            ):
                raise InvalidJobRequestError(
                    "'deadline_s' must be a number or null"
                )
            deadline = float(deadline)
        return cls(
            workload=workload,
            method=method,
            gpu=gpu,
            client=client,
            priority=priority,
            fault=fault,
            deadline_s=deadline,
        )

    def to_document(self) -> dict:
        return {
            "workload": self.workload,
            "method": self.method,
            "gpu": self.gpu,
            "client": self.client,
            "priority": self.priority,
            "fault": self.fault,
            "deadline_s": self.deadline_s,
        }


def job_id_for(cell_digest: str, fault: str | None = None) -> str:
    """Deterministic job id: the cell digest, salted by any fault spec.

    Derived from the cell's RunKey-based content digest so identical
    requests collide (single-flight dedup); a fault-carrying request
    never shares an id with its clean twin, otherwise a dedup or cache
    hit would silently skip the injection.
    """
    if fault is None:
        return f"j{cell_digest[:24]}"
    salt = hashlib.sha256(f"{cell_digest}:{fault}".encode("utf-8")).hexdigest()
    return f"j{salt[:24]}"


@dataclass
class JobRecord:
    """One job's full serving state, mutated only under the scheduler lock.

    ``digest`` is the cell's cache address; ``source`` records where the
    result came from (``"cache"`` for a submission-time cache hit,
    ``"computed"`` for a backend fan-out); ``latency_ms`` is
    submit-to-terminal wall time, also recorded as a ``service.job``
    span for the ``/metricsz`` percentiles.
    """

    job_id: str
    request: JobRequest
    digest: str
    state: str = "queued"
    created_at: float = field(default_factory=time.time)
    submitted_us: float = field(default_factory=now_us)
    source: str | None = None
    attempts: int = 0
    error: dict | None = None
    latency_ms: float | None = None
    #: When the job left the queue for a worker (``begin()``); None for
    #: jobs answered straight from cache.  Queue wait = started - submitted.
    started_us: float | None = None
    #: Submit-to-dispatch wall time, recorded as a ``service.queue_wait``
    #: span for the ``/metricsz`` queue-age percentiles.
    queue_wait_ms: float | None = None
    dedup_hits: int = 0
    #: Times this job was re-dispatched after its worker died mid-run.
    #: Exceeding the supervisor's redispatch budget routes the job to
    #: poison quarantine (``failed`` with the crash evidence attached).
    redispatches: int = 0
    #: The in-memory result object (AppRunResult / KernelSelection /
    #: None for a not-applicable cell); serialized lazily by the server.
    result: Any = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_document(self) -> dict:
        """JSON-ready view (without the result payload)."""
        return {
            "job_id": self.job_id,
            "request": self.request.to_document(),
            "digest": self.digest,
            "state": self.state,
            "created_at": self.created_at,
            "source": self.source,
            "attempts": self.attempts,
            "error": self.error,
            "latency_ms": self.latency_ms,
            "queue_wait_ms": self.queue_wait_ms,
            "dedup_hits": self.dedup_hits,
            "redispatches": self.redispatches,
        }
