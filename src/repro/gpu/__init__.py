"""GPU hardware model: architectures, kernel descriptions and occupancy."""

from repro.gpu.architectures import (
    ALL_GPUS,
    AMPERE_A100,
    AMPERE_RTX3070,
    GENERATIONS,
    GPUConfig,
    TURING_RTX2060,
    VOLTA_V100,
    get_gpu,
    volta_v100_half_sms,
)
from repro.gpu.kernels import InstructionMix, KernelLaunch, KernelSpec
from repro.gpu.occupancy import Occupancy, compute_occupancy

__all__ = [
    "ALL_GPUS",
    "AMPERE_A100",
    "AMPERE_RTX3070",
    "GENERATIONS",
    "GPUConfig",
    "InstructionMix",
    "KernelLaunch",
    "KernelSpec",
    "Occupancy",
    "TURING_RTX2060",
    "VOLTA_V100",
    "compute_occupancy",
    "get_gpu",
    "volta_v100_half_sms",
]
