"""CUDA occupancy calculation.

Principal Kernel Projection's "wave" constraint — stability may only be
declared after enough thread blocks have finished to fill the GPU once —
requires knowing how many blocks of a given kernel are simultaneously
resident.  This module reproduces the standard CUDA occupancy calculation
from the four per-SM limits: thread slots, block slots, registers and
shared memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpu.architectures import GPUConfig
from repro.gpu.kernels import KernelSpec

__all__ = ["Occupancy", "compute_occupancy"]


@dataclass(frozen=True)
class Occupancy:
    """Residency of one kernel on one GPU.

    Attributes
    ----------
    blocks_per_sm:
        Concurrent thread blocks one SM can host.
    wave_size:
        Blocks needed to fill the whole GPU once (PKP's "wave").
    limiting_resource:
        Which per-SM limit bound the residency ("threads", "blocks",
        "registers" or "shared_mem").
    occupancy_fraction:
        Resident warps over the SM's warp capacity, the familiar
        "achieved occupancy" metric.
    """

    blocks_per_sm: int
    wave_size: int
    limiting_resource: str
    occupancy_fraction: float


def compute_occupancy(spec: KernelSpec, gpu: GPUConfig) -> Occupancy:
    """Compute how many blocks of ``spec`` fit per SM of ``gpu``.

    Follows the CUDA occupancy calculator: the residency is the minimum
    over the four per-SM resource limits, floored at one block (a kernel
    that oversubscribes an SM still runs, serially).
    """
    if spec.threads_per_block > gpu.max_threads_per_sm:
        raise ConfigurationError(
            f"kernel {spec.name!r} uses {spec.threads_per_block} threads per "
            f"block but {gpu.name} SMs hold at most {gpu.max_threads_per_sm}"
        )

    limits = {
        "threads": gpu.max_threads_per_sm // spec.threads_per_block,
        "blocks": gpu.max_blocks_per_sm,
        "registers": gpu.registers_per_sm
        // (spec.regs_per_thread * spec.threads_per_block),
        "shared_mem": (
            gpu.shared_mem_per_sm // spec.shared_mem_per_block
            if spec.shared_mem_per_block > 0
            else gpu.max_blocks_per_sm
        ),
    }
    limiting_resource = min(limits, key=limits.get)  # type: ignore[arg-type]
    blocks_per_sm = max(1, limits[limiting_resource])

    warps_per_block = -(-spec.threads_per_block // gpu.warp_size)
    warp_capacity = gpu.max_threads_per_sm // gpu.warp_size
    fraction = min(1.0, blocks_per_sm * warps_per_block / warp_capacity)

    return Occupancy(
        blocks_per_sm=blocks_per_sm,
        wave_size=blocks_per_sm * gpu.num_sms,
        limiting_resource=limiting_resource,
        occupancy_fraction=fraction,
    )
