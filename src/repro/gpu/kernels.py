"""Kernel descriptions: instruction mixes, specs and launches.

A :class:`KernelSpec` captures everything the performance model and the
profilers need to know about one compiled kernel; a :class:`KernelLaunch`
is one dynamic instance of a spec with a concrete grid.  Workload
generators emit sequences of launches; the simulator, the silicon model
and the profilers all consume them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

from repro.errors import WorkloadError

__all__ = ["InstructionMix", "KernelSpec", "KernelLaunch"]


@dataclass(frozen=True)
class InstructionMix:
    """Per-thread dynamic instruction counts for one kernel.

    All counts are averages per thread over the kernel's lifetime, which
    is what the Nsight ``smsp__inst_executed*`` counters divide down to.
    """

    fp_ops: float = 0.0
    int_ops: float = 0.0
    tensor_ops: float = 0.0
    global_loads: float = 0.0
    global_stores: float = 0.0
    local_loads: float = 0.0
    shared_loads: float = 0.0
    shared_stores: float = 0.0
    global_atomics: float = 0.0
    control_ops: float = 0.0

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise WorkloadError(f"instruction count {name} must be >= 0")
        if self.per_thread_total <= 0:
            raise WorkloadError("an instruction mix must contain work")

    @property
    def per_thread_total(self) -> float:
        """Total dynamic instructions executed per thread."""
        return (
            self.fp_ops
            + self.int_ops
            + self.tensor_ops
            + self.global_loads
            + self.global_stores
            + self.local_loads
            + self.shared_loads
            + self.shared_stores
            + self.global_atomics
            + self.control_ops
        )

    @property
    def memory_fraction(self) -> float:
        """Fraction of instructions that touch global or local memory."""
        memory = (
            self.global_loads
            + self.global_stores
            + self.local_loads
            + self.global_atomics
        )
        return memory / self.per_thread_total

    def scaled(self, factor: float) -> "InstructionMix":
        """A mix with every count multiplied by ``factor`` (> 0)."""
        if factor <= 0:
            raise WorkloadError("scale factor must be positive")
        return InstructionMix(
            **{name: value * factor for name, value in self.__dict__.items()}
        )


@dataclass(frozen=True)
class KernelSpec:
    """Static description of one compiled GPU kernel.

    Attributes
    ----------
    name:
        Mangled-ish kernel name as a profiler would report it.
    threads_per_block:
        CTA size in threads.
    mix:
        Per-thread instruction mix.
    regs_per_thread / shared_mem_per_block:
        Occupancy-limiting resources.
    divergence_efficiency:
        Average active threads per issued warp instruction divided by the
        warp size; 1.0 means no control divergence.
    sectors_per_global_access:
        Average 32-byte sectors touched per warp-level global access;
        4 is perfectly coalesced 4-byte accesses, 32 is fully scattered.
    l2_locality:
        Fraction of sector traffic that hits in an infinitely large L2;
        the memory model degrades it by the footprint/capacity ratio.
    working_set_bytes:
        Approximate data footprint of one launch.
    duration_cv:
        Coefficient of variation of per-block durations — the knob that
        separates regular kernels (ATAX-like) from irregular ones
        (BFS-like).
    phase_drift:
        Relative duration trend from the first to the last block of the
        grid (+0.5 means late blocks run 50% longer), modelling
        intra-kernel phase behaviour.
    cold_start_factor:
        Relative slowdown of the first wave of blocks (cold caches, TLB
        and instruction-fetch warm-up); the source of the IPC ramp-up
        phase PKP must wait out.
    uses_tensor_cores:
        Whether tensor_ops execute at the tensor-core rate.
    """

    name: str
    threads_per_block: int
    mix: InstructionMix
    regs_per_thread: int = 32
    shared_mem_per_block: int = 0
    divergence_efficiency: float = 1.0
    sectors_per_global_access: float = 4.0
    l2_locality: float = 0.5
    working_set_bytes: float = 16 * 1024 * 1024
    duration_cv: float = 0.05
    phase_drift: float = 0.0
    cold_start_factor: float = 0.2
    uses_tensor_cores: bool = False

    def __post_init__(self) -> None:
        if self.threads_per_block < 1 or self.threads_per_block > 1024:
            raise WorkloadError("threads_per_block must be in [1, 1024]")
        if not 0.0 < self.divergence_efficiency <= 1.0:
            raise WorkloadError("divergence_efficiency must be in (0, 1]")
        if not 1.0 <= self.sectors_per_global_access <= 32.0:
            raise WorkloadError("sectors_per_global_access must be in [1, 32]")
        if not 0.0 <= self.l2_locality <= 1.0:
            raise WorkloadError("l2_locality must be in [0, 1]")
        if self.working_set_bytes <= 0:
            raise WorkloadError("working_set_bytes must be positive")
        if self.duration_cv < 0:
            raise WorkloadError("duration_cv must be >= 0")
        if self.cold_start_factor < 0:
            raise WorkloadError("cold_start_factor must be >= 0")
        if self.regs_per_thread < 1:
            raise WorkloadError("regs_per_thread must be >= 1")
        if self.shared_mem_per_block < 0:
            raise WorkloadError("shared_mem_per_block must be >= 0")

    def signature(self) -> int:
        """Stable 63-bit hash of the spec's behavioural identity.

        Seeds everything stochastic about the kernel (block-duration
        variation, the simulator's per-kernel modeling bias) so results
        are reproducible and independent of launch order or GPU.

        Memoized per instance: million-launch streams group launches by
        signature, and a sha256 per launch would dominate that loop.
        """
        cached = getattr(self, "_signature_memo", None)
        if cached is not None:
            return cached
        payload = "|".join(
            str(part)
            for part in (
                self.name,
                self.threads_per_block,
                self.regs_per_thread,
                self.shared_mem_per_block,
                round(self.divergence_efficiency, 6),
                round(self.sectors_per_global_access, 6),
                round(self.l2_locality, 6),
                round(self.working_set_bytes, 3),
                round(self.duration_cv, 6),
                round(self.phase_drift, 6),
                round(self.cold_start_factor, 6),
                self.uses_tensor_cores,
                round(self.mix.per_thread_total, 6),
                round(self.mix.memory_fraction, 9),
            )
        )
        digest = hashlib.sha256(payload.encode("utf-8")).digest()
        value = int.from_bytes(digest[:8], "little") >> 1
        # Frozen dataclass: route the memo write around __setattr__.
        object.__setattr__(self, "_signature_memo", value)
        return value

    def with_mix(self, mix: InstructionMix) -> "KernelSpec":
        """A copy of this spec with a different instruction mix."""
        return replace(self, mix=mix)


@dataclass(frozen=True)
class KernelLaunch:
    """One dynamic kernel instance: a spec plus a concrete grid.

    Attributes
    ----------
    spec:
        The static kernel description.
    grid_blocks:
        Number of thread blocks in the launch.
    launch_id:
        Chronological position within the application (0-based); PKS
        selects the *first chronological* kernel of each group, so this
        ordering is semantically load-bearing.
    nvtx:
        Optional PyProf-style annotations (layer name, tensor dims) used
        by the lightweight profiler on MLPerf workloads.
    """

    spec: KernelSpec
    grid_blocks: int
    launch_id: int
    nvtx: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.grid_blocks < 1:
            raise WorkloadError("grid_blocks must be >= 1")
        if self.launch_id < 0:
            raise WorkloadError("launch_id must be >= 0")

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.spec.threads_per_block

    @property
    def total_warps(self) -> float:
        return self.total_threads / 32.0

    @property
    def thread_instructions(self) -> float:
        """Total dynamic thread-level instructions in the launch."""
        return self.total_threads * self.spec.mix.per_thread_total

    @property
    def warp_instructions(self) -> float:
        """Total issued warp-level instructions, accounting for divergence.

        With divergence efficiency ``e``, each issued warp instruction
        retires ``32 * e`` thread-level instructions on average.
        """
        return self.thread_instructions / (32.0 * self.spec.divergence_efficiency)
