"""Parametric GPU architecture configurations.

Stands in for the three silicon platforms of the paper's evaluation — a
Volta V100, a Turing RTX 2060 and an Ampere RTX 3070 — plus the
MPS-style half-SM V100 used in the Figure-10 case study.  Only the
parameters the performance model consumes are represented; they are taken
from the public datasheets of the respective cards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = [
    "ALL_GPUS",
    "AMPERE_A100",
    "AMPERE_RTX3070",
    "GENERATIONS",
    "GPUConfig",
    "TURING_RTX2060",
    "VOLTA_V100",
    "get_gpu",
    "volta_v100_half_sms",
]


@dataclass(frozen=True)
class GPUConfig:
    """Microarchitectural parameters of one GPU.

    Attributes
    ----------
    name / generation:
        Human-readable identifiers ("V100" / "volta").
    num_sms:
        Streaming multiprocessor count.
    max_threads_per_sm / max_blocks_per_sm:
        Occupancy limits per SM.
    registers_per_sm / shared_mem_per_sm:
        Register-file entries and shared-memory bytes per SM.
    warp_size:
        Threads per warp (32 on all Nvidia parts).
    issue_rate_per_sm:
        Peak warp instructions issued per SM per cycle.
    tensor_speedup:
        Throughput multiplier applied to tensor-core warp instructions.
    core_clock_ghz:
        SM clock used to convert cycles to wall-clock seconds.
    l2_size_bytes:
        Last-level cache capacity.
    dram_bandwidth_gbps:
        Peak DRAM bandwidth in GB/s.
    dram_capacity_gb:
        Device memory size; workloads whose footprint exceeds it cannot
        run on the card (MLPerf does not fit on the RTX 2060).
    sim_cycles_per_second:
        Rate at which the cycle-level simulator retires simulated cycles,
        used to project simulation wall-clock time (Accel-Sim-calibrated).
    """

    name: str
    generation: str
    num_sms: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    registers_per_sm: int
    shared_mem_per_sm: int
    warp_size: int
    issue_rate_per_sm: float
    tensor_speedup: float
    core_clock_ghz: float
    l2_size_bytes: int
    dram_bandwidth_gbps: float
    dram_capacity_gb: float
    sim_cycles_per_second: float

    def __post_init__(self) -> None:
        # NaN fails every comparison, so the range checks below would pass
        # vacuously on a poisoned config; reject non-finite floats first.
        for field_name in (
            "issue_rate_per_sm",
            "tensor_speedup",
            "core_clock_ghz",
            "dram_bandwidth_gbps",
            "dram_capacity_gb",
            "sim_cycles_per_second",
        ):
            value = getattr(self, field_name)
            if not math.isfinite(value):
                raise ConfigurationError(f"{field_name} must be finite, got {value!r}")
        if self.num_sms < 1:
            raise ConfigurationError("num_sms must be >= 1")
        if self.warp_size < 1:
            raise ConfigurationError("warp_size must be >= 1")
        if self.issue_rate_per_sm <= 0:
            raise ConfigurationError("issue_rate_per_sm must be positive")
        if self.dram_bandwidth_gbps <= 0:
            raise ConfigurationError("dram_bandwidth_gbps must be positive")
        if self.sim_cycles_per_second <= 0:
            raise ConfigurationError("sim_cycles_per_second must be positive")

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Peak DRAM bytes deliverable per core-clock cycle."""
        return self.dram_bandwidth_gbps / self.core_clock_ghz

    @property
    def peak_ipc(self) -> float:
        """Peak GPU-wide warp instructions per cycle."""
        return self.num_sms * self.issue_rate_per_sm

    def cycles_to_seconds(self, cycles: float) -> float:
        """Wall-clock seconds the given cycle count takes on silicon."""
        return cycles / (self.core_clock_ghz * 1e9)

    def cycles_to_sim_seconds(self, cycles: float) -> float:
        """Wall-clock seconds the given cycle count takes to *simulate*."""
        return cycles / self.sim_cycles_per_second

    def with_sms(self, num_sms: int) -> "GPUConfig":
        """A copy of this config with a different SM count (MPS partition)."""
        if num_sms < 1:
            raise ConfigurationError("num_sms must be >= 1")
        return replace(
            self,
            name=f"{self.name}-{num_sms}sm",
            num_sms=num_sms,
        )


# Accel-Sim retires on the order of tens of thousands of warp instructions
# per second; at the ~hundreds-of-IPC rates of these workloads that is a
# few tens of simulated cycles per wall-clock second.  This single constant
# reproduces the ms->hours and seconds->centuries magnitudes of Figure 1.
_ACCEL_SIM_RATE = 25.0

VOLTA_V100 = GPUConfig(
    name="V100",
    generation="volta",
    num_sms=80,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65_536,
    shared_mem_per_sm=96 * 1024,
    warp_size=32,
    issue_rate_per_sm=4.0,
    tensor_speedup=8.0,
    core_clock_ghz=1.455,
    l2_size_bytes=6 * 1024 * 1024,
    dram_bandwidth_gbps=900.0,
    dram_capacity_gb=32.0,
    sim_cycles_per_second=_ACCEL_SIM_RATE,
)

TURING_RTX2060 = GPUConfig(
    name="RTX2060",
    generation="turing",
    num_sms=30,
    max_threads_per_sm=1024,
    max_blocks_per_sm=16,
    registers_per_sm=65_536,
    shared_mem_per_sm=64 * 1024,
    warp_size=32,
    issue_rate_per_sm=4.0,
    tensor_speedup=8.0,
    core_clock_ghz=1.680,
    l2_size_bytes=3 * 1024 * 1024,
    dram_bandwidth_gbps=336.0,
    dram_capacity_gb=6.0,
    sim_cycles_per_second=_ACCEL_SIM_RATE,
)

AMPERE_RTX3070 = GPUConfig(
    name="RTX3070",
    generation="ampere",
    num_sms=46,
    max_threads_per_sm=1536,
    max_blocks_per_sm=16,
    registers_per_sm=65_536,
    shared_mem_per_sm=100 * 1024,
    warp_size=32,
    issue_rate_per_sm=4.0,
    tensor_speedup=10.0,
    core_clock_ghz=1.725,
    l2_size_bytes=4 * 1024 * 1024,
    dram_bandwidth_gbps=448.0,
    dram_capacity_gb=8.0,
    sim_cycles_per_second=_ACCEL_SIM_RATE,
)

# Extension beyond the paper's three cards: the datacenter Ampere part,
# for users projecting selections onto an A100-class machine.
AMPERE_A100 = GPUConfig(
    name="A100",
    generation="ampere",
    num_sms=108,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65_536,
    shared_mem_per_sm=164 * 1024,
    warp_size=32,
    issue_rate_per_sm=4.0,
    tensor_speedup=16.0,
    core_clock_ghz=1.410,
    l2_size_bytes=40 * 1024 * 1024,
    dram_bandwidth_gbps=1_555.0,
    dram_capacity_gb=40.0,
    sim_cycles_per_second=_ACCEL_SIM_RATE,
)

GENERATIONS: dict[str, GPUConfig] = {
    "volta": VOLTA_V100,
    "turing": TURING_RTX2060,
    "ampere": AMPERE_RTX3070,
}

#: Every known config, including extensions not in the paper's evaluation.
ALL_GPUS: tuple[GPUConfig, ...] = (
    VOLTA_V100,
    TURING_RTX2060,
    AMPERE_RTX3070,
    AMPERE_A100,
)


def volta_v100_half_sms() -> GPUConfig:
    """The Figure-10 configuration: a V100 restricted to 40 of 80 SMs."""
    return VOLTA_V100.with_sms(VOLTA_V100.num_sms // 2)


def get_gpu(identifier: str) -> GPUConfig:
    """Look up a GPU by generation ("volta") or by name ("V100")."""
    key = identifier.lower()
    if key in GENERATIONS:
        return GENERATIONS[key]
    for config in ALL_GPUS:
        if config.name.lower() == key:
            return config
    raise ConfigurationError(f"unknown GPU identifier: {identifier!r}")
