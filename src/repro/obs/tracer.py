"""Structured tracing and run metrics.

A deliberately tiny, dependency-free subsystem: nestable spans backed by
the monotonic clock, named counters, and an enabled flag that keeps the
disabled-mode cost to a single attribute check per call site.  The active
tracer is a module-level singleton so hot paths can do

    from repro.obs import obs_count, obs_span

    with obs_span("pks.cluster", kernels=len(profiles)):
        ...
    obs_count("cache.hits")

without threading a tracer object through every constructor.  Worker
processes capture into an isolated tracer (``capture_tracer``) and ship an
``ObsSnapshot`` back to the parent, which merges it into its own timeline.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Tuple

__all__ = [
    "ObsSnapshot",
    "SpanRecord",
    "Tracer",
    "capture_tracer",
    "disable",
    "enable",
    "get_tracer",
    "now_us",
    "obs_count",
    "obs_span",
    "reset",
    "set_tracer",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: a named interval on the monotonic timeline."""

    name: str
    start_us: float
    duration_us: float
    pid: int
    tid: int
    args: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ObsSnapshot:
    """Picklable capture of a tracer's state, for shipping across processes."""

    events: Tuple[SpanRecord, ...]
    counters: Mapping[str, float]

    def __bool__(self) -> bool:
        return bool(self.events) or bool(self.counters)


def _now_us() -> float:
    """Monotonic timestamp in microseconds.

    ``perf_counter_ns`` is CLOCK_MONOTONIC-backed on Linux, so timestamps
    taken in forked workers share the parent's timebase and merge into one
    coherent Chrome-trace timeline.
    """
    return time.perf_counter_ns() / 1_000.0


def now_us() -> float:
    """The tracer's microsecond clock, for callers measuring their own
    intervals to feed :meth:`Tracer.record_span`."""
    return _now_us()


class _NullSpan:
    """The span handed out while tracing is disabled: every method a no-op.

    A single cached instance keeps the disabled path allocation-free.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


class _Span:
    """A live span; records itself on the owning tracer at ``__exit__``.

    Spans are recorded even when the body raises, so a trace of a failed
    run still shows where the time went.
    """

    __slots__ = ("_tracer", "name", "args", "_start")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = _now_us()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        end = _now_us()
        self._tracer._record(
            SpanRecord(
                name=self.name,
                start_us=self._start,
                duration_us=end - self._start,
                pid=os.getpid(),
                tid=threading.get_ident(),
                args=self.args,
            )
        )
        return False

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span while it is open."""
        self.args.update(attrs)


class Tracer:
    """Collects spans and counters; near-free when ``enabled`` is False."""

    __slots__ = ("enabled", "events", "counters", "records", "_lock")

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.events: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        #: total spans + counter updates recorded; the benchmark overhead
        #: model multiplies this by the measured disabled per-call cost.
        self.records = 0
        self._lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span; returns a context manager (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs)

    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to the named counter (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + value
            self.records += 1

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self.events.append(record)
            self.records += 1

    def record_span(
        self,
        name: str,
        *,
        start_us: float,
        duration_us: float,
        **attrs: Any,
    ) -> None:
        """Record an already-measured interval as a completed span.

        For lifecycles that cannot be expressed as a ``with`` block — a
        job that is submitted on one thread and completed on another —
        the owner measures the interval itself (``start_us`` on the
        :func:`time.perf_counter_ns`-derived microsecond clock) and
        records it here.  No-op while disabled, like every recorder.
        """
        if not self.enabled:
            return
        self._record(
            SpanRecord(
                name=name,
                start_us=start_us,
                duration_us=duration_us,
                pid=os.getpid(),
                tid=threading.get_ident(),
                args=attrs,
            )
        )

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> ObsSnapshot:
        """Freeze the current state into a picklable snapshot."""
        with self._lock:
            return ObsSnapshot(events=tuple(self.events), counters=dict(self.counters))

    def merge(self, snapshot: ObsSnapshot) -> None:
        """Fold a shipped snapshot (e.g. from a pool worker) into this tracer."""
        if not snapshot:
            return
        with self._lock:
            self.events.extend(snapshot.events)
            for name, value in snapshot.counters.items():
                self.counters[name] = self.counters.get(name, 0.0) + value
            self.records += len(snapshot.events) + len(snapshot.counters)

    def span_stats(self) -> Dict[str, Dict[str, float]]:
        """Aggregate events by span name: count / total / mean microseconds."""
        stats: Dict[str, Dict[str, float]] = {}
        with self._lock:
            events = list(self.events)
        for event in events:
            entry = stats.setdefault(event.name, {"count": 0.0, "total_us": 0.0})
            entry["count"] += 1.0
            entry["total_us"] += event.duration_us
        for entry in stats.values():
            entry["mean_us"] = entry["total_us"] / entry["count"]
        return stats

    def clear(self) -> None:
        with self._lock:
            self.events.clear()
            self.counters.clear()
            self.records = 0


# -- module-level singleton ------------------------------------------------

_ACTIVE = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The currently active tracer."""
    return _ACTIVE


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the active tracer and return it."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def enable() -> Tracer:
    """Turn tracing on (keeps any already-recorded state)."""
    _ACTIVE.enabled = True
    return _ACTIVE


def disable() -> Tracer:
    """Turn tracing off; recorded state stays readable."""
    _ACTIVE.enabled = False
    return _ACTIVE


def reset() -> Tracer:
    """Replace the active tracer with a fresh disabled one."""
    return set_tracer(Tracer(enabled=False))


def obs_span(name: str, **attrs: Any):
    """Open a span on the active tracer (cached no-op when disabled)."""
    tracer = _ACTIVE
    if not tracer.enabled:
        return NULL_SPAN
    return _Span(tracer, name, attrs)


def obs_count(name: str, value: float = 1.0) -> None:
    """Bump a counter on the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer.enabled:
        tracer.count(name, value)


@contextmanager
def capture_tracer() -> Iterator[Tracer]:
    """Route all recording into a fresh enabled tracer for the duration.

    Used by pool workers to capture a task's spans/counters in isolation so
    the snapshot shipped back to the parent contains exactly that task's
    telemetry, regardless of what the inherited (forked) tracer held.
    """
    global _ACTIVE
    previous = _ACTIVE
    tracer = Tracer(enabled=True)
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = previous
