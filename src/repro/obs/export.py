"""Exporters for the tracing subsystem.

Three consumers, three formats:

* ``summary_table`` — a human-readable `pka stats`-style table printed by
  the CLI under ``--trace``;
* ``run_summary`` / ``write_run_summary`` — a JSON document written next to
  the Chrome trace (and mirrored into the sweep manifest) whose counter
  totals reconcile with the manifest;
* ``chrome_trace`` / ``write_chrome_trace`` — a Chrome-trace (Perfetto /
  ``chrome://tracing``) event file for ``--trace-out``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.tracer import Tracer

__all__ = [
    "chrome_trace",
    "run_summary",
    "run_summary_path",
    "span_percentiles",
    "summary_table",
    "write_chrome_trace",
    "write_run_summary",
]

RUN_SUMMARY_VERSION = 1


def _format_us(us: float) -> str:
    """Render a microsecond duration with a readable unit."""
    if us >= 1_000_000.0:
        return f"{us / 1_000_000.0:.2f} s"
    if us >= 1_000.0:
        return f"{us / 1_000.0:.2f} ms"
    return f"{us:.0f} us"


def summary_table(tracer: Tracer) -> str:
    """Human-readable summary of spans and counters, widest column wins."""
    lines: List[str] = []
    stats = tracer.span_stats()
    if stats:
        name_width = max(len("span"), *(len(name) for name in stats))
        lines.append(
            f"{'span':<{name_width}}  {'count':>8}  {'total':>10}  {'mean':>10}"
        )
        for name in sorted(stats, key=lambda n: -stats[n]["total_us"]):
            entry = stats[name]
            lines.append(
                f"{name:<{name_width}}  {int(entry['count']):>8}  "
                f"{_format_us(entry['total_us']):>10}  {_format_us(entry['mean_us']):>10}"
            )
    if tracer.counters:
        if lines:
            lines.append("")
        name_width = max(len("counter"), *(len(name) for name in tracer.counters))
        lines.append(f"{'counter':<{name_width}}  {'value':>14}")
        for name in sorted(tracer.counters):
            value = tracer.counters[name]
            rendered = f"{int(value)}" if value == int(value) else f"{value:.3f}"
            lines.append(f"{name:<{name_width}}  {rendered:>14}")
    if not lines:
        return "(no spans or counters recorded)"
    return "\n".join(lines)


def run_summary(
    tracer: Tracer, manifest: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Build the JSON-ready run summary document.

    When the sweep manifest is supplied its identifying fields are embedded
    so the counter totals can be reconciled against the manifest without
    joining files by hand.
    """
    stats = tracer.span_stats()
    document: Dict[str, Any] = {
        "version": RUN_SUMMARY_VERSION,
        "counters": dict(sorted(tracer.counters.items())),
        "spans": {
            name: {
                "count": int(entry["count"]),
                "total_seconds": entry["total_us"] / 1e6,
                "mean_seconds": entry["mean_us"] / 1e6,
            }
            for name, entry in sorted(stats.items())
        },
    }
    if manifest is not None:
        document["sweep"] = {
            "sweep_id": manifest.get("sweep_id"),
            "total_cells": manifest.get("total_cells"),
            "completed": len(manifest.get("completed", [])),
            "quarantined": len(manifest.get("quarantined", [])),
        }
    return document


def span_percentiles(
    tracer: Tracer,
    name: str,
    percentiles: tuple = (50.0, 95.0),
    where: Optional[Any] = None,
) -> Dict[str, Any]:
    """Latency percentiles of one span name, from the recorded events.

    ``where`` optionally filters on each span's args mapping (a callable
    ``args -> bool``), so one span name can be sliced by attribute —
    e.g. service jobs by result source.  Percentiles use the
    nearest-rank method over millisecond durations; an empty selection
    yields ``count == 0`` and ``None`` percentiles so callers can emit
    the document unconditionally.
    """
    with tracer._lock:
        events = list(tracer.events)
    durations_ms = sorted(
        record.duration_us / 1000.0
        for record in events
        if record.name == name and (where is None or where(record.args))
    )
    document: Dict[str, Any] = {"count": len(durations_ms)}
    for percentile in percentiles:
        label = f"p{percentile:g}_ms"
        if not durations_ms:
            document[label] = None
            continue
        rank = max(
            0, min(len(durations_ms) - 1, int(-(-percentile * len(durations_ms) // 100)) - 1)
        )
        document[label] = durations_ms[rank]
    return document


def chrome_trace(tracer: Tracer) -> Dict[str, Any]:
    """Build a Chrome-trace ("Trace Event Format") document.

    Spans become complete ("X") events; counters travel in ``otherData``
    so viewers that ignore it still render the timeline.
    """
    events: List[Dict[str, Any]] = []
    for record in tracer.events:
        event: Dict[str, Any] = {
            "name": record.name,
            "cat": "pka",
            "ph": "X",
            "ts": record.start_us,
            "dur": record.duration_us,
            "pid": record.pid,
            "tid": record.tid,
        }
        if record.args:
            event["args"] = dict(record.args)
        events.append(event)
    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"counters": dict(sorted(tracer.counters.items()))},
    }


def run_summary_path(trace_out: Union[str, Path]) -> Path:
    """Where the run summary lands for a given ``--trace-out`` path.

    ``trace.json`` -> ``trace.summary.json`` in the same directory.
    """
    path = Path(trace_out)
    return path.with_name(f"{path.stem}.summary.json")


def write_chrome_trace(path: Union[str, Path], tracer: Tracer) -> Path:
    """Serialize the Chrome trace to ``path``; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(chrome_trace(tracer), indent=2), encoding="utf-8")
    return target


def write_run_summary(
    path: Union[str, Path],
    tracer: Tracer,
    manifest: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Serialize the run summary to ``path``; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(run_summary(tracer, manifest=manifest), indent=2), encoding="utf-8"
    )
    return target
