"""repro.obs: lightweight structured tracing and run metrics.

Spans + counters with near-zero overhead when disabled, an isolated
capture mode for pool workers, and exporters for the CLI (`--trace`
summary table, `--trace-out` Chrome-trace + JSON run summary).
"""

from repro.obs.export import (
    chrome_trace,
    run_summary,
    run_summary_path,
    span_percentiles,
    summary_table,
    write_chrome_trace,
    write_run_summary,
)
from repro.obs.tracer import (
    NULL_SPAN,
    ObsSnapshot,
    SpanRecord,
    Tracer,
    capture_tracer,
    disable,
    enable,
    get_tracer,
    now_us,
    obs_count,
    obs_span,
    reset,
    set_tracer,
)

__all__ = [
    "NULL_SPAN",
    "ObsSnapshot",
    "SpanRecord",
    "Tracer",
    "capture_tracer",
    "chrome_trace",
    "disable",
    "enable",
    "get_tracer",
    "now_us",
    "obs_count",
    "obs_span",
    "reset",
    "run_summary",
    "run_summary_path",
    "set_tracer",
    "span_percentiles",
    "summary_table",
    "write_chrome_trace",
    "write_run_summary",
]
