"""Mini-batch k-means: PKS clustering at millions of kernels.

The paper leans on k-means precisely because it "can scale to the
millions of kernels in our large workloads, where hierarchical clustering
demands an impractical amount of memory and runtime".  Lloyd's algorithm
is already linear, but at 5.3 million kernels its full passes add up;
the standard mini-batch variant (Sculley, 2010) converges on a sampled
stream with per-centre learning rates and is the practical choice at that
scale.  API-compatible with :class:`repro.mlkit.kmeans.KMeans`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.mlkit._checks import require_finite
from repro.mlkit.kmeans import _nearest_center

__all__ = ["MiniBatchKMeans"]


class MiniBatchKMeans:
    """Mini-batch k-means with k-means++ seeding on a subsample.

    Parameters
    ----------
    n_clusters:
        Number of groups ``k``.
    batch_size:
        Points per mini-batch update.
    n_batches:
        Update steps; defaults to enough steps to touch every point in
        expectation (capped at 400).
    n_init:
        Independent restarts; the run with the lowest subsampled inertia
        wins (mini-batch runs are cheap enough to afford a few).
    seed:
        Sampling/init RNG seed.
    clamp_k:
        When true, fitting fewer samples than clusters clamps the
        effective cluster count to ``n_samples`` (in ``n_clusters_``)
        instead of raising.
    """

    def __init__(
        self,
        n_clusters: int,
        batch_size: int = 1_024,
        n_batches: int | None = None,
        n_init: int = 3,
        seed: int = 0,
        clamp_k: bool = False,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if n_batches is not None and n_batches < 1:
            raise ValueError("n_batches must be >= 1")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        self.n_clusters = n_clusters
        self.batch_size = batch_size
        self.n_batches = n_batches
        self.n_init = n_init
        self.seed = seed
        self.clamp_k = clamp_k
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.n_clusters_: int = n_clusters

    def fit(self, points: np.ndarray) -> "MiniBatchKMeans":
        points = require_finite(points, "MiniBatchKMeans.fit")
        if points.ndim != 2:
            raise ValueError("expected a 2-D matrix")
        n_samples = points.shape[0]
        if n_samples < 1:
            raise ValueError("MiniBatchKMeans needs at least one sample")
        if n_samples < self.n_clusters:
            if not self.clamp_k:
                raise ValueError(
                    f"n_samples={n_samples} below n_clusters={self.n_clusters}"
                )
            self.n_clusters_ = n_samples
        else:
            self.n_clusters_ = self.n_clusters
        rng = np.random.default_rng(self.seed)
        validation = points[
            rng.integers(0, n_samples, size=min(n_samples, 8_192))
        ]

        best_centers: np.ndarray | None = None
        best_validation = np.inf
        for _ in range(self.n_init):
            centers = self._single_run(points, rng)
            _, distances = _nearest_center(validation, centers)
            score = float(distances.sum())
            if score < best_validation:
                best_validation = score
                best_centers = centers

        assert best_centers is not None
        best_centers, labels, distances = self._reseed_empty_clusters(
            points, best_centers
        )
        self.cluster_centers_ = best_centers
        self.labels_ = labels
        self.inertia_ = float(distances.sum())
        return self

    def _reseed_empty_clusters(
        self, points: np.ndarray, centers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Re-seed centres that captured no points at the farthest point.

        A mini-batch run can leave a centre stranded (it only moves when a
        batch sample lands in its cell), producing fewer effective groups
        than requested; the standard fix — the same one full-batch Lloyd
        uses during iteration — is to move each empty centre to the point
        farthest from its assignment.
        """
        labels, distances = _nearest_center(points, centers)
        for cluster in range(centers.shape[0]):
            if np.any(labels == cluster):
                continue
            centers = centers.copy()
            centers[cluster] = points[int(np.argmax(distances))]
            labels, distances = _nearest_center(points, centers)
        return centers, labels, distances

    def _single_run(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n_samples = points.shape[0]
        # Seed with k-means++ on a subsample (full-data seeding would cost
        # a full pass per centre).
        seed_pool = points[
            rng.choice(
                n_samples,
                size=min(n_samples, 200 * self.n_clusters_),
                replace=False,
            )
        ]
        centers = self._kmeans_plus_plus(seed_pool, rng)
        counts = np.zeros(self.n_clusters_, dtype=np.int64)

        n_batches = self.n_batches
        if n_batches is None:
            n_batches = min(400, max(20, n_samples // self.batch_size + 1))

        for _ in range(n_batches):
            batch = points[rng.integers(0, n_samples, size=self.batch_size)]
            labels, _ = _nearest_center(batch, centers)
            for cluster in range(self.n_clusters_):
                members = batch[labels == cluster]
                if len(members) == 0:
                    continue
                counts[cluster] += len(members)
                # Per-centre learning rate 1/count (Sculley's update).
                rate = len(members) / counts[cluster]
                centers[cluster] += rate * (members.mean(axis=0) - centers[cluster])
        return centers

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        self.fit(points)
        assert self.labels_ is not None
        return self.labels_

    def predict(self, points: np.ndarray) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise NotFittedError("MiniBatchKMeans.predict called before fit")
        points = require_finite(points, "MiniBatchKMeans.predict")
        return _nearest_center(points, self.cluster_centers_)[0]

    def _kmeans_plus_plus(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n_samples = points.shape[0]
        centers = np.empty((self.n_clusters_, points.shape[1]), dtype=np.float64)
        centers[0] = points[int(rng.integers(n_samples))]
        closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
        for index in range(1, self.n_clusters_):
            total = closest_sq.sum()
            if total <= 0.0:
                centers[index:] = centers[0]
                break
            choice = int(rng.choice(n_samples, p=closest_sq / total))
            centers[index] = points[choice]
            np.minimum(
                closest_sq,
                np.sum((points - centers[index]) ** 2, axis=1),
                out=closest_sq,
            )
        return centers
