"""Gaussian Naive Bayes classifier.

One of the three classifiers PKA uses in its two-level profiling phase to
map lightly-profiled kernels (name hash, grid/block dimensions, tensor
dims) onto the groups discovered by detailed profiling.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError

__all__ = ["GaussianNB"]


class GaussianNB:
    """Per-class independent Gaussian likelihoods with smoothed variances.

    Parameters
    ----------
    var_smoothing:
        Fraction of the largest feature variance added to every per-class
        variance, preventing degenerate zero-variance likelihoods.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        if var_smoothing < 0:
            raise ValueError("var_smoothing must be >= 0")
        self.var_smoothing = var_smoothing
        self.classes_: np.ndarray | None = None
        self.theta_: np.ndarray | None = None  # per-class feature means
        self.var_: np.ndarray | None = None  # per-class feature variances
        self.class_log_prior_: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "GaussianNB":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        if labels.shape[0] != features.shape[0]:
            raise ValueError("features and labels disagree on sample count")

        self.classes_ = np.unique(labels)
        n_classes = len(self.classes_)
        n_features = features.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        priors = np.zeros(n_classes)
        epsilon = self.var_smoothing * max(float(features.var(axis=0).max()), 1e-12)
        for idx, cls in enumerate(self.classes_):
            members = features[labels == cls]
            self.theta_[idx] = members.mean(axis=0)
            self.var_[idx] = members.var(axis=0) + epsilon
            priors[idx] = len(members) / features.shape[0]
        self.class_log_prior_ = np.log(priors)
        return self

    def _joint_log_likelihood(self, features: np.ndarray) -> np.ndarray:
        if self.theta_ is None or self.var_ is None or self.class_log_prior_ is None:
            raise NotFittedError("GaussianNB used before fit")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.theta_.shape[1]:
            raise ValueError("feature matrix shape does not match the fitted model")
        # log N(x; mu, var) summed over independent features, per class.
        log_lik = np.empty((features.shape[0], self.theta_.shape[0]))
        for idx in range(self.theta_.shape[0]):
            mean = self.theta_[idx]
            var = self.var_[idx]
            log_lik[:, idx] = -0.5 * np.sum(
                np.log(2.0 * np.pi * var) + (features - mean) ** 2 / var, axis=1
            )
        return log_lik + self.class_log_prior_[None, :]

    def predict(self, features: np.ndarray) -> np.ndarray:
        joint = self._joint_log_likelihood(features)
        assert self.classes_ is not None  # guaranteed by _joint_log_likelihood
        return self.classes_[np.argmax(joint, axis=1)]

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        joint = self._joint_log_likelihood(features)
        joint -= joint.max(axis=1, keepdims=True)
        probs = np.exp(joint)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean accuracy on the given data."""
        predictions = self.predict(features)
        return float(np.mean(predictions == np.asarray(labels)))
