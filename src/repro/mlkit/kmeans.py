"""Lloyd's k-means with k-means++ seeding.

K-means is the clustering workhorse of Principal Kernel Selection: it
scales to the millions of kernel instances found in MLPerf workloads where
hierarchical clustering (used by TBPoint) runs out of memory, and its
single ``k`` parameter is directly interpretable as "number of kernel
groups".
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.mlkit._checks import require_finite

__all__ = ["KMeans"]


class KMeans:
    """K-means clustering with deterministic, seeded k-means++ init.

    Parameters
    ----------
    n_clusters:
        Number of groups ``k``.
    n_init:
        Independent restarts; the run with the lowest inertia wins.
    max_iter:
        Lloyd iteration budget per restart.
    tol:
        Relative centroid-movement tolerance for convergence.
    seed:
        Seed for the restart RNG; fixed by default so PKS is reproducible.
    clamp_k:
        When true, ``fit`` on fewer samples than clusters clamps the
        effective cluster count to ``n_samples`` (recorded in
        ``n_clusters_``) instead of raising — the degenerate-data-safe
        behaviour PKS wants for single-kernel apps.
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 4,
        max_iter: int = 300,
        tol: float = 1e-6,
        seed: int = 0,
        clamp_k: bool = False,
    ) -> None:
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if n_init < 1:
            raise ValueError("n_init must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.clamp_k = clamp_k
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float | None = None
        self.n_iter_: int = 0
        self.n_clusters_: int = n_clusters

    def fit(self, points: np.ndarray) -> "KMeans":
        points = require_finite(points, "KMeans.fit")
        if points.ndim != 2:
            raise ValueError("KMeans expects a 2-D matrix")
        n_samples = points.shape[0]
        if n_samples < 1:
            raise ValueError("KMeans needs at least one sample")
        if n_samples < self.n_clusters:
            if not self.clamp_k:
                raise ValueError(
                    f"n_samples={n_samples} is smaller than n_clusters={self.n_clusters}"
                )
            self.n_clusters_ = n_samples
        else:
            self.n_clusters_ = self.n_clusters

        rng = np.random.default_rng(self.seed)
        best_inertia = np.inf
        for _ in range(self.n_init):
            centers, labels, inertia, n_iter = self._single_run(points, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                self.cluster_centers_ = centers
                self.labels_ = labels
                self.inertia_ = float(inertia)
                self.n_iter_ = n_iter
        return self

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        self.fit(points)
        assert self.labels_ is not None
        return self.labels_

    def predict(self, points: np.ndarray) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans.predict called before fit")
        points = require_finite(points, "KMeans.predict")
        return _nearest_center(points, self.cluster_centers_)[0]

    def _single_run(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        centers = self._kmeans_plus_plus(points, rng)
        labels = np.zeros(points.shape[0], dtype=np.intp)
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            labels, distances = _nearest_center(points, centers)
            new_centers = centers.copy()
            for cluster in range(self.n_clusters_):
                members = points[labels == cluster]
                if len(members) > 0:
                    new_centers[cluster] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the point furthest from
                    # its assigned centre, the standard fix for collapse.
                    new_centers[cluster] = points[int(np.argmax(distances))]
            shift = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            scale = float(np.linalg.norm(centers)) or 1.0
            if shift / scale <= self.tol:
                break
        labels, distances = _nearest_center(points, centers)
        inertia = float(np.sum(distances))
        return centers, labels, inertia, n_iter

    def _kmeans_plus_plus(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n_samples = points.shape[0]
        centers = np.empty((self.n_clusters_, points.shape[1]), dtype=np.float64)
        first = int(rng.integers(n_samples))
        centers[0] = points[first]
        closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
        for i in range(1, self.n_clusters_):
            total = closest_sq.sum()
            if total <= 0.0:
                # All remaining points coincide with an existing centre.
                centers[i:] = centers[0]
                break
            probabilities = closest_sq / total
            choice = int(rng.choice(n_samples, p=probabilities))
            centers[i] = points[choice]
            new_sq = np.sum((points - centers[i]) ** 2, axis=1)
            np.minimum(closest_sq, new_sq, out=closest_sq)
        return centers


def _nearest_center(
    points: np.ndarray, centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Return (labels, squared distance to the nearest centre) per point.

    Chunked so a million-kernel feature matrix never materializes the full
    n_samples x n_clusters distance matrix at once when k is large.
    """
    n_samples = points.shape[0]
    labels = np.empty(n_samples, dtype=np.intp)
    best_sq = np.empty(n_samples, dtype=np.float64)
    chunk = max(1, min(n_samples, 262_144 // max(1, centers.shape[0])))
    centers_sq = np.sum(centers**2, axis=1)
    for start in range(0, n_samples, chunk):
        stop = min(start + chunk, n_samples)
        block = points[start:stop]
        # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2
        cross = block @ centers.T
        dist_sq = np.sum(block**2, axis=1)[:, None] - 2.0 * cross + centers_sq[None, :]
        np.maximum(dist_sq, 0.0, out=dist_sq)
        labels[start:stop] = np.argmin(dist_sq, axis=1)
        best_sq[start:stop] = dist_sq[np.arange(stop - start), labels[start:stop]]
    return labels, best_sq
