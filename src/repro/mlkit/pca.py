"""Principal Component Analysis via singular value decomposition.

PKS uses PCA to collapse the 12 microarchitecture-agnostic counters of
Table 2 into a handful of dimensions before k-means clustering, avoiding
the curse of dimensionality and making the grouping explainable (the
principal dimensions carry the most variance).
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.mlkit._checks import require_finite

__all__ = ["PCA"]


class PCA:
    """Linear dimensionality reduction keeping the top principal components.

    Parameters
    ----------
    n_components:
        Either an integer number of components to keep, or a float in
        (0, 1) interpreted as the minimum fraction of total variance the
        retained components must explain (the paper keeps "a more
        manageable number" of dimensions; we default to 95% variance).
    """

    def __init__(self, n_components: int | float = 0.95) -> None:
        if isinstance(n_components, float):
            if not 0.0 < n_components <= 1.0:
                raise ValueError("fractional n_components must be in (0, 1]")
        elif isinstance(n_components, int):
            if n_components < 1:
                raise ValueError("integer n_components must be >= 1")
        else:
            raise TypeError("n_components must be an int or a float")
        self.n_components = n_components
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None
        self.mean_: np.ndarray | None = None

    @property
    def n_components_(self) -> int:
        """Number of components actually retained after fitting."""
        if self.components_ is None:
            raise NotFittedError("PCA.n_components_ read before fit")
        return self.components_.shape[0]

    def fit(self, features: np.ndarray) -> "PCA":
        features = require_finite(features, "PCA.fit")
        if features.ndim != 2:
            raise ValueError("PCA expects a 2-D matrix")
        n_samples, n_features = features.shape
        if n_samples < 1:
            raise ValueError("PCA requires at least one sample")

        self.mean_ = features.mean(axis=0)
        centered = features - self.mean_
        # Economy SVD: centered = U @ diag(S) @ Vt; rows of Vt are components.
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        denom = max(n_samples - 1, 1)
        explained = (singular_values**2) / denom
        total = explained.sum()
        ratio = explained / total if total > 0 else np.zeros_like(explained)

        n_keep = self._resolve_component_count(ratio, n_features)
        self.components_ = vt[:n_keep]
        self.explained_variance_ = explained[:n_keep]
        self.explained_variance_ratio_ = ratio[:n_keep]
        return self

    def _resolve_component_count(self, ratio: np.ndarray, n_features: int) -> int:
        if isinstance(self.n_components, int):
            return min(self.n_components, len(ratio))
        if ratio.sum() == 0.0:
            # Degenerate all-identical input: keep a single component.
            return 1
        cumulative = np.cumsum(ratio)
        n_keep = int(np.searchsorted(cumulative, self.n_components) + 1)
        return min(max(n_keep, 1), n_features)

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.components_ is None or self.mean_ is None:
            raise NotFittedError("PCA.transform called before fit")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.mean_.shape[0]:
            raise ValueError("feature matrix shape does not match the fitted PCA")
        return (features - self.mean_) @ self.components_.T

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def inverse_transform(self, reduced: np.ndarray) -> np.ndarray:
        """Map reduced coordinates back into the original feature space."""
        if self.components_ is None or self.mean_ is None:
            raise NotFittedError("PCA.inverse_transform called before fit")
        reduced = np.asarray(reduced, dtype=np.float64)
        return reduced @ self.components_ + self.mean_
