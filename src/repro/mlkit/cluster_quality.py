"""Internal cluster-quality indices: silhouette and Davies-Bouldin.

PKS chooses K by projected-runtime error, which needs the profiled cycle
counts.  A natural extension (and a useful diagnostic) is choosing K from
the feature geometry alone — these two classic indices support that
``k_policy="silhouette"`` extension in :mod:`repro.core.pks` and the
corresponding ablation benchmark.
"""

from __future__ import annotations

import numpy as np

__all__ = ["silhouette_score", "davies_bouldin_score"]


def _validate(points: np.ndarray, labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.ndim != 2:
        raise ValueError("expected a 2-D point matrix")
    if labels.shape[0] != points.shape[0]:
        raise ValueError("points and labels disagree on sample count")
    return points, labels


def silhouette_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all points, in [-1, 1].

    For each point: ``(b - a) / max(a, b)`` where ``a`` is the mean
    distance to its own cluster and ``b`` the smallest mean distance to
    any other cluster.  Single-cluster labelings score 0 by convention
    (there is no "other" cluster to contrast against).
    """
    points, labels = _validate(points, labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        return 0.0

    # Pairwise distances once; clusters index into it.
    sq_norms = np.sum(points**2, axis=1)
    distances = np.sqrt(
        np.maximum(
            sq_norms[:, None] - 2.0 * (points @ points.T) + sq_norms[None, :],
            0.0,
        )
    )

    members = {label: np.flatnonzero(labels == label) for label in unique}
    scores = np.zeros(points.shape[0])
    for index in range(points.shape[0]):
        own = members[labels[index]]
        if len(own) <= 1:
            scores[index] = 0.0  # singleton convention
            continue
        a = distances[index, own].sum() / (len(own) - 1)
        b = min(
            distances[index, members[other]].mean()
            for other in unique
            if other != labels[index]
        )
        scores[index] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())


def davies_bouldin_score(points: np.ndarray, labels: np.ndarray) -> float:
    """Davies-Bouldin index (lower is better; 0 is ideal).

    Mean over clusters of the worst ratio of within-cluster scatter sums
    to centroid separation.  Single-cluster labelings score 0.
    """
    points, labels = _validate(points, labels)
    unique = np.unique(labels)
    if len(unique) < 2:
        return 0.0

    centroids = np.stack(
        [points[labels == label].mean(axis=0) for label in unique]
    )
    scatters = np.array(
        [
            np.linalg.norm(points[labels == label] - centroid, axis=1).mean()
            for label, centroid in zip(unique, centroids, strict=True)
        ]
    )
    separation = np.sqrt(
        np.maximum(
            np.sum(centroids**2, axis=1)[:, None]
            - 2.0 * (centroids @ centroids.T)
            + np.sum(centroids**2, axis=1)[None, :],
            0.0,
        )
    )
    n = len(unique)
    worst_ratios = np.zeros(n)
    for i in range(n):
        ratios = [
            (scatters[i] + scatters[j]) / separation[i, j]
            for j in range(n)
            if j != i and separation[i, j] > 0
        ]
        worst_ratios[i] = max(ratios) if ratios else 0.0
    return float(worst_ratios.mean())
