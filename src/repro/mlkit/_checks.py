"""Shared input checks for the mlkit estimators.

NaN poisons every distance computation silently (NaN comparisons are all
false, so argmin/argmax return arbitrary indices) and infinities turn
inertia and variance into garbage, so every estimator rejects non-finite
input up front with a named error instead of producing wrong clusters.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NonFiniteInputError

__all__ = ["require_finite"]


def require_finite(points: np.ndarray, estimator: str) -> np.ndarray:
    """Return ``points`` as float64, raising if any entry is NaN/inf."""
    points = np.asarray(points, dtype=np.float64)
    if not np.isfinite(points).all():
        bad = int(np.count_nonzero(~np.isfinite(points)))
        raise NonFiniteInputError(
            f"{estimator} received {bad} non-finite value(s); "
            "sanitize the input (see repro.core.validation) before fitting"
        )
    return points
