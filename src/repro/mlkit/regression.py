"""Linear least-squares regression trained by stochastic gradient descent.

The prediction subsystem's learned surrogate
(:mod:`repro.predict.surrogate`) regresses per-kernel cycle residuals on
the Table-2 counters; in scikit-learn terms that is
``SGDRegressor(loss="squared_error")``, which this module reimplements in
the same minibatch-SGD style as :class:`repro.mlkit.SGDClassifier`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError

__all__ = ["SGDRegressor"]


class SGDRegressor:
    """Linear regressor fit with minibatch SGD and L2 decay.

    Parameters
    ----------
    learning_rate:
        Initial step size; decays as ``lr / (1 + decay * t)``.
    alpha:
        L2 regularization strength.
    epochs:
        Passes over the training set.
    batch_size:
        Minibatch size.
    seed:
        Shuffling RNG seed, fixed for reproducibility.
    """

    def __init__(
        self,
        learning_rate: float = 0.05,
        alpha: float = 1e-4,
        epochs: int = 60,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.learning_rate = learning_rate
        self.alpha = alpha
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.coef_: np.ndarray | None = None  # (n_features,)
        self.intercept_: float | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "SGDRegressor":
        features = np.asarray(features, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        if targets.ndim != 1 or targets.shape[0] != features.shape[0]:
            raise ValueError("features and targets disagree on sample count")
        if not (np.isfinite(features).all() and np.isfinite(targets).all()):
            raise ValueError("features and targets must be finite")

        n_samples, n_features = features.shape
        rng = np.random.default_rng(self.seed)
        self.coef_ = rng.normal(0.0, 0.01, size=n_features)
        # Starting from the target mean makes tiny training sets (a
        # handful of observed kernels) behave like a shrunk mean
        # predictor instead of drifting from zero.
        self.intercept_ = float(targets.mean())

        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, self.batch_size):
                batch = order[start : start + self.batch_size]
                x = features[batch]
                residual = x @ self.coef_ + self.intercept_ - targets[batch]
                grad_w = residual @ x / len(batch) + self.alpha * self.coef_
                grad_b = float(residual.mean())
                lr = self.learning_rate / (1.0 + 0.01 * step)
                self.coef_ -= lr * grad_w
                self.intercept_ -= lr * grad_b
                step += 1
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.coef_ is None or self.intercept_ is None:
            raise NotFittedError("SGDRegressor used before fit")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.coef_.shape[0]:
            raise ValueError("feature matrix shape does not match the fitted model")
        return features @ self.coef_ + self.intercept_

    def score(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination (R^2) on the given data."""
        targets = np.asarray(targets, dtype=np.float64)
        predicted = self.predict(features)
        total = float(((targets - targets.mean()) ** 2).sum())
        if total == 0.0:
            return 1.0 if np.allclose(predicted, targets) else 0.0
        return 1.0 - float(((targets - predicted) ** 2).sum()) / total
