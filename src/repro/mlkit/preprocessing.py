"""Feature preprocessing: standardization and log-compression.

Principal Kernel Selection operates on raw hardware counters whose dynamic
range spans many orders of magnitude (a kernel may execute ten instructions
or ten billion).  The paper's pipeline — like most PCA front-ends — first
log-compresses the counters and then standardizes each column to zero mean
and unit variance so that no single counter dominates the principal
components.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NonFiniteInputError, NotFittedError
from repro.mlkit._checks import require_finite

__all__ = ["StandardScaler", "log_compress"]


def log_compress(features: np.ndarray) -> np.ndarray:
    """Return ``log1p`` of non-negative features, preserving sign for ratios.

    Counter columns are non-negative counts; ``log1p`` maps them onto a
    scale where a 10x difference in count is a constant offset.  Columns
    that already live in [0, 1] (e.g. divergence efficiency) pass through
    ``log1p`` too, which is monotone and nearly linear there, so a single
    uniform transform keeps the pipeline simple.
    """
    features = np.asarray(features, dtype=np.float64)
    if not np.isfinite(features).all():
        raise NonFiniteInputError(
            "log_compress received non-finite counters; sanitize the input "
            "(see repro.core.validation) before preprocessing"
        )
    if np.any(features < 0):
        raise ValueError("feature counters must be non-negative")
    return np.log1p(features)


class StandardScaler:
    """Standardize columns to zero mean and unit variance.

    Mirrors the scikit-learn API (``fit`` / ``transform`` /
    ``fit_transform`` / ``inverse_transform``) so the rest of the code reads
    like the pipeline the paper describes.  Zero-variance columns are left
    centred but unscaled, which keeps constant counters (common in
    single-kernel workloads) from producing NaNs.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = require_finite(_as_2d(features), "StandardScaler.fit")
        self.mean_ = features.mean(axis=0)
        std = features.std(axis=0)
        std[std == 0.0] = 1.0
        self.scale_ = std
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.transform called before fit")
        features = _as_2d(features)
        if features.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {features.shape[1]}"
            )
        return (features - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def inverse_transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler.inverse_transform called before fit")
        features = _as_2d(features)
        return features * self.scale_ + self.mean_


def _as_2d(features: np.ndarray) -> np.ndarray:
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"expected a 2-D feature matrix, got ndim={features.ndim}")
    if features.shape[0] == 0:
        raise ValueError("feature matrix has no rows")
    return features
