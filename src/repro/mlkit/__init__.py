"""A small, numpy-only machine-learning toolkit.

Implements exactly the estimators Principal Kernel Analysis needs — PCA,
k-means, hierarchical clustering (for the TBPoint baseline), and the three
two-level-profiling classifiers — with a scikit-learn-flavoured
``fit``/``predict`` API.
"""

from repro.mlkit.cluster_quality import davies_bouldin_score, silhouette_score
from repro.mlkit.hierarchical import (
    AgglomerativeClustering,
    ClusteringCapacityError,
    MergeTree,
    build_merge_tree,
)
from repro.mlkit.kmeans import KMeans
from repro.mlkit.minibatch_kmeans import MiniBatchKMeans
from repro.mlkit.mlp import MLPClassifier
from repro.mlkit.naive_bayes import GaussianNB
from repro.mlkit.pca import PCA
from repro.mlkit.preprocessing import StandardScaler, log_compress
from repro.mlkit.regression import SGDRegressor
from repro.mlkit.sgd import SGDClassifier

__all__ = [
    "AgglomerativeClustering",
    "ClusteringCapacityError",
    "GaussianNB",
    "KMeans",
    "MLPClassifier",
    "MergeTree",
    "MiniBatchKMeans",
    "build_merge_tree",
    "PCA",
    "SGDClassifier",
    "SGDRegressor",
    "StandardScaler",
    "davies_bouldin_score",
    "log_compress",
    "silhouette_score",
]
