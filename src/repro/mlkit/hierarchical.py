"""Agglomerative (hierarchical) clustering.

TBPoint — the prior-work baseline PKA is compared against — groups kernels
with hierarchical clustering cut at a hand-tuned distance threshold.  The
implementation here builds the full merge tree once (O(n^2) memory for the
distance matrix, O(n^2) time via cached row minima) and can then be cut at
any number of thresholds cheaply, which is what TBPoint's 20-threshold
sweep needs.

The O(n^2) distance matrix is exactly the scalability wall the paper
highlights: the implementation refuses inputs above ``max_points`` to make
that wall explicit rather than silently thrash.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotFittedError, ReproError
from repro.mlkit._checks import require_finite

__all__ = ["AgglomerativeClustering", "ClusteringCapacityError", "MergeTree"]

_LINKAGES = ("single", "complete", "average")


class ClusteringCapacityError(ReproError):
    """Raised when hierarchical clustering is asked to exceed its capacity."""


@dataclass(frozen=True)
class MergeTree:
    """The full agglomeration history of one dataset.

    ``merges[t] = (i, j, distance)`` records that original-cluster roots
    ``i`` and ``j`` merged (into ``i``) at the given linkage distance, in
    non-decreasing distance order for single/average/complete linkage on
    a fixed dataset.
    """

    n_points: int
    merges: tuple[tuple[int, int, float], ...]

    def labels_at_threshold(self, threshold: float) -> np.ndarray:
        """Cluster labels obtained by merging while distance <= threshold."""
        return self._replay(lambda dist, _remaining: dist <= threshold)

    def labels_at_k(self, n_clusters: int) -> np.ndarray:
        """Cluster labels obtained by merging down to ``n_clusters``."""
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        return self._replay(lambda _dist, remaining: remaining > n_clusters)

    def _replay(self, keep_merging) -> np.ndarray:
        parent = np.arange(self.n_points)

        def find(node: int) -> int:
            root = node
            while parent[root] != root:
                root = parent[root]
            while parent[node] != root:  # path compression
                parent[node], node = root, parent[node]
            return root

        remaining = self.n_points
        for i, j, dist in self.merges:
            if not keep_merging(dist, remaining):
                break
            root_i, root_j = find(i), find(j)
            if root_i != root_j:
                parent[root_j] = root_i
                remaining -= 1
        roots = np.fromiter((find(k) for k in range(self.n_points)), dtype=np.intp)
        _, labels = np.unique(roots, return_inverse=True)
        return labels


def build_merge_tree(
    points: np.ndarray,
    linkage: str = "average",
    max_points: int = 20_000,
) -> MergeTree:
    """Agglomerate ``points`` all the way down to one cluster.

    Runs in O(n^2) amortized time using cached per-row minima over the
    (condensed, in-place updated) distance matrix.
    """
    points = require_finite(points, "build_merge_tree")
    if points.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    if linkage not in _LINKAGES:
        raise ValueError(f"linkage must be one of {_LINKAGES}")
    n = points.shape[0]
    if n == 0:
        raise ValueError("cannot cluster zero points")
    if n > max_points:
        raise ClusteringCapacityError(
            f"hierarchical clustering of {n} points exceeds the "
            f"{max_points}-point capacity (the scalability wall "
            "PKA's k-means avoids)"
        )
    if n == 1:
        return MergeTree(n_points=1, merges=())

    # Full pairwise distance matrix with inf diagonal.
    sq_norms = np.sum(points**2, axis=1)
    dist = sq_norms[:, None] - 2.0 * (points @ points.T) + sq_norms[None, :]
    np.maximum(dist, 0.0, out=dist)
    dist = np.sqrt(dist)
    np.fill_diagonal(dist, np.inf)

    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.float64)
    # Cached minimum of each active row (value and column index).
    row_min_val = dist.min(axis=1)
    row_min_idx = dist.argmin(axis=1)
    merges: list[tuple[int, int, float]] = []

    for _ in range(n - 1):
        candidate_vals = np.where(active, row_min_val, np.inf)
        i = int(np.argmin(candidate_vals))
        j = int(row_min_idx[i])
        merge_dist = float(candidate_vals[i])
        merges.append((i, j, merge_dist))

        # Merge j into i with the chosen linkage update.
        row_i = dist[i, :]
        row_j = dist[j, :]
        if linkage == "single":
            merged = np.minimum(row_i, row_j)
        elif linkage == "complete":
            merged = np.maximum(row_i, row_j)
        else:  # size-weighted average linkage
            total = sizes[i] + sizes[j]
            merged = (sizes[i] * row_i + sizes[j] * row_j) / total
            merged[~np.isfinite(row_i) | ~np.isfinite(row_j)] = np.inf
        merged[i] = np.inf
        merged[j] = np.inf
        dist[i, :] = merged
        dist[:, i] = merged
        dist[j, :] = np.inf
        dist[:, j] = np.inf
        sizes[i] += sizes[j]
        active[j] = False

        # Refresh cached minima: row i changed entirely; any row whose
        # cached minimum pointed at i or j must be rescanned.
        row_min_val[i] = merged.min()
        row_min_idx[i] = int(merged.argmin())
        stale = active & ((row_min_idx == i) | (row_min_idx == j))
        stale[i] = False
        for row in np.flatnonzero(stale):
            row_min_val[row] = dist[row, :].min()
            row_min_idx[row] = int(dist[row, :].argmin())
        # Rows for which the new row i is now closer than their cache.
        improved = active & (merged < row_min_val)
        improved[i] = False
        row_min_val[improved] = merged[improved]
        row_min_idx[improved] = i

    return MergeTree(n_points=n, merges=tuple(merges))


class AgglomerativeClustering:
    """Bottom-up clustering cut at a distance threshold or a cluster count.

    Parameters
    ----------
    n_clusters:
        Stop merging once this many clusters remain.  Mutually exclusive
        with ``distance_threshold``.
    distance_threshold:
        Stop merging once the cheapest merge distance exceeds this value
        (TBPoint's "sigma"-style parameter).
    linkage:
        ``"single"``, ``"complete"`` or ``"average"`` linkage.
    max_points:
        Guard rail on the O(n^2) distance matrix.
    """

    def __init__(
        self,
        n_clusters: int | None = None,
        distance_threshold: float | None = None,
        linkage: str = "average",
        max_points: int = 20_000,
    ) -> None:
        if (n_clusters is None) == (distance_threshold is None):
            raise ValueError(
                "exactly one of n_clusters / distance_threshold must be given"
            )
        if n_clusters is not None and n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        if distance_threshold is not None and distance_threshold < 0:
            raise ValueError("distance_threshold must be >= 0")
        if linkage not in _LINKAGES:
            raise ValueError(f"linkage must be one of {_LINKAGES}")
        self.n_clusters = n_clusters
        self.distance_threshold = distance_threshold
        self.linkage = linkage
        self.max_points = max_points
        self.labels_: np.ndarray | None = None
        self.n_clusters_: int | None = None

    def fit(self, points: np.ndarray) -> "AgglomerativeClustering":
        tree = build_merge_tree(points, self.linkage, self.max_points)
        if self.n_clusters is not None:
            self.labels_ = tree.labels_at_k(self.n_clusters)
        else:
            assert self.distance_threshold is not None
            self.labels_ = tree.labels_at_threshold(self.distance_threshold)
        self.n_clusters_ = int(self.labels_.max()) + 1
        return self

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        self.fit(points)
        assert self.labels_ is not None
        return self.labels_

    @property
    def labels(self) -> np.ndarray:
        if self.labels_ is None:
            raise NotFittedError("AgglomerativeClustering used before fit")
        return self.labels_
