"""Multinomial logistic regression trained by stochastic gradient descent.

The paper's two-level profiling phase names "Stochastic Gradient Descent"
as one of its three classifiers; in scikit-learn terms that is
``SGDClassifier(loss="log_loss")``, which this module reimplements.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError

__all__ = ["SGDClassifier"]


class SGDClassifier:
    """Linear softmax classifier fit with minibatch SGD and L2 decay.

    Parameters
    ----------
    learning_rate:
        Initial step size; decays as ``lr / (1 + decay * t)``.
    alpha:
        L2 regularization strength.
    epochs:
        Passes over the training set.
    batch_size:
        Minibatch size.
    seed:
        Shuffling RNG seed, fixed for reproducibility.
    """

    def __init__(
        self,
        learning_rate: float = 0.05,
        alpha: float = 1e-4,
        epochs: int = 40,
        batch_size: int = 64,
        seed: int = 0,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.learning_rate = learning_rate
        self.alpha = alpha
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self.coef_: np.ndarray | None = None  # (n_classes, n_features)
        self.intercept_: np.ndarray | None = None

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "SGDClassifier":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        if labels.shape[0] != features.shape[0]:
            raise ValueError("features and labels disagree on sample count")

        self.classes_, encoded = np.unique(labels, return_inverse=True)
        n_samples, n_features = features.shape
        n_classes = len(self.classes_)
        rng = np.random.default_rng(self.seed)
        self.coef_ = rng.normal(0.0, 0.01, size=(n_classes, n_features))
        self.intercept_ = np.zeros(n_classes)

        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            for start in range(0, n_samples, self.batch_size):
                batch = order[start : start + self.batch_size]
                x = features[batch]
                y = encoded[batch]
                probs = self._softmax(x @ self.coef_.T + self.intercept_)
                probs[np.arange(len(batch)), y] -= 1.0
                grad_w = probs.T @ x / len(batch) + self.alpha * self.coef_
                grad_b = probs.mean(axis=0)
                lr = self.learning_rate / (1.0 + 0.01 * step)
                self.coef_ -= lr * grad_w
                self.intercept_ -= lr * grad_b
                step += 1
        return self

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        logits = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        if self.coef_ is None or self.intercept_ is None:
            raise NotFittedError("SGDClassifier used before fit")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self.coef_.shape[1]:
            raise ValueError("feature matrix shape does not match the fitted model")
        return features @ self.coef_.T + self.intercept_

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return self._softmax(self.decision_function(features))

    def predict(self, features: np.ndarray) -> np.ndarray:
        scores = self.decision_function(features)
        assert self.classes_ is not None
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean accuracy on the given data."""
        return float(np.mean(self.predict(features) == np.asarray(labels)))
