"""Multilayer perceptron classifier (one hidden layer, ReLU, softmax).

The third of PKA's two-level-profiling classifiers.  Trained with Adam on
cross-entropy loss; sized for the small tabular feature vectors produced by
lightweight profiling (a handful of columns), not for deep learning.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError

__all__ = ["MLPClassifier"]


class MLPClassifier:
    """Softmax MLP with a single ReLU hidden layer, trained with Adam.

    Parameters
    ----------
    hidden_size:
        Width of the hidden layer.
    learning_rate:
        Adam step size.
    epochs:
        Passes over the training set.
    batch_size:
        Minibatch size.
    alpha:
        L2 regularization strength on the weight matrices.
    seed:
        Initialization/shuffling seed.
    """

    def __init__(
        self,
        hidden_size: int = 32,
        learning_rate: float = 1e-2,
        epochs: int = 60,
        batch_size: int = 64,
        alpha: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if hidden_size < 1:
            raise ValueError("hidden_size must be >= 1")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.hidden_size = hidden_size
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.alpha = alpha
        self.seed = seed
        self.classes_: np.ndarray | None = None
        self._params: dict[str, np.ndarray] | None = None
        self.loss_curve_: list[float] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MLPClassifier":
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        if labels.shape[0] != features.shape[0]:
            raise ValueError("features and labels disagree on sample count")

        self.classes_, encoded = np.unique(labels, return_inverse=True)
        n_samples, n_features = features.shape
        n_classes = len(self.classes_)
        rng = np.random.default_rng(self.seed)

        def he_init(fan_in: int, shape: tuple[int, ...]) -> np.ndarray:
            return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)

        params = {
            "w1": he_init(n_features, (n_features, self.hidden_size)),
            "b1": np.zeros(self.hidden_size),
            "w2": he_init(self.hidden_size, (self.hidden_size, n_classes)),
            "b2": np.zeros(n_classes),
        }
        moments = {k: np.zeros_like(v) for k, v in params.items()}
        velocities = {k: np.zeros_like(v) for k, v in params.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        self.loss_curve_ = []

        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n_samples, self.batch_size):
                batch = order[start : start + self.batch_size]
                x = features[batch]
                y = encoded[batch]
                grads, loss = self._backward(params, x, y)
                epoch_loss += loss
                n_batches += 1
                step += 1
                for key, grad in grads.items():
                    moments[key] = beta1 * moments[key] + (1 - beta1) * grad
                    velocities[key] = beta2 * velocities[key] + (1 - beta2) * grad**2
                    m_hat = moments[key] / (1 - beta1**step)
                    v_hat = velocities[key] / (1 - beta2**step)
                    params[key] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + eps)
            self.loss_curve_.append(epoch_loss / max(n_batches, 1))
        self._params = params
        return self

    def _backward(
        self, params: dict[str, np.ndarray], x: np.ndarray, y: np.ndarray
    ) -> tuple[dict[str, np.ndarray], float]:
        n = x.shape[0]
        hidden_pre = x @ params["w1"] + params["b1"]
        hidden = np.maximum(hidden_pre, 0.0)
        logits = hidden @ params["w2"] + params["b2"]
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        probs = exp / exp.sum(axis=1, keepdims=True)
        loss = float(-np.log(probs[np.arange(n), y] + 1e-12).mean())

        delta_out = probs
        delta_out[np.arange(n), y] -= 1.0
        delta_out /= n
        grads = {
            "w2": hidden.T @ delta_out + self.alpha * params["w2"],
            "b2": delta_out.sum(axis=0),
        }
        delta_hidden = (delta_out @ params["w2"].T) * (hidden_pre > 0)
        grads["w1"] = x.T @ delta_hidden + self.alpha * params["w1"]
        grads["b1"] = delta_hidden.sum(axis=0)
        return grads, loss

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._params is None:
            raise NotFittedError("MLPClassifier used before fit")
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != self._params["w1"].shape[0]:
            raise ValueError("feature matrix shape does not match the fitted model")
        hidden = np.maximum(features @ self._params["w1"] + self._params["b1"], 0.0)
        logits = hidden @ self._params["w2"] + self._params["b2"]
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        probs = self.predict_proba(features)
        assert self.classes_ is not None
        return self.classes_[np.argmax(probs, axis=1)]

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean accuracy on the given data."""
        return float(np.mean(self.predict(features) == np.asarray(labels)))
