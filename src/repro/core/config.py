"""Configuration dataclasses for PKS, PKP and the combined PKA pipeline.

The paper stresses that PKA needs exactly two user-facing inputs: the
desired Principal-Kernel-Selection projection error (5% everywhere in the
paper) and the Principal-Kernel-Projection stability threshold ``s``
(0.25 everywhere).  Every other knob here has a paper-faithful default
and exists for the ablation benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


def _require_finite(owner: str, **values: float) -> None:
    """NaN fails every comparison, so range checks pass vacuously on a
    poisoned config; reject non-finite floats explicitly."""
    for name, value in values.items():
        if not math.isfinite(value):
            raise ConfigurationError(f"{owner}.{name} must be finite, got {value!r}")

__all__ = ["PKSConfig", "PKPConfig", "TwoLevelConfig", "PKAConfig"]

_REPRESENTATIVE_CHOICES = ("first", "center", "random")
_CLASSIFIER_CHOICES = ("sgd", "gnb", "mlp", "best")


@dataclass(frozen=True)
class PKSConfig:
    """Principal Kernel Selection parameters.

    Attributes
    ----------
    target_error:
        The K sweep stops at the smallest K whose projected total-cycle
        error versus the profiled total falls below this (paper: 5%).
    k_min / k_max:
        K-sweep range (paper: "typically from 1 to 20").
    pca_variance:
        Fraction of variance the retained principal components must
        explain.
    representative:
        How the principal kernel of each group is chosen: "first"
        (chronological — the paper's choice), "center" (closest to the
        cluster centroid) or "random" (shown inconsistent in §3.1).
    k_policy:
        How K is chosen from the sweep: "error" (the paper's smallest K
        whose projected-runtime error beats ``target_error``) or
        "silhouette" (extension: best feature-geometry silhouette, which
        needs no cycle measurements at all).
    seed:
        RNG seed for k-means restarts and random representative choice.
    """

    target_error: float = 0.05
    k_min: int = 1
    k_max: int = 20
    pca_variance: float = 0.95
    representative: str = "first"
    k_policy: str = "error"
    seed: int = 0

    def __post_init__(self) -> None:
        _require_finite(
            "PKSConfig", target_error=self.target_error, pca_variance=self.pca_variance
        )
        if not 0.0 < self.target_error < 1.0:
            raise ConfigurationError("target_error must be in (0, 1)")
        if self.k_min < 1 or self.k_max < self.k_min:
            raise ConfigurationError("require 1 <= k_min <= k_max")
        if self.representative not in _REPRESENTATIVE_CHOICES:
            raise ConfigurationError(
                f"representative must be one of {_REPRESENTATIVE_CHOICES}"
            )
        if self.k_policy not in ("error", "silhouette"):
            raise ConfigurationError(
                "k_policy must be 'error' or 'silhouette'"
            )


@dataclass(frozen=True)
class PKPConfig:
    """Principal Kernel Projection parameters.

    Attributes
    ----------
    stability_threshold:
        The ``s`` parameter: the rolling relative standard deviation of
        IPC below which the signal is quasi-stable (paper: 0.25; the
        Figure-5 sweep uses 2.5 and 0.025 as well).
    rolling_window_cycles:
        Width of the rolling statistics window (paper: 3000 cycles).
    window_cycles:
        Sampling granularity of the IPC signal.
    enforce_wave:
        Require at least one full wave of thread blocks to finish before
        declaring stability (dropped automatically for sub-wave grids,
        per §3.2).
    consecutive_windows:
        Number of consecutive sub-threshold rolling windows required —
        a single window's standard deviation is a noisy estimate, and one
        lucky dip must not end the simulation.
    """

    stability_threshold: float = 0.25
    rolling_window_cycles: float = 3_000.0
    window_cycles: float = 500.0
    enforce_wave: bool = True
    consecutive_windows: int = 3

    def __post_init__(self) -> None:
        _require_finite(
            "PKPConfig",
            stability_threshold=self.stability_threshold,
            rolling_window_cycles=self.rolling_window_cycles,
            window_cycles=self.window_cycles,
        )
        if self.stability_threshold <= 0:
            raise ConfigurationError("stability_threshold must be positive")
        if self.window_cycles <= 0:
            raise ConfigurationError("window_cycles must be positive")
        if self.rolling_window_cycles < self.window_cycles:
            raise ConfigurationError(
                "rolling_window_cycles must be >= window_cycles"
            )
        if self.consecutive_windows < 1:
            raise ConfigurationError("consecutive_windows must be >= 1")

    @property
    def rolling_samples(self) -> int:
        """Number of window samples inside one rolling window."""
        return max(2, int(round(self.rolling_window_cycles / self.window_cycles)))


@dataclass(frozen=True)
class TwoLevelConfig:
    """Two-level profiling parameters.

    Attributes
    ----------
    tractable_profiling_seconds:
        Detailed profiling beyond this budget triggers two-level mode
        (paper: one week).
    detailed_limit:
        Number of leading kernels profiled in detail when in two-level
        mode (the paper details 20k of SSD's 5.3M kernels; scaled by the
        same factor as the synthetic workloads).
    classifier:
        Which lightweight->group classifier to use: "sgd", "gnb", "mlp",
        or "best" (train all three, keep the most accurate — the paper
        evaluates all three).
    validation_fraction:
        Share of the detailed subset held out to score the classifiers.
    """

    tractable_profiling_seconds: float = 7 * 24 * 3600.0
    detailed_limit: int = 2_000
    classifier: str = "best"
    validation_fraction: float = 0.25

    def __post_init__(self) -> None:
        _require_finite(
            "TwoLevelConfig",
            tractable_profiling_seconds=self.tractable_profiling_seconds,
            validation_fraction=self.validation_fraction,
        )
        if self.tractable_profiling_seconds <= 0:
            raise ConfigurationError("tractable_profiling_seconds must be positive")
        if self.detailed_limit < 2:
            raise ConfigurationError("detailed_limit must be >= 2")
        if self.classifier not in _CLASSIFIER_CHOICES:
            raise ConfigurationError(
                f"classifier must be one of {_CLASSIFIER_CHOICES}"
            )
        if not 0.0 < self.validation_fraction < 1.0:
            raise ConfigurationError("validation_fraction must be in (0, 1)")


@dataclass(frozen=True)
class PKAConfig:
    """End-to-end Principal Kernel Analysis configuration."""

    pks: PKSConfig = field(default_factory=PKSConfig)
    pkp: PKPConfig = field(default_factory=PKPConfig)
    two_level: TwoLevelConfig = field(default_factory=TwoLevelConfig)
