"""The paper's contribution: PKS, PKP, two-level profiling, and PKA."""

from repro.core.config import PKAConfig, PKPConfig, PKSConfig, TwoLevelConfig
from repro.core.features import FeaturePipeline, profile_feature_matrix
from repro.core.pka import KernelSelection, PrincipalKernelAnalysis, SelectedGroup
from repro.core.pkp import (
    IPCStabilityMonitor,
    PKPProjection,
    make_monitor,
    project_result,
    run_pkp,
)
from repro.core.pks import KernelGroup, PKSResult, run_pks
from repro.core.two_level import TwoLevelResult, run_two_level
from repro.core.validation import (
    VALIDATION_MODES,
    ValidationIssue,
    ValidationReport,
    resolve_mode,
    sanitize_counter_matrix,
    sanitize_launches,
    sanitize_profiles,
    validate_gpu_config,
)

__all__ = [
    "FeaturePipeline",
    "VALIDATION_MODES",
    "ValidationIssue",
    "ValidationReport",
    "resolve_mode",
    "sanitize_counter_matrix",
    "sanitize_launches",
    "sanitize_profiles",
    "validate_gpu_config",
    "IPCStabilityMonitor",
    "KernelGroup",
    "KernelSelection",
    "PKAConfig",
    "PKPConfig",
    "PKPProjection",
    "PKSConfig",
    "PKSResult",
    "PrincipalKernelAnalysis",
    "SelectedGroup",
    "TwoLevelConfig",
    "TwoLevelResult",
    "make_monitor",
    "profile_feature_matrix",
    "project_result",
    "run_pks",
    "run_pkp",
    "run_two_level",
]
