"""Two-level profiling: detailed head, lightweight tail, learned mapping.

For workloads whose detailed profiling would take over a week, PKA
profiles only the first ``j`` kernels in detail, runs PKS on that subset,
and traces the remaining kernels with the lightweight profiler (name,
grid dims, PyProf annotations).  Three classifiers — SGD logistic
regression, Gaussian Naive Bayes and an MLP — are trained to map
lightweight records onto the detailed-phase groups; the mapping fixes the
group *weights* used to project the whole application.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.config import PKSConfig, TwoLevelConfig
from repro.core.pks import PKSResult, run_pks
from repro.errors import ReproError
from repro.mlkit import GaussianNB, MLPClassifier, SGDClassifier, StandardScaler
from repro.obs import obs_span
from repro.profiling.detailed import DetailedProfile
from repro.profiling.lightweight import LightweightProfile, light_feature_matrix

__all__ = ["TwoLevelResult", "run_two_level"]


@dataclass(frozen=True)
class TwoLevelResult:
    """Outcome of two-level profiling.

    Attributes
    ----------
    pks:
        The PKS result computed on the detailed head.
    group_weights:
        Per-group kernel counts over the *whole* application (detailed
        members counted exactly, lightweight members by classification).
    classifier_name / classifier_accuracy:
        Which of the three models won and its held-out accuracy on the
        detailed head.
    detailed_count / lightweight_count:
        How many kernels were profiled at each level.
    """

    pks: PKSResult
    group_weights: dict[int, int]
    classifier_name: str
    classifier_accuracy: float
    detailed_count: int
    lightweight_count: int

    def project_total(self, representative_values: dict[int, float]) -> float:
        """Group-weighted total using the *two-level* weights."""
        total = 0.0
        by_group = {group.group_id: group for group in self.pks.groups}
        for group_id, weight in self.group_weights.items():
            representative = by_group[group_id].representative_launch_id
            try:
                value = representative_values[representative]
            except KeyError as exc:
                raise ReproError(
                    f"missing measurement for representative launch {representative}"
                ) from exc
            total += value * weight
        return total

    @property
    def total_kernels(self) -> int:
        return int(sum(self.group_weights.values()))


_CLASSIFIER_FACTORIES = {
    "sgd": lambda: SGDClassifier(epochs=30),
    "gnb": lambda: GaussianNB(),
    "mlp": lambda: MLPClassifier(epochs=40, hidden_size=24),
}


def run_two_level(
    detailed_profiles: Sequence[DetailedProfile],
    lightweight_head: Sequence[LightweightProfile],
    lightweight_tail: Sequence[LightweightProfile],
    *,
    pks_config: PKSConfig | None = None,
    config: TwoLevelConfig | None = None,
    mode: str = "strict",
) -> TwoLevelResult:
    """Run two-level profiling.

    Parameters
    ----------
    detailed_profiles:
        Detailed profiles of the first ``j`` kernels (chronological).
    lightweight_head:
        Lightweight records of the *same* first ``j`` kernels — the
        classifier's labelled training data.
    lightweight_tail:
        Lightweight records of the remaining kernels to be mapped.
    mode:
        Validation mode threaded into PKS ("strict" or "lenient").
    """
    with obs_span(
        "pka.two_level",
        detailed=len(detailed_profiles),
        tail=len(lightweight_tail),
    ):
        return _run_two_level(
            detailed_profiles,
            lightweight_head,
            lightweight_tail,
            pks_config=pks_config,
            config=config,
            mode=mode,
        )


def _run_two_level(
    detailed_profiles: Sequence[DetailedProfile],
    lightweight_head: Sequence[LightweightProfile],
    lightweight_tail: Sequence[LightweightProfile],
    *,
    pks_config: PKSConfig | None,
    config: TwoLevelConfig | None,
    mode: str,
) -> TwoLevelResult:
    config = config if config is not None else TwoLevelConfig()
    if len(detailed_profiles) != len(lightweight_head):
        raise ReproError(
            "detailed head and lightweight head must describe the same kernels"
        )

    pks = run_pks(detailed_profiles, pks_config, mode=mode)
    labels = pks.labels

    weights: dict[int, int] = {group.group_id: 0 for group in pks.groups}
    for label in labels:
        weights[int(label)] += 1

    if not lightweight_tail:
        return TwoLevelResult(
            pks=pks,
            group_weights=weights,
            classifier_name="none",
            classifier_accuracy=1.0,
            detailed_count=len(detailed_profiles),
            lightweight_count=0,
        )

    if len(pks.groups) == 1:
        # A single group needs no learned mapping: every tail kernel
        # belongs to it by construction, and training a classifier on a
        # one-class problem is ill-posed for some of the models.
        only_group = pks.groups[0].group_id
        weights[only_group] += len(lightweight_tail)
        return TwoLevelResult(
            pks=pks,
            group_weights=weights,
            classifier_name="single_group",
            classifier_accuracy=1.0,
            detailed_count=len(detailed_profiles),
            lightweight_count=len(lightweight_tail),
        )

    features_head = light_feature_matrix(lightweight_head)
    features_tail = light_feature_matrix(lightweight_tail)
    scaler = StandardScaler()
    features_head = scaler.fit_transform(features_head)
    features_tail = scaler.transform(features_tail)

    try:
        name, accuracy, model = _select_classifier(features_head, labels, config)
        predictions = model.predict(features_tail)
    except (ValueError, FloatingPointError, np.linalg.LinAlgError):
        # Classifier training degenerated; fall back to the majority
        # detailed-phase group — conservative, and never a crash.
        counts = np.bincount(labels.astype(np.intp))
        majority = int(np.argmax(counts))
        name = "majority_fallback"
        accuracy = float(counts[majority]) / float(len(labels))
        predictions = np.full(len(lightweight_tail), majority, dtype=np.intp)
    for label in predictions:
        weights[int(label)] = weights.get(int(label), 0) + 1

    return TwoLevelResult(
        pks=pks,
        group_weights=weights,
        classifier_name=name,
        classifier_accuracy=accuracy,
        detailed_count=len(detailed_profiles),
        lightweight_count=len(lightweight_tail),
    )


def _select_classifier(
    features: np.ndarray,
    labels: np.ndarray,
    config: TwoLevelConfig,
):
    """Train the configured classifier(s); return (name, accuracy, model).

    With ``classifier="best"`` all three models compete on a held-out
    slice of the detailed head, then the winner is refit on everything.
    """
    wanted = (
        list(_CLASSIFIER_FACTORIES)
        if config.classifier == "best"
        else [config.classifier]
    )
    n_samples = len(labels)
    # Deterministic split: every k-th sample held out.
    stride = max(2, int(round(1.0 / config.validation_fraction)))
    holdout_mask = np.zeros(n_samples, dtype=bool)
    holdout_mask[::stride] = True
    # Guard: training split must retain every class, else fall back to
    # fitting on everything and scoring in-sample.
    train_labels = labels[~holdout_mask]
    degenerate_split = len(np.unique(train_labels)) < len(np.unique(labels))

    best_name = wanted[0]
    best_accuracy = -1.0
    for name in wanted:
        model = _CLASSIFIER_FACTORIES[name]()
        if degenerate_split:
            model.fit(features, labels)
            accuracy = model.score(features, labels)
        else:
            model.fit(features[~holdout_mask], labels[~holdout_mask])
            accuracy = model.score(features[holdout_mask], labels[holdout_mask])
        if accuracy > best_accuracy:
            best_name, best_accuracy = name, accuracy

    final_model = _CLASSIFIER_FACTORIES[best_name]()
    final_model.fit(features, labels)
    return best_name, float(best_accuracy), final_model
