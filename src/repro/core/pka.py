"""Principal Kernel Analysis: the end-to-end pipeline.

``PrincipalKernelAnalysis`` drives the full methodology of the paper:

1. **Characterize** a workload on silicon.  If detailed profiling of the
   whole (paper-sized) application fits in the tractability budget (one
   week), every kernel is profiled in detail and PKS runs over all of
   them.  Otherwise *two-level* profiling kicks in: detailed profiles for
   the first ``j`` kernels, lightweight traces for the rest, and a
   classifier transfers the PKS groups onto the lightweight tail.
   The result is a :class:`KernelSelection`: one representative launch
   per group plus group weights.
2. **Simulate** only the representatives — optionally under Principal
   Kernel Projection, which cuts each representative short once its IPC
   stabilizes — and scale per-kernel results by the group weights to
   project whole-application cycles, instructions and DRAM traffic.
3. **Project on silicon**: the same selection can be priced on any GPU
   generation's silicon model, which is how the paper evaluates
   Volta-selected kernels on Turing and Ampere.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.config import PKAConfig
from repro.core.pkp import project_result, run_pkp
from repro.core.pks import PKSResult, run_pks
from repro.core.two_level import run_two_level
from repro.core.validation import ValidationIssue, resolve_mode, sanitize_launches
from repro.errors import ReproError
from repro.gpu.kernels import KernelLaunch
from repro.obs import obs_count, obs_span
from repro.profiling.detailed import DetailedProfiler
from repro.profiling.lightweight import LightweightProfiler
from repro.sim.perfmodel import KERNEL_LAUNCH_OVERHEAD
from repro.sim.silicon import SiliconExecutor
from repro.sim.simulator import Simulator
from repro.sim.stats import AppRunResult, KernelRecord

__all__ = ["SelectedGroup", "KernelSelection", "PrincipalKernelAnalysis"]


@dataclass(frozen=True)
class SelectedGroup:
    """One kernel group as it leaves characterization.

    Carries the representative *launch object* (not just its id) so the
    selection can be replayed on any simulator or silicon model.
    """

    group_id: int
    representative: KernelLaunch
    weight: int


@dataclass(frozen=True)
class KernelSelection:
    """The concise program representation PKA produces for one workload.

    ``total_warp_instructions`` is the application's exact dynamic warp
    instruction count: the simulator's tracer records it for every kernel
    regardless of sampling, so projected IPC divides exact instructions
    by projected cycles (cycle error and IPC error coincide, as in the
    paper's trace-driven setup).
    """

    workload: str
    total_launches: int
    total_warp_instructions: float
    groups: tuple[SelectedGroup, ...]
    pks: PKSResult
    used_two_level: bool
    detailed_count: int
    classifier_name: str
    classifier_accuracy: float
    profiling_seconds: float
    #: Validation/sanitization provenance collected during characterization
    #: (empty for clean inputs; not persisted by the run cache).
    diagnostics: tuple[ValidationIssue, ...] = field(default_factory=tuple)

    @property
    def selected_count(self) -> int:
        """Number of kernels that must actually be traced/simulated."""
        return len(self.groups)

    @property
    def selected_launch_ids(self) -> tuple[int, ...]:
        return tuple(sorted(g.representative.launch_id for g in self.groups))

    @property
    def weighted_total(self) -> int:
        """Total kernels represented (== total_launches when weights add up)."""
        return int(sum(group.weight for group in self.groups))


class PrincipalKernelAnalysis:
    """The automated PKA methodology (characterize -> select -> project)."""

    def __init__(
        self,
        config: PKAConfig | None = None,
        *,
        validation_mode: str = "strict",
    ) -> None:
        self.config = config if config is not None else PKAConfig()
        self.validation_mode = resolve_mode(validation_mode)

    # ------------------------------------------------------------------
    # Phase 1: characterization on silicon.
    # ------------------------------------------------------------------

    def characterize(
        self,
        workload_name: str,
        launches: Sequence[KernelLaunch],
        silicon: SiliconExecutor,
        *,
        scale: float = 1.0,
    ) -> KernelSelection:
        """Profile a workload and select its principal kernels.

        ``scale`` is the workload's launch-count downscale factor: the
        tractability decision is made against the cost of profiling the
        *paper-sized* application (scale times more kernels).
        """
        with obs_span(
            "pka.characterize", workload=workload_name, launches=len(launches)
        ):
            return self._characterize(
                workload_name, launches, silicon, scale=scale
            )

    def _characterize(
        self,
        workload_name: str,
        launches: Sequence[KernelLaunch],
        silicon: SiliconExecutor,
        *,
        scale: float,
    ) -> KernelSelection:
        if not launches:
            raise ReproError("cannot characterize an empty workload")
        # Ingestion boundary: reject (strict) or repair (lenient) launches
        # whose spec/mix fields are non-finite before anything profiles or
        # simulates them.  The profiler-counter boundary inside run_pks is
        # a second line of defence for counters that go bad independently.
        launches, diagnostics = sanitize_launches(
            workload_name, launches, self.validation_mode
        )
        detailed_profiler = DetailedProfiler(silicon)
        light_profiler = LightweightProfiler(silicon)
        by_id = {launch.launch_id: launch for launch in launches}

        full_cost = detailed_profiler.profiling_seconds(launches) * scale
        budget = self.config.two_level.tractable_profiling_seconds

        if full_cost <= budget:
            profiles = detailed_profiler.profile(launches)
            pks = run_pks(profiles, self.config.pks, mode=self.validation_mode)
            weights = {group.group_id: group.weight for group in pks.groups}
            return self._make_selection(
                workload_name,
                launches,
                pks,
                weights,
                by_id,
                used_two_level=False,
                detailed_count=len(launches),
                classifier_name="none",
                classifier_accuracy=1.0,
                profiling_seconds=full_cost,
                diagnostics=tuple(diagnostics) + pks.diagnostics,
            )

        # Two-level: detailed head, lightweight everything, learned map.
        head_count = min(self.config.two_level.detailed_limit, len(launches))
        head = list(launches[:head_count])
        detailed = detailed_profiler.profile(head)
        light_all = light_profiler.profile(launches)
        two_level = run_two_level(
            detailed,
            light_all[:head_count],
            light_all[head_count:],
            pks_config=self.config.pks,
            config=self.config.two_level,
            mode=self.validation_mode,
        )
        profiling_seconds = (
            detailed_profiler.profiling_seconds(head)
            + light_profiler.profiling_seconds(launches) * scale
        )
        return self._make_selection(
            workload_name,
            launches,
            two_level.pks,
            two_level.group_weights,
            by_id,
            used_two_level=True,
            detailed_count=head_count,
            classifier_name=two_level.classifier_name,
            classifier_accuracy=two_level.classifier_accuracy,
            profiling_seconds=profiling_seconds,
            diagnostics=tuple(diagnostics) + two_level.pks.diagnostics,
        )

    def _make_selection(
        self,
        workload_name: str,
        launches: Sequence[KernelLaunch],
        pks: PKSResult,
        weights: dict[int, int],
        by_id: dict[int, KernelLaunch],
        **metadata,
    ) -> KernelSelection:
        groups = tuple(
            SelectedGroup(
                group_id=group.group_id,
                representative=by_id[group.representative_launch_id],
                weight=weights.get(group.group_id, group.weight),
            )
            for group in pks.groups
        )
        return KernelSelection(
            workload=workload_name,
            total_launches=len(launches),
            total_warp_instructions=sum(
                launch.warp_instructions for launch in launches
            ),
            groups=groups,
            pks=pks,
            **metadata,
        )

    # ------------------------------------------------------------------
    # Phase 2: sampled simulation.
    # ------------------------------------------------------------------

    def simulate(
        self,
        selection: KernelSelection,
        simulator: Simulator,
        *,
        use_pkp: bool = True,
    ) -> AppRunResult:
        """Simulate only the principal kernels and project the application.

        With ``use_pkp`` (the default, i.e. full PKA) each representative
        is also cut short at IPC stability; without it this is PKS-only
        sampled simulation.
        """
        with obs_span(
            "pka.simulate",
            workload=selection.workload,
            groups=len(selection.groups),
            use_pkp=use_pkp,
        ):
            total_cycles = KERNEL_LAUNCH_OVERHEAD * selection.total_launches
            total_bytes = 0.0
            simulated = 0.0
            records = []
            for group in selection.groups:
                if use_pkp:
                    projection = run_pkp(
                        simulator, group.representative, self.config.pkp
                    )
                else:
                    projection = project_result(
                        simulator.run_kernel(group.representative)
                    )
                total_cycles += projection.projected_cycles * group.weight
                total_bytes += projection.projected_dram_bytes * group.weight
                simulated += projection.simulated_cycles
                records.append(
                    KernelRecord(
                        launch_id=group.representative.launch_id,
                        name=group.representative.spec.name,
                        cycles=projection.projected_cycles * group.weight,
                        instructions=projection.projected_instructions
                        * group.weight,
                        dram_bytes=projection.projected_dram_bytes * group.weight,
                        simulated_cycles=projection.simulated_cycles,
                        projected=True,
                    )
                )
            # The tractability story in one pair of counters: cycles the
            # simulator actually paid for versus cycles projected from them.
            obs_count("pka.simulated_cycles", simulated)
            obs_count("pka.projected_cycles", total_cycles)
        return AppRunResult(
            workload=selection.workload,
            gpu=simulator.gpu,
            method="pka" if use_pkp else "pks_sim",
            total_cycles=total_cycles,
            # Traces record the exact instruction count of every kernel,
            # so the app's instruction total is known, not projected.
            total_instructions=selection.total_warp_instructions,
            total_dram_bytes=total_bytes,
            simulated_cycles=simulated,
            kernel_records=tuple(records),
        )

    # ------------------------------------------------------------------
    # Phase 3: silicon-side projection (any GPU generation).
    # ------------------------------------------------------------------

    def project_silicon(
        self,
        selection: KernelSelection,
        silicon: SiliconExecutor,
    ) -> AppRunResult:
        """Price the selection on a silicon model (PKS-in-silicon).

        This is how Table 4's Turing/Ampere columns reuse the kernels
        selected on Volta: run just the representatives on the target
        silicon and group-scale.  ``simulated_cycles`` holds the silicon
        cycles actually *executed* (the reduced run's cost).
        """
        total_cycles = KERNEL_LAUNCH_OVERHEAD * selection.total_launches
        total_bytes = 0.0
        executed = 0.0
        for group in selection.groups:
            cycles = silicon.kernel_cycles(group.representative)
            dram = silicon.kernel_dram_bytes(group.representative)
            total_cycles += cycles * group.weight
            total_bytes += dram * group.weight
            executed += cycles + KERNEL_LAUNCH_OVERHEAD
        return AppRunResult(
            workload=selection.workload,
            gpu=silicon.gpu,
            method="pks_silicon",
            total_cycles=total_cycles,
            total_instructions=selection.total_warp_instructions,
            total_dram_bytes=total_bytes,
            simulated_cycles=executed,
        )
