"""Principal Kernel Selection (PKS): inter-kernel reduction.

From detailed silicon profiles, PKS clusters kernels with PCA + k-means,
sweeps K from ``k_min`` upward, and keeps the smallest K whose projected
total runtime (each group represented by one kernel, scaled by the group
size) errs below the target versus the profiled total.  Within each
group the representative is the *first chronological* kernel — the
paper's choice, which also minimizes tracing cost.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PKSConfig
from repro.core.features import FeaturePipeline, profile_feature_matrix
from repro.core.validation import ValidationIssue, resolve_mode, sanitize_profiles
from repro.errors import InputValidationError, ReproError
from repro.mlkit import KMeans
from repro.obs import obs_count, obs_span
from repro.profiling.detailed import DetailedProfile

__all__ = ["KernelGroup", "PKSResult", "run_pks"]


@dataclass(frozen=True)
class KernelGroup:
    """One cluster of similar kernels and its principal representative.

    Attributes
    ----------
    group_id:
        Cluster index, 0..K-1.
    representative_launch_id:
        Launch id of the principal kernel chosen for the group.
    member_launch_ids:
        Launch ids of every member, in chronological order.
    weight:
        Group size; the representative's measurements are scaled by this
        to project the group's total.
    mean_cycles / representative_cycles:
        Profiled silicon cycles: group mean and the representative's own.
    """

    group_id: int
    representative_launch_id: int
    member_launch_ids: tuple[int, ...]
    weight: int
    mean_cycles: float
    representative_cycles: float


@dataclass(frozen=True)
class PKSResult:
    """Outcome of Principal Kernel Selection over one profiled kernel set."""

    k: int
    groups: tuple[KernelGroup, ...]
    labels: np.ndarray
    projection_error: float
    sweep_errors: tuple[float, ...]
    pipeline: FeaturePipeline
    kmeans: KMeans
    diagnostics: tuple[ValidationIssue, ...] = field(default_factory=tuple)

    @property
    def selected_launch_ids(self) -> tuple[int, ...]:
        """Launch ids of the principal kernels, ascending."""
        return tuple(
            sorted(group.representative_launch_id for group in self.groups)
        )

    @property
    def total_profiled_kernels(self) -> int:
        return int(sum(group.weight for group in self.groups))

    def project_total(self, representative_values: dict[int, float]) -> float:
        """Scale per-representative measurements up to the full kernel set.

        ``representative_values`` maps representative launch id to any
        per-kernel measurement (cycles on another GPU, simulated cycles,
        DRAM bytes...); the return value is the group-weighted total.
        """
        total = 0.0
        for group in self.groups:
            try:
                value = representative_values[group.representative_launch_id]
            except KeyError as exc:
                raise ReproError(
                    f"missing measurement for representative launch "
                    f"{group.representative_launch_id} (group {group.group_id})"
                ) from exc
            total += value * group.weight
        return total


def run_pks(
    profiles: Sequence[DetailedProfile],
    config: PKSConfig | None = None,
    *,
    mode: str = "strict",
) -> PKSResult:
    """Run Principal Kernel Selection over detailed profiles.

    The profiles must be in chronological launch order (as profilers
    emit them); "first chronological" representative selection relies on
    it.

    ``mode`` controls the counter-ingestion boundary: ``"strict"`` raises
    :class:`~repro.errors.InputValidationError` on non-finite counters or
    cycle readings, ``"lenient"`` imputes them and records the repairs in
    the result's ``diagnostics``.  Should the K sweep itself degenerate
    (numerical failure inside PCA/k-means), PKS falls back to a single
    all-kernels group — a valid, conservative selection — rather than
    returning garbage labels.
    """
    config = config if config is not None else PKSConfig()
    mode = resolve_mode(mode)
    if not profiles:
        raise ReproError("PKS requires at least one detailed profile")

    with obs_span("pks.cluster", kernels=len(profiles)) as span:
        profiles, diagnostics = sanitize_profiles("pks", profiles, mode)
        counters = profile_feature_matrix(profiles)
        pipeline = FeaturePipeline(pca_variance=config.pca_variance)
        reduced = pipeline.fit_transform(counters)
        diagnostics = list(diagnostics) + list(pipeline.diagnostics)
        cycles = np.asarray([profile.cycles for profile in profiles])
        actual_total = float(cycles.sum())
        rng = np.random.default_rng(config.seed)
        k_ceiling = min(config.k_max, len(profiles))

        try:
            if config.k_policy == "silhouette":
                k, labels, kmeans, sweep_errors = _sweep_by_silhouette(
                    reduced, cycles, actual_total, config, rng, k_ceiling
                )
            else:
                k, labels, kmeans, sweep_errors = _sweep_by_error(
                    reduced, cycles, actual_total, config, rng, k_ceiling
                )
        except InputValidationError:
            raise
        except (ValueError, FloatingPointError, np.linalg.LinAlgError) as exc:
            k, labels, kmeans, sweep_errors = _single_cluster_fallback(
                reduced, config
            )
            obs_count("pks.fallbacks")
            diagnostics.append(
                ValidationIssue(
                    "pks",
                    "clustering_fallback",
                    f"K sweep degenerated ({exc!r}); fell back to a single "
                    "all-kernels group",
                    severity="warning",
                )
            )
        groups = _build_groups(labels, profiles, reduced, kmeans, config, rng)
        projected = sum(
            group.representative_cycles * group.weight for group in groups
        )
        error = abs(projected - actual_total) / actual_total if actual_total else 0.0
        span.set(k=k)
    obs_count("pks.runs")

    return PKSResult(
        k=k,
        groups=tuple(groups),
        labels=labels,
        projection_error=error,
        sweep_errors=tuple(sweep_errors),
        pipeline=pipeline,
        kmeans=kmeans,
        diagnostics=tuple(diagnostics),
    )


def _single_cluster_fallback(
    reduced: np.ndarray, config: PKSConfig
) -> tuple[int, np.ndarray, KMeans, tuple[float, ...]]:
    """A guaranteed-valid K=1 clustering for degenerate feature spaces."""
    kmeans = KMeans(n_clusters=1, seed=config.seed)
    labels = kmeans.fit_predict(reduced)
    return 1, labels, kmeans, ()


def _sweep_by_error(
    reduced: np.ndarray,
    cycles: np.ndarray,
    actual_total: float,
    config: PKSConfig,
    rng: np.random.Generator,
    k_ceiling: int,
) -> tuple[int, np.ndarray, KMeans, tuple[float, ...]]:
    """The paper's sweep: smallest K whose projected error beats target."""
    best: tuple[float, int, np.ndarray, KMeans] | None = None
    sweep_errors: list[float] = []
    for k in range(config.k_min, k_ceiling + 1):
        kmeans = KMeans(n_clusters=k, n_init=2, max_iter=120, seed=config.seed)
        labels = kmeans.fit_predict(reduced)
        error = _projection_error(
            labels, cycles, reduced, kmeans, actual_total, config, rng
        )
        sweep_errors.append(error)
        if best is None or error < best[0]:
            best = (error, k, labels, kmeans)
        if error <= config.target_error:
            return k, labels, kmeans, tuple(sweep_errors)
    # No K met the target within the sweep; keep the best seen (the paper
    # prefers small K, but an unmet target means minimizing error).
    assert best is not None
    _, k, labels, kmeans = best
    return k, labels, kmeans, tuple(sweep_errors)


# Silhouette scoring is O(n^2); score on a deterministic subsample beyond
# this size (the index is a diagnostic, not a projection).
_SILHOUETTE_CAP = 2_000


def _sweep_by_silhouette(
    reduced: np.ndarray,
    cycles: np.ndarray,
    actual_total: float,
    config: PKSConfig,
    rng: np.random.Generator,
    k_ceiling: int,
) -> tuple[int, np.ndarray, KMeans, tuple[float, ...]]:
    """Extension sweep: K maximizing the feature-space silhouette.

    Needs no cycle measurements at all — the geometry-only alternative
    the error policy is benchmarked against in
    ``benchmarks/test_ablation_k_policy.py``.
    """
    from repro.mlkit import silhouette_score

    if reduced.shape[0] > _SILHOUETTE_CAP:
        stride = reduced.shape[0] // _SILHOUETTE_CAP + 1
        sample = np.arange(0, reduced.shape[0], stride)
    else:
        sample = np.arange(reduced.shape[0])

    best_score = -np.inf
    chosen: tuple[int, np.ndarray, KMeans] | None = None
    sweep_errors: list[float] = []
    for k in range(max(config.k_min, 2), k_ceiling + 1):
        kmeans = KMeans(n_clusters=k, n_init=2, max_iter=120, seed=config.seed)
        labels = kmeans.fit_predict(reduced)
        sweep_errors.append(
            _projection_error(
                labels, cycles, reduced, kmeans, actual_total, config, rng
            )
        )
        score = silhouette_score(reduced[sample], labels[sample])
        if score > best_score + 1e-12:
            best_score = score
            chosen = (k, labels, kmeans)
    if chosen is None:  # degenerate: only K=1 available
        kmeans = KMeans(n_clusters=1, seed=config.seed)
        labels = kmeans.fit_predict(reduced)
        sweep_errors.append(
            _projection_error(
                labels, cycles, reduced, kmeans, actual_total, config, rng
            )
        )
        chosen = (1, labels, kmeans)
    k, labels, kmeans = chosen
    return k, labels, kmeans, tuple(sweep_errors)


def _projection_error(
    labels: np.ndarray,
    cycles: np.ndarray,
    reduced: np.ndarray,
    kmeans: KMeans,
    actual_total: float,
    config: PKSConfig,
    rng: np.random.Generator,
) -> float:
    """Projected-vs-actual total-cycle error of one clustering."""
    if actual_total <= 0:
        return 0.0
    projected = 0.0
    for cluster in np.unique(labels):
        member_indices = np.flatnonzero(labels == cluster)
        representative = _pick_representative(
            member_indices, reduced, kmeans, int(cluster), config, rng
        )
        projected += float(cycles[representative]) * len(member_indices)
    return abs(projected - actual_total) / actual_total


def _pick_representative(
    member_indices: np.ndarray,
    reduced: np.ndarray,
    kmeans: KMeans,
    cluster: int,
    config: PKSConfig,
    rng: np.random.Generator,
) -> int:
    """Index (into the profile list) of the group's principal kernel."""
    if config.representative == "first":
        return int(member_indices[0])
    if config.representative == "random":
        return int(rng.choice(member_indices))
    # "center": member closest to the k-means centroid.
    assert kmeans.cluster_centers_ is not None
    center = kmeans.cluster_centers_[cluster]
    distances = np.linalg.norm(reduced[member_indices] - center, axis=1)
    return int(member_indices[int(np.argmin(distances))])


def _build_groups(
    labels: np.ndarray,
    profiles: Sequence[DetailedProfile],
    reduced: np.ndarray,
    kmeans: KMeans,
    config: PKSConfig,
    rng: np.random.Generator,
) -> list[KernelGroup]:
    groups: list[KernelGroup] = []
    cycles = np.asarray([profile.cycles for profile in profiles])
    for cluster in sorted(np.unique(labels)):
        member_indices = np.flatnonzero(labels == cluster)
        representative = _pick_representative(
            member_indices, reduced, kmeans, int(cluster), config, rng
        )
        groups.append(
            KernelGroup(
                group_id=int(cluster),
                representative_launch_id=profiles[representative].launch_id,
                member_launch_ids=tuple(
                    profiles[index].launch_id for index in member_indices
                ),
                weight=len(member_indices),
                mean_cycles=float(cycles[member_indices].mean()),
                representative_cycles=float(cycles[representative]),
            )
        )
    return groups
