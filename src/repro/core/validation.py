"""Shared input-validation layer: composable checks, strict/lenient modes.

Every ingestion boundary of the library — GPU/arch configuration, workload
and corpus specs, trace records, profiler counter vectors — funnels its
checks through this module so workload-side and core-side validation cannot
drift apart.  Checks produce structured :class:`ValidationIssue` records
instead of ad-hoc exceptions; a *mode* then decides what happens to them:

``strict``
    Any error-severity issue raises :class:`~repro.errors.InputValidationError`
    carrying the full issue list.

``lenient``
    Inputs are sanitized in place of rejection — non-finite kernel-spec
    fields are replaced by their schema defaults, non-finite counters are
    imputed from the finite values of the same column — and every repair is
    recorded as a warning-severity issue whose ``detail`` notes the original
    value (the provenance note).

The issue model is intentionally tiny and serializable: ``source`` names
the object being validated (a workload, a trace file, a config), ``check``
names the violated invariant, ``detail`` is human-readable context.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field, fields, replace

import numpy as np

from repro.errors import InputValidationError

__all__ = [
    "VALIDATION_MODES",
    "ValidationIssue",
    "ValidationReport",
    "compose",
    "resolve_mode",
    "finite_issue",
    "range_issue",
    "apply_mode",
    "validate_gpu_config",
    "launch_issues",
    "sanitize_launches",
    "counter_matrix_issues",
    "sanitize_counter_matrix",
    "sanitize_profiles",
]

#: The two validation behaviours threaded through the pipeline and the CLI.
VALIDATION_MODES: tuple[str, ...] = ("strict", "lenient")


def resolve_mode(mode: str) -> str:
    """Normalise and validate a validation-mode string."""
    resolved = str(mode).lower()
    if resolved not in VALIDATION_MODES:
        raise ValueError(
            f"validation mode must be one of {VALIDATION_MODES}, got {mode!r}"
        )
    return resolved


@dataclass(frozen=True)
class ValidationIssue:
    """One violated invariant (or one lenient-mode repair) in one input.

    ``severity`` is ``"error"`` for violations that strict mode rejects and
    ``"warning"`` for lenient-mode repairs and advisory findings.
    """

    source: str
    check: str
    detail: str
    severity: str = "error"

    @property
    def workload(self) -> str:
        """Alias kept for the corpus-validation callers, where the source
        of every issue is a workload name."""
        return self.source

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.source}: {self.check}: {self.detail}"


@dataclass(frozen=True)
class ValidationReport:
    """Aggregate outcome of validating a set of inputs."""

    checked: int
    issues: tuple[ValidationIssue, ...] = field(default_factory=tuple)

    @property
    def workloads_checked(self) -> int:
        """Alias kept for the corpus-validation callers."""
        return self.checked

    @property
    def errors(self) -> tuple[ValidationIssue, ...]:
        return tuple(issue for issue in self.issues if issue.severity == "error")

    @property
    def warnings(self) -> tuple[ValidationIssue, ...]:
        return tuple(issue for issue in self.issues if issue.severity == "warning")

    @property
    def ok(self) -> bool:
        """True when no error-severity issue was found (warnings allowed)."""
        return not self.errors

    def issues_for(self, source: str) -> list[ValidationIssue]:
        return [issue for issue in self.issues if issue.source == source]


Validator = Callable[[object], list[ValidationIssue]]


def compose(*validators: Validator) -> Validator:
    """Chain validators into one that concatenates their issue lists."""

    def run(obj: object) -> list[ValidationIssue]:
        issues: list[ValidationIssue] = []
        for validator in validators:
            issues.extend(validator(obj))
        return issues

    return run


def finite_issue(
    source: str, check: str, name: str, value: float
) -> ValidationIssue | None:
    """An error issue when ``value`` is NaN or infinite, else None."""
    if isinstance(value, (int, float)) and math.isfinite(value):
        return None
    return ValidationIssue(source, check, f"{name} is non-finite ({value!r})")


def range_issue(
    source: str,
    check: str,
    name: str,
    value: float,
    *,
    minimum: float | None = None,
    maximum: float | None = None,
) -> ValidationIssue | None:
    """An error issue when ``value`` is non-finite or outside the range."""
    bad = finite_issue(source, check, name, value)
    if bad is not None:
        return bad
    if minimum is not None and value < minimum:
        return ValidationIssue(source, check, f"{name}={value!r} is below {minimum}")
    if maximum is not None and value > maximum:
        return ValidationIssue(source, check, f"{name}={value!r} is above {maximum}")
    return None


def apply_mode(
    issues: Sequence[ValidationIssue], mode: str, *, context: str
) -> list[ValidationIssue]:
    """Enforce ``mode`` on a list of issues.

    In strict mode any error-severity issue raises
    :class:`InputValidationError`; in lenient mode the issues are returned
    unchanged for the caller to record as diagnostics.
    """
    mode = resolve_mode(mode)
    errors = [issue for issue in issues if issue.severity == "error"]
    if mode == "strict" and errors:
        head = "; ".join(str(issue) for issue in errors[:3])
        raise InputValidationError(
            f"{context}: {len(errors)} validation error(s): {head}",
            issues=tuple(issues),
        )
    return list(issues)


# ---------------------------------------------------------------------------
# GPU / architecture configuration
# ---------------------------------------------------------------------------


def validate_gpu_config(gpu) -> list[ValidationIssue]:
    """Finiteness + positivity checks over every numeric GPUConfig field."""
    issues: list[ValidationIssue] = []
    source = f"gpu:{getattr(gpu, 'name', '?')}"
    for spec_field in fields(gpu):
        value = getattr(gpu, spec_field.name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        bad = finite_issue(source, "gpu_finite", spec_field.name, float(value))
        if bad is not None:
            issues.append(bad)
        elif value <= 0:
            issues.append(
                ValidationIssue(
                    source, "gpu_positive", f"{spec_field.name}={value!r} must be > 0"
                )
            )
    return issues


# ---------------------------------------------------------------------------
# Kernel launches (workload builds + trace records)
# ---------------------------------------------------------------------------

# KernelSpec float fields that its __post_init__ cannot catch when the value
# is NaN (NaN fails every comparison, so range checks pass vacuously).
_SPEC_FLOAT_FIELDS = (
    "divergence_efficiency",
    "sectors_per_global_access",
    "l2_locality",
    "working_set_bytes",
    "duration_cv",
    "phase_drift",
    "cold_start_factor",
)


def _spec_defaults() -> dict[str, float]:
    from repro.gpu.kernels import KernelSpec

    return {
        spec_field.name: spec_field.default
        for spec_field in fields(KernelSpec)
        if spec_field.name in _SPEC_FLOAT_FIELDS
    }


def launch_issues(source: str, launches: Iterable) -> list[ValidationIssue]:
    """Finiteness checks over the spec + mix fields of every launch."""
    issues: list[ValidationIssue] = []
    for launch in launches:
        spec = launch.spec
        where = f"launch {launch.launch_id} ({spec.name})"
        for name in _SPEC_FLOAT_FIELDS:
            bad = finite_issue(
                source, "launch_finite", f"{where}.{name}", getattr(spec, name)
            )
            if bad is not None:
                issues.append(bad)
        for name, value in spec.mix.__dict__.items():
            bad = finite_issue(source, "launch_finite", f"{where}.mix.{name}", value)
            if bad is not None:
                issues.append(bad)
    return issues


def _sanitize_one_launch(source: str, launch) -> tuple[object, list[ValidationIssue]]:
    from repro.gpu.kernels import InstructionMix

    spec = launch.spec
    where = f"launch {launch.launch_id} ({spec.name})"
    issues: list[ValidationIssue] = []
    spec_patch: dict[str, float] = {}
    defaults = _spec_defaults()
    for name in _SPEC_FLOAT_FIELDS:
        value = getattr(spec, name)
        if not math.isfinite(value):
            spec_patch[name] = defaults[name]
            issues.append(
                ValidationIssue(
                    source,
                    "sanitized_launch",
                    f"{where}.{name}: non-finite {value!r} replaced by "
                    f"default {defaults[name]!r}",
                    severity="warning",
                )
            )

    mix_patch: dict[str, float] = {}
    for name, value in spec.mix.__dict__.items():
        if not math.isfinite(value):
            mix_patch[name] = 0.0
            issues.append(
                ValidationIssue(
                    source,
                    "sanitized_launch",
                    f"{where}.mix.{name}: non-finite {value!r} replaced by 0.0",
                    severity="warning",
                )
            )
    if mix_patch:
        counts = dict(spec.mix.__dict__)
        counts.update(mix_patch)
        if sum(counts.values()) <= 0:
            # A mix must contain work; keep a minimal integer op so the
            # sanitized spec still constructs.
            counts["int_ops"] = 1.0
            issues.append(
                ValidationIssue(
                    source,
                    "sanitized_launch",
                    f"{where}.mix: sanitized mix was empty; imputed int_ops=1.0",
                    severity="warning",
                )
            )
        spec_patch["mix"] = InstructionMix(**counts)

    if not spec_patch:
        return launch, issues
    return replace(launch, spec=replace(spec, **spec_patch)), issues


def sanitize_launches(
    source: str, launches: Sequence, mode: str = "strict"
) -> tuple[list, list[ValidationIssue]]:
    """Validate (strict) or repair (lenient) the launches of one app.

    Returns ``(launches, issues)``.  Strict mode raises
    :class:`InputValidationError` when any launch carries a non-finite
    spec or mix field; lenient mode replaces each bad field with its
    schema default and records a provenance warning.
    """
    mode = resolve_mode(mode)
    if mode == "strict":
        issues = launch_issues(source, launches)
        apply_mode(issues, "strict", context=source)
        return list(launches), issues
    sanitized: list = []
    issues = []
    for launch in launches:
        clean, launch_notes = _sanitize_one_launch(source, launch)
        sanitized.append(clean)
        issues.extend(launch_notes)
    return sanitized, issues


# ---------------------------------------------------------------------------
# Profiler counter vectors
# ---------------------------------------------------------------------------


def counter_matrix_issues(
    source: str,
    matrix: np.ndarray,
    names: Sequence[str] | None = None,
) -> list[ValidationIssue]:
    """Error issues for every non-finite entry of a counter matrix."""
    matrix = np.asarray(matrix, dtype=np.float64)
    issues: list[ValidationIssue] = []
    bad_rows, bad_cols = np.nonzero(~np.isfinite(matrix))
    for row, col in zip(bad_rows.tolist(), bad_cols.tolist(), strict=True):
        name = names[col] if names is not None and col < len(names) else f"col{col}"
        issues.append(
            ValidationIssue(
                source,
                "non_finite_counter",
                f"row {row}, counter {name}: {matrix[row, col]!r}",
            )
        )
    return issues


def sanitize_counter_matrix(
    source: str,
    matrix: np.ndarray,
    names: Sequence[str] | None = None,
    mode: str = "strict",
) -> tuple[np.ndarray, list[ValidationIssue]]:
    """Validate (strict) or impute (lenient) non-finite counter entries.

    Lenient repair imputes each bad entry with the median of the finite
    values in the same column (falling back to 0.0 when a whole column is
    non-finite), recording the original value as provenance.
    """
    mode = resolve_mode(mode)
    matrix = np.asarray(matrix, dtype=np.float64)
    finite = np.isfinite(matrix)
    if finite.all():
        return matrix, []
    issues = counter_matrix_issues(source, matrix, names)
    if mode == "strict":
        apply_mode(issues, "strict", context=source)
    repaired = matrix.copy()
    for col in range(matrix.shape[1]):
        column_finite = finite[:, col]
        if column_finite.all():
            continue
        fill = float(np.median(matrix[column_finite, col])) if column_finite.any() else 0.0
        repaired[~column_finite, col] = fill
    notes = [
        ValidationIssue(
            issue.source,
            "sanitized_counter",
            f"{issue.detail} imputed from column median",
            severity="warning",
        )
        for issue in issues
    ]
    return repaired, notes


def sanitize_profiles(
    source: str,
    profiles: Sequence,
    mode: str = "strict",
) -> tuple[list, list[ValidationIssue]]:
    """Validate or repair a list of DetailedProfile counter vectors + cycles.

    Strict mode raises on any non-finite counter or cycle reading; lenient
    mode imputes counters per column and replaces non-finite cycle readings
    with the median of the finite ones (1.0 when none are finite).
    """
    from repro.profiling.detailed import FEATURE_NAMES

    mode = resolve_mode(mode)
    if not profiles:
        return list(profiles), []
    matrix = np.stack([profile.feature_vector() for profile in profiles])
    cycles = np.asarray([profile.cycles for profile in profiles], dtype=np.float64)
    cycle_finite = np.isfinite(cycles)

    issues: list[ValidationIssue] = []
    if mode == "strict":
        issues.extend(counter_matrix_issues(source, matrix, FEATURE_NAMES))
        for index, ok in enumerate(cycle_finite.tolist()):
            if not ok:
                issues.append(
                    ValidationIssue(
                        source,
                        "non_finite_cycles",
                        f"profile {index} ({profiles[index].kernel_name}): "
                        f"cycles={profiles[index].cycles!r}",
                    )
                )
        apply_mode(issues, "strict", context=source)
        return list(profiles), issues

    repaired_matrix, issues = sanitize_counter_matrix(source, matrix, FEATURE_NAMES, mode)
    repaired_cycles = cycles.copy()
    if not cycle_finite.all():
        fill = float(np.median(cycles[cycle_finite])) if cycle_finite.any() else 1.0
        for index, ok in enumerate(cycle_finite.tolist()):
            if not ok:
                repaired_cycles[index] = fill
                issues.append(
                    ValidationIssue(
                        source,
                        "sanitized_cycles",
                        f"profile {index} ({profiles[index].kernel_name}): "
                        f"non-finite cycles {profiles[index].cycles!r} imputed "
                        f"with {fill}",
                        severity="warning",
                    )
                )
    if not issues:
        return list(profiles), []
    repaired = [
        replace(
            profile,
            counters=tuple(float(v) for v in repaired_matrix[index]),
            cycles=float(repaired_cycles[index]),
        )
        for index, profile in enumerate(profiles)
    ]
    return repaired, issues
