"""Feature pipeline: Table-2 counters -> log -> standardize -> PCA.

PKS clusters kernels in a reduced space: the twelve
microarchitecture-agnostic counters are log-compressed (counts span ten
orders of magnitude), standardized per column and projected onto the
principal components that carry 95% of the variance.  The fitted pipeline
is reused verbatim by two-level profiling and by the TBPoint baseline so
all methods cluster in a comparable space.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.validation import ValidationIssue
from repro.errors import NotFittedError
from repro.mlkit import PCA, StandardScaler, log_compress
from repro.profiling.detailed import FEATURE_NAMES, DetailedProfile

__all__ = ["FeaturePipeline", "profile_feature_matrix"]


def _feature_name(index: int) -> str:
    if 0 <= index < len(FEATURE_NAMES):
        return FEATURE_NAMES[index]
    return f"col{index}"


def profile_feature_matrix(profiles: Sequence[DetailedProfile]) -> np.ndarray:
    """Stack the Table-2 counter vectors of the given profiles."""
    if not profiles:
        raise ValueError("need at least one detailed profile")
    return np.stack([profile.feature_vector() for profile in profiles])


class FeaturePipeline:
    """log1p -> drop constant columns -> StandardScaler -> PCA.

    Zero-variance (constant) counter columns carry no clustering signal
    and, in the all-constant extreme, degenerate the PCA basis; the fitted
    pipeline drops them (``dropped_feature_indices_``) and records one
    warning-severity :class:`ValidationIssue` per dropped counter in
    ``diagnostics``.  When *every* column is constant (e.g. a
    single-kernel app) all columns are kept so PCA still yields its
    one-component degenerate basis.
    """

    def __init__(self, pca_variance: float = 0.95) -> None:
        self.scaler = StandardScaler()
        self.pca = PCA(n_components=pca_variance)
        self.dropped_feature_indices_: tuple[int, ...] = ()
        self.diagnostics: tuple[ValidationIssue, ...] = ()
        self._keep: np.ndarray | None = None
        self._fitted = False

    def fit(self, counters: np.ndarray) -> "FeaturePipeline":
        compressed = log_compress(counters)
        keep = compressed.std(axis=0) > 0.0
        if not np.any(keep):
            keep = np.ones(compressed.shape[1], dtype=bool)
            dropped: tuple[int, ...] = ()
            diagnostics: list[ValidationIssue] = []
            # A single profile is trivially constant; only warn when several
            # profiles genuinely carry no distinguishing signal.
            if compressed.shape[0] > 1:
                diagnostics = [
                    ValidationIssue(
                        "feature_pipeline",
                        "constant_feature_matrix",
                        "every counter column is constant; clustering has no "
                        "signal and PCA keeps a single degenerate component",
                        severity="warning",
                    )
                ]
        else:
            dropped = tuple(int(i) for i in np.flatnonzero(~keep))
            diagnostics = [
                ValidationIssue(
                    "feature_pipeline",
                    "zero_variance_feature",
                    f"counter {_feature_name(index)} is constant across all "
                    "profiles; dropped from the clustering space",
                    severity="warning",
                )
                for index in dropped
            ]
        self._keep = keep
        self.dropped_feature_indices_ = dropped
        self.diagnostics = tuple(diagnostics)
        standardized = self.scaler.fit_transform(compressed[:, keep])
        self.pca.fit(standardized)
        self._fitted = True
        return self

    def transform(self, counters: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("FeaturePipeline.transform called before fit")
        assert self._keep is not None
        compressed = log_compress(counters)[:, self._keep]
        return self.pca.transform(self.scaler.transform(compressed))

    def fit_transform(self, counters: np.ndarray) -> np.ndarray:
        return self.fit(counters).transform(counters)

    @property
    def n_components(self) -> int:
        if not self._fitted:
            raise NotFittedError("FeaturePipeline.n_components read before fit")
        return self.pca.n_components_
