"""Feature pipeline: Table-2 counters -> log -> standardize -> PCA.

PKS clusters kernels in a reduced space: the twelve
microarchitecture-agnostic counters are log-compressed (counts span ten
orders of magnitude), standardized per column and projected onto the
principal components that carry 95% of the variance.  The fitted pipeline
is reused verbatim by two-level profiling and by the TBPoint baseline so
all methods cluster in a comparable space.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import NotFittedError
from repro.mlkit import PCA, StandardScaler, log_compress
from repro.profiling.detailed import DetailedProfile

__all__ = ["FeaturePipeline", "profile_feature_matrix"]


def profile_feature_matrix(profiles: Sequence[DetailedProfile]) -> np.ndarray:
    """Stack the Table-2 counter vectors of the given profiles."""
    if not profiles:
        raise ValueError("need at least one detailed profile")
    return np.stack([profile.feature_vector() for profile in profiles])


class FeaturePipeline:
    """log1p -> StandardScaler -> PCA, with a scikit-learn-style API."""

    def __init__(self, pca_variance: float = 0.95) -> None:
        self.scaler = StandardScaler()
        self.pca = PCA(n_components=pca_variance)
        self._fitted = False

    def fit(self, counters: np.ndarray) -> "FeaturePipeline":
        compressed = log_compress(counters)
        standardized = self.scaler.fit_transform(compressed)
        self.pca.fit(standardized)
        self._fitted = True
        return self

    def transform(self, counters: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("FeaturePipeline.transform called before fit")
        compressed = log_compress(counters)
        return self.pca.transform(self.scaler.transform(compressed))

    def fit_transform(self, counters: np.ndarray) -> np.ndarray:
        return self.fit(counters).transform(counters)

    @property
    def n_components(self) -> int:
        if not self._fitted:
            raise NotFittedError("FeaturePipeline.n_components read before fit")
        return self.pca.n_components_
