"""Principal Kernel Projection (PKP): intra-kernel reduction.

PKP watches the simulator's windowed IPC signal and declares the kernel
*quasi-stable* when the rolling relative standard deviation (std/mean
over the last 3000 cycles) drops below the user's threshold ``s``.  To
keep contention representative, stability only counts once at least one
full *wave* of thread blocks — enough to fill every SM at the kernel's
occupancy — has retired; grids smaller than a wave skip that condition
(they never exhibit block turnover phases, per §3.2).

Once stable, simulation stops and the kernel's totals are projected
linearly from the amount of work remaining: with ``f`` of ``g`` blocks
finished after ``c`` cycles, the projected total is ``c * g / f``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.config import PKPConfig
from repro.errors import SimulationError
from repro.gpu.architectures import GPUConfig
from repro.gpu.kernels import KernelLaunch
from repro.gpu.occupancy import compute_occupancy
from repro.obs import obs_count, obs_span
from repro.sim.engine import KernelSimResult, WindowSample
from repro.sim.simulator import Simulator

__all__ = ["IPCStabilityMonitor", "PKPProjection", "project_result", "run_pkp"]


class IPCStabilityMonitor:
    """Online IPC-stability detector implementing the engine StopMonitor.

    Parameters
    ----------
    wave_size:
        Thread blocks needed to fill the GPU once at this kernel's
        occupancy.
    grid_blocks:
        Total blocks in the launch (sub-wave grids skip the wave rule).
    config:
        PKP parameters (threshold ``s``, rolling window width...).
    """

    def __init__(
        self,
        wave_size: int,
        grid_blocks: int,
        config: PKPConfig | None = None,
    ) -> None:
        if wave_size < 1:
            raise SimulationError("wave_size must be >= 1")
        self.config = config if config is not None else PKPConfig()
        self.wave_size = wave_size
        self.grid_blocks = grid_blocks
        self._window: deque[float] = deque(maxlen=self.config.rolling_samples)
        self._quiet_streak = 0
        self.stable_at_cycle: float | None = None
        self.stop_cycle: float | None = None
        #: Window samples ingested; a plain int (not a tracer counter) so
        #: the per-window hot path stays untouched — run_pkp reports the
        #: total once per kernel.
        self.windows_observed = 0

    @property
    def wave_rule_active(self) -> bool:
        """Whether the finished-wave precondition applies to this kernel."""
        return self.config.enforce_wave and self.grid_blocks >= self.wave_size

    def relative_std(self) -> float | None:
        """Rolling std/mean of IPC, or None until the window fills."""
        if len(self._window) < self.config.rolling_samples:
            return None
        values = np.asarray(self._window)
        mean = float(values.mean())
        if not np.isfinite(mean) or mean <= 0.0:
            return None
        spread = float(values.std() / mean)
        return spread if np.isfinite(spread) else None

    def observe(self, sample: WindowSample) -> bool:
        """Ingest one window sample; True stops the simulation.

        The paper expresses ``s`` in raw IPC units against signals whose
        magnitude is tens of IPC; on our normalized (relative) signal the
        equivalent criterion is ``std/mean < s/10`` — s=0.25 means the
        rolling IPC varies by under 2.5% of its mean.  Regular kernels
        cross it right after their first wave; BFS-like kernels with
        double-digit jitter effectively never do, which is why the paper
        sees PKP gains concentrated in the regular, long-running apps.
        """
        self.windows_observed += 1
        if not np.isfinite(sample.ipc):
            # A poisoned window sample must never end the simulation early;
            # treat it as maximal instability and restart the streak.
            self._window.clear()
            self._quiet_streak = 0
            return False
        self._window.append(sample.ipc)
        spread = self.relative_std()
        if spread is None or spread >= self.config.stability_threshold / 10.0:
            self._quiet_streak = 0
            return False
        self._quiet_streak += 1
        if self._quiet_streak < self.config.consecutive_windows:
            return False
        if self.stable_at_cycle is None:
            self.stable_at_cycle = sample.cycle
        if self.wave_rule_active and sample.blocks_finished < self.wave_size:
            # Quasi-stable, but the first wave has not fully turned over
            # yet; keep simulating until it has.
            return False
        self.stop_cycle = sample.cycle
        return True


@dataclass(frozen=True)
class PKPProjection:
    """A kernel's totals after Principal Kernel Projection.

    When the monitor never fired (the kernel ran to completion) the
    projected values equal the simulated ones and ``stopped_early`` is
    False.

    ``relative_std_at_stop`` is the rolling relative standard deviation
    the monitor observed when it fired (None for completed runs); it
    feeds the projection's confidence interval.
    """

    result: KernelSimResult
    projected_cycles: float
    projected_instructions: float
    projected_dram_bytes: float
    stopped_early: bool
    relative_std_at_stop: float | None = None

    def confidence_interval(
        self, z_score: float = 1.96
    ) -> tuple[float, float]:
        """Cycle bounds implied by the residual IPC variability at stop.

        The linear projection extends the observed rate over the
        remaining work; the rolling relative standard deviation bounds
        how far the true rate may sit from the observed one, so the
        interval widens with both the residual variability and the
        unsimulated fraction.  Completed runs return a degenerate
        interval.
        """
        if not self.stopped_early or self.relative_std_at_stop is None:
            return (self.projected_cycles, self.projected_cycles)
        remaining_fraction = 1.0 - (
            self.result.cycles / self.projected_cycles
            if self.projected_cycles > 0
            else 0.0
        )
        margin = (
            z_score
            * self.relative_std_at_stop
            * remaining_fraction
            * self.projected_cycles
        )
        return (
            max(self.result.cycles, self.projected_cycles - margin),
            self.projected_cycles + margin,
        )

    @property
    def simulated_cycles(self) -> float:
        """Simulation cost actually paid for this kernel."""
        return self.result.cycles

    @property
    def speedup(self) -> float:
        """Projected cycles over simulated cycles (intra-kernel speedup)."""
        if self.result.cycles <= 0:
            return 1.0
        return self.projected_cycles / self.result.cycles

    @property
    def projected_ipc(self) -> float:
        if self.projected_cycles <= 0:
            return 0.0
        return self.projected_instructions / self.projected_cycles

    @property
    def projected_dram_util_fraction(self) -> float:
        """Projected DRAM bytes per cycle (divide by peak for percent)."""
        if self.projected_cycles <= 0:
            return 0.0
        return self.projected_dram_bytes / self.projected_cycles


def project_result(
    result: KernelSimResult, relative_std_at_stop: float | None = None
) -> PKPProjection:
    """Project a (possibly truncated) kernel run to completion.

    Multi-wave kernels scale linearly by the unfinished thread blocks —
    the paper's occupancy-based projection.  Sub-wave kernels (which the
    monitor may stop before any block retires) scale by the remaining
    warp instructions instead, since every block is already resident and
    progressing.
    """
    if not result.stopped_early:
        return PKPProjection(
            result=result,
            projected_cycles=result.cycles,
            projected_instructions=result.warp_instructions,
            projected_dram_bytes=result.dram_bytes,
            stopped_early=False,
        )
    multi_wave = result.grid_blocks > result.perf.occupancy.wave_size
    if multi_wave and result.blocks_finished > 0:
        scale = result.grid_blocks / result.blocks_finished
    else:
        # Sub-wave: every block is already resident and progressing in
        # parallel, so block counts misrepresent progress — scale by the
        # remaining warp instructions instead.
        total_insts = result.perf.warp_insts_per_block * result.grid_blocks
        scale = (
            total_insts / result.warp_instructions
            if result.warp_instructions > 0
            else 1.0
        )
    if not np.isfinite(scale) or scale <= 0.0:
        # A non-finite or non-positive ratio means the denominators were
        # degenerate; projecting by anything other than identity would
        # fabricate cycles.
        scale = 1.0
    return PKPProjection(
        result=result,
        projected_cycles=result.cycles * scale,
        projected_instructions=result.warp_instructions * scale,
        projected_dram_bytes=result.dram_bytes * scale,
        stopped_early=True,
        relative_std_at_stop=relative_std_at_stop,
    )


def run_pkp(
    simulator: Simulator,
    launch: KernelLaunch,
    config: PKPConfig | None = None,
    *,
    collect_series: bool = False,
) -> PKPProjection:
    """Simulate one launch under PKP and project its totals."""
    config = config if config is not None else PKPConfig()
    monitor = make_monitor(launch, simulator.gpu, config)
    with obs_span("pkp.kernel", kernel=launch.spec.name) as span:
        result = simulator.run_kernel(
            launch,
            monitor=monitor,
            collect_series=collect_series,
            window_cycles=config.window_cycles,
        )
        projection = project_result(
            result, relative_std_at_stop=monitor.relative_std()
        )
        span.set(stopped_early=projection.stopped_early)
    obs_count("pkp.kernels")
    obs_count("pkp.windows_observed", monitor.windows_observed)
    if projection.stopped_early:
        obs_count("pkp.stopped_early")
    return projection


def make_monitor(
    launch: KernelLaunch,
    gpu: GPUConfig,
    config: PKPConfig | None = None,
) -> IPCStabilityMonitor:
    """Build a stability monitor sized to the launch's occupancy wave."""
    occupancy = compute_occupancy(launch.spec, gpu)
    return IPCStabilityMonitor(
        wave_size=occupancy.wave_size,
        grid_blocks=launch.grid_blocks,
        config=config,
    )
