"""Warp-level SM microsimulator: one thread block, cycle by cycle.

The block-level engine treats a thread block as a single duration drawn
from the roofline model.  This module goes one level deeper for the
simulator use cases the paper's introduction motivates — debugging and
bottleneck analysis: it executes one block's warps through an in-order
SM pipeline with an issue-width limit, per-class instruction latencies,
a bounded pool of in-flight memory requests (MSHR-style) and a DRAM
bandwidth token bucket, and reports where the cycles went.

It deliberately stays small (one block, one SM) — its jobs are

* producing per-kernel *stall breakdowns* (`bottleneck_report`), and
* cross-validating the roofline's per-block durations
  (`benchmarks/test_microsim_validation.py`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.gpu.architectures import GPUConfig, VOLTA_V100
from repro.gpu.kernels import KernelSpec
from repro.sim.memory import SECTOR_BYTES, l2_hit_rate

__all__ = ["MicrosimConfig", "MicrosimResult", "SMMicrosimulator"]

# Issue-to-ready latencies per instruction class, in cycles.
_ALU_LATENCY = 4
_SHARED_LATENCY = 24
_TENSOR_LATENCY = 16
_L2_HIT_LATENCY = 190
_DRAM_LATENCY = 450


@dataclass(frozen=True)
class MicrosimConfig:
    """Microsimulator knobs.

    Attributes
    ----------
    max_warp_instructions:
        Per-warp instruction budget; longer streams are truncated and the
        measured duration scaled back up (keeps runs sub-second while the
        steady-state mix dominates).
    mshr_entries:
        Maximum in-flight global-memory requests per SM.
    warp_outstanding_loads:
        Maximum non-blocking loads one warp keeps in flight (its
        memory-level parallelism).
    dependence_distance:
        Instructions between a load and its first consumer; the warp only
        stalls on a load once it has advanced this far past it.
    ilp:
        Independent instructions between execution dependencies: only
        every ``ilp``-th ALU/shared/tensor instruction pays its full
        latency, the rest issue back-to-back.
    scheduler:
        Warp scheduling policy: "gto" (greedy-then-oldest: a static
        oldest-first priority) or "rr" (round-robin: the issue scan
        rotates its starting warp each cycle).
    dram_share:
        Fraction of the GPU's DRAM bandwidth this SM may consume (1/SMs
        under full-machine contention, up to 1.0 for a lone block).
    """

    max_warp_instructions: int = 2_000
    mshr_entries: int = 48
    warp_outstanding_loads: int = 6
    dependence_distance: int = 24
    ilp: int = 4
    scheduler: str = "gto"
    dram_share: float = 1.0

    def __post_init__(self) -> None:
        if self.max_warp_instructions < 1:
            raise SimulationError("max_warp_instructions must be >= 1")
        if self.mshr_entries < 1:
            raise SimulationError("mshr_entries must be >= 1")
        if self.warp_outstanding_loads < 1:
            raise SimulationError("warp_outstanding_loads must be >= 1")
        if self.dependence_distance < 1:
            raise SimulationError("dependence_distance must be >= 1")
        if self.ilp < 1:
            raise SimulationError("ilp must be >= 1")
        if self.scheduler not in ("gto", "rr"):
            raise SimulationError("scheduler must be 'gto' or 'rr'")
        if not 0.0 < self.dram_share <= 1.0:
            raise SimulationError("dram_share must be in (0, 1]")


@dataclass(frozen=True)
class MicrosimResult:
    """One block's microarchitectural execution summary.

    ``stall_cycles`` categorizes cycles: "memory" / "execution" are
    cycles in which *nothing* issued because every unfinished warp waited
    on that resource; "issue" counts cycles that saturated the SM's issue
    width (throughput-limited, not stalled).  Cycles that issued below
    the width without being empty are uncategorized slack.
    """

    cycles: int
    warp_instructions: float
    issued_instructions: int
    stall_cycles: dict[str, int]
    dram_bytes: float
    truncation_scale: float

    @property
    def ipc(self) -> float:
        """Warp instructions issued per cycle on this SM."""
        return self.issued_instructions / self.cycles if self.cycles else 0.0

    @property
    def scaled_cycles(self) -> float:
        """Cycles projected back to the untruncated instruction stream."""
        return self.cycles * self.truncation_scale

    @property
    def dominant_stall(self) -> str:
        return max(self.stall_cycles, key=self.stall_cycles.get)

    def stall_fraction(self, kind: str) -> float:
        total = sum(self.stall_cycles.values())
        return self.stall_cycles.get(kind, 0) / total if total else 0.0


class SMMicrosimulator:
    """Cycle-level model of one SM executing one thread block."""

    def __init__(
        self, gpu: GPUConfig = VOLTA_V100, config: MicrosimConfig | None = None
    ) -> None:
        self.gpu = gpu
        self.config = config if config is not None else MicrosimConfig()

    # ------------------------------------------------------------------

    def _instruction_stream(
        self, spec: KernelSpec
    ) -> tuple[list[tuple[str, int]], float]:
        """Deterministic per-warp stream of (class, latency) pairs.

        Classes are interleaved round-robin in proportion to the mix, the
        way compilers schedule independent work between loads, and
        truncated to the configured budget (returning the scale factor).
        """
        mix = spec.mix
        class_latency = {
            "alu": _ALU_LATENCY,
            "shared": _SHARED_LATENCY,
            "tensor": _TENSOR_LATENCY,
            "global": 0,  # resolved per access by the cache model
        }
        # Without tensor cores each matrix op lowers to several FMA
        # instructions: same work, several times the issue slots.
        tensor_expansion = 1.0 if spec.uses_tensor_cores else 4.0
        counts = {
            "alu": mix.fp_ops
            + mix.int_ops
            + mix.control_ops
            + (0.0 if spec.uses_tensor_cores else mix.tensor_ops * tensor_expansion),
            "shared": mix.shared_loads + mix.shared_stores,
            "tensor": mix.tensor_ops if spec.uses_tensor_cores else 0.0,
            "global": mix.global_loads
            + mix.global_stores
            + mix.local_loads
            + mix.global_atomics,
        }
        # Control divergence issues each instruction once per active
        # lane subset: the warp-level stream grows by 1/efficiency.
        divergence_expansion = 1.0 / spec.divergence_efficiency
        counts = {
            name: value * divergence_expansion for name, value in counts.items()
        }
        total = sum(counts.values())
        budget = min(self.config.max_warp_instructions, int(round(total)))
        scale = total / budget if budget else 1.0

        # Largest-remainder interleave of the classes across the budget.
        stream: list[tuple[str, int]] = []
        errors = dict.fromkeys(counts, 0.0)
        for _ in range(budget):
            for name in counts:
                errors[name] += counts[name] / total
            pick = max(errors, key=errors.get)  # type: ignore[arg-type]
            errors[pick] -= 1.0
            stream.append((pick, class_latency[pick]))
        return stream, scale

    # ------------------------------------------------------------------

    def run_block(
        self, spec: KernelSpec, resident_blocks: int | None = None
    ) -> MicrosimResult:
        """Execute one SM's resident complement of ``spec`` blocks.

        ``resident_blocks`` defaults to the kernel's occupancy limit —
        a lone block cannot hide 400-cycle memory latencies, and real SMs
        never run one when more are available.  The returned ``cycles``
        approximates the duration of one block at that residency.
        """
        from repro.gpu.occupancy import compute_occupancy

        if resident_blocks is None:
            resident_blocks = compute_occupancy(spec, self.gpu).blocks_per_sm
        if resident_blocks < 1:
            raise SimulationError("resident_blocks must be >= 1")
        warps_per_block = -(-spec.threads_per_block // self.gpu.warp_size)
        warps = warps_per_block * resident_blocks
        stream, scale = self._instruction_stream(spec)
        if not stream:
            raise SimulationError("kernel has no instructions to simulate")

        hit_rate = l2_hit_rate(spec, self.gpu)
        bytes_per_access = spec.sectors_per_global_access * SECTOR_BYTES
        dram_bytes_per_cycle = (
            self.gpu.dram_bytes_per_cycle * self.config.dram_share
        )
        # Deterministic hit/miss sequence shared by all warps (SIMT).
        rng = np.random.default_rng(spec.signature() % 2**63)
        n_global = sum(1 for kind, _ in stream if kind == "global")
        # Vectorized hit/miss draw; plain bools for the issue loop.
        hits = (rng.random(max(n_global, 1)) < hit_rate).tolist()
        n_hits = len(hits)

        import heapq
        from collections import deque

        n_stream = len(stream)
        # Pre-resolve per-pc issue behaviour so the hot loop never
        # re-derives it: whether the instruction is a global access and
        # the effective post-issue latency (1 for the independent
        # instructions between ``ilp`` dependency chains).
        is_global = [kind == "global" for kind, _ in stream]
        eff_latency = [
            1 if (not is_global[pc] and pc % self.config.ilp != 0) else latency
            for pc, (_, latency) in enumerate(stream)
        ]

        program_counter = [0] * warps  # next instruction index per warp
        ready_at = [0] * warps  # cycle the warp may issue next (ALU deps)
        global_seen = [0] * warps  # per-warp global-access counter
        # Per-warp outstanding loads: deque of (completion cycle, pc at issue).
        outstanding: list[deque] = [deque() for _ in range(warps)]
        sm_inflight = 0  # MSHR occupancy across the SM
        inflight_completions: list[int] = []  # min-heap of completion cycles
        dram_tokens = 0.0
        issued = 0
        stalls = {"memory": 0, "execution": 0, "issue": 0}
        total_dram_bytes = 0.0

        cycle = 0
        remaining = warps
        issue_width = int(round(self.gpu.issue_rate_per_sm))
        distance = self.config.dependence_distance
        round_robin = self.config.scheduler == "rr"
        # Rotating scan windows over a doubled index list avoid per-cycle
        # modulo arithmetic for the round-robin scheduler.
        doubled = list(range(warps)) * 2
        horizon = 10_000_000  # hard safety net against livelock

        while remaining > 0 and cycle < horizon:
            dram_tokens = min(
                dram_tokens + dram_bytes_per_cycle, 8.0 * dram_bytes_per_cycle
            )
            while inflight_completions and inflight_completions[0] <= cycle:
                heapq.heappop(inflight_completions)
                sm_inflight -= 1

            issued_now = 0
            waiting_on_memory = 0
            waiting_on_execution = 0
            if round_robin:
                start = cycle % warps
                scan_order = doubled[start : start + warps]
            else:  # gto: static oldest-first priority
                scan_order = range(warps)
            for warp in scan_order:
                pc = program_counter[warp]
                if pc >= n_stream:
                    continue
                # Retire completed loads from the warp's queue.
                queue = outstanding[warp]
                while queue and queue[0][0] <= cycle:
                    queue.popleft()
                # A load's first consumer sits `distance` instructions
                # later; reaching it before completion blocks the warp.
                if queue and pc - queue[0][1] >= distance:
                    waiting_on_memory += 1
                    continue
                if ready_at[warp] > cycle:
                    waiting_on_execution += 1
                    continue
                if issued_now >= issue_width:
                    continue
                if is_global[pc]:
                    if (
                        len(queue) >= self.config.warp_outstanding_loads
                        or sm_inflight >= self.config.mshr_entries
                    ):
                        waiting_on_memory += 1
                        continue
                    hit = hits[global_seen[warp] % n_hits]
                    global_seen[warp] += 1
                    if hit:
                        mem_latency = _L2_HIT_LATENCY
                    else:
                        mem_latency = _DRAM_LATENCY
                        total_dram_bytes += bytes_per_access
                        if dram_tokens >= bytes_per_access:
                            dram_tokens -= bytes_per_access
                        else:
                            # Bandwidth-saturated: serve on token refill.
                            deficit = bytes_per_access - dram_tokens
                            dram_tokens = 0.0
                            mem_latency += int(deficit / dram_bytes_per_cycle)
                    queue.append((cycle + mem_latency, pc))
                    heapq.heappush(inflight_completions, cycle + mem_latency)
                    sm_inflight += 1
                    latency = 1  # the load itself issues in one cycle
                else:
                    latency = eff_latency[pc]
                program_counter[warp] += 1
                ready_at[warp] = cycle + latency
                issued += 1
                issued_now += 1
                if program_counter[warp] >= n_stream:
                    remaining -= 1

            if issued_now == 0:
                if waiting_on_memory >= waiting_on_execution:
                    stalls["memory"] += 1
                else:
                    stalls["execution"] += 1
            elif issued_now >= issue_width:
                # The cycle was limited by issue throughput, not stalls.
                stalls["issue"] += 1
            cycle += 1

        if cycle >= horizon:
            raise SimulationError("microsimulation exceeded its cycle horizon")

        return MicrosimResult(
            cycles=cycle,
            warp_instructions=warps * len(stream) * scale,
            issued_instructions=issued,
            stall_cycles=stalls,
            dram_bytes=total_dram_bytes * scale,
            truncation_scale=scale,
        )

    def bottleneck_report(self, spec: KernelSpec) -> str:
        """Human-readable one-SM bottleneck summary at full occupancy."""
        result = self.run_block(spec)
        lines = [
            f"kernel {spec.name!r} on {self.gpu.name} "
            "(one SM at full occupancy)",
            f"  cycles:            {result.cycles}"
            + (
                f" (x{result.truncation_scale:.1f} stream truncation)"
                if result.truncation_scale > 1.001
                else ""
            ),
            f"  warp IPC:          {result.ipc:.2f}",
            f"  dominant stall:    {result.dominant_stall}",
        ]
        for kind in ("memory", "execution", "issue"):
            lines.append(
                f"  {kind:9s} stalls: {result.stall_fraction(kind):6.1%}"
            )
        return "\n".join(lines)
