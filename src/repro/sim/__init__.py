"""Simulation substrate: performance model, DES engine, silicon executor."""

from repro.sim.calibration import (
    CalibrationResult,
    calibrate_model_error,
    measure_mean_error,
)
from repro.sim.engine import (
    DEFAULT_WINDOW_CYCLES,
    DURATION_CHUNK_BLOCKS,
    KernelSimResult,
    StopMonitor,
    WindowSample,
    block_durations,
    compute_shard_partials,
    fold_chunk_ranges,
    simulate_kernel,
)
from repro.sim.faults import FaultPlan, InjectedFault
from repro.sim.memory import SECTOR_BYTES, MemoryProfile, build_memory_profile
from repro.sim.microsim import MicrosimConfig, MicrosimResult, SMMicrosimulator
from repro.sim.parallel import (
    ExecutionBackend,
    FaultPolicy,
    ProcessPoolBackend,
    SerialBackend,
    TaskFailure,
    TaskOutcome,
    auto_worker_count,
    resolve_backend,
)
from repro.sim.perfmodel import (
    BLOCK_LATENCY_FLOOR,
    KERNEL_LAUNCH_OVERHEAD,
    KernelPerformance,
    analytic_kernel_cycles,
    analyze_kernel,
)
from repro.sim.silicon import SiliconExecutor
from repro.sim.simulator import ModelErrorConfig, Simulator
from repro.sim.stats import AppRunResult, KernelRecord

__all__ = [
    "AppRunResult",
    "BLOCK_LATENCY_FLOOR",
    "CalibrationResult",
    "calibrate_model_error",
    "DEFAULT_WINDOW_CYCLES",
    "DURATION_CHUNK_BLOCKS",
    "ExecutionBackend",
    "FaultPlan",
    "FaultPolicy",
    "InjectedFault",
    "KERNEL_LAUNCH_OVERHEAD",
    "KernelPerformance",
    "KernelRecord",
    "KernelSimResult",
    "MemoryProfile",
    "MicrosimConfig",
    "MicrosimResult",
    "ModelErrorConfig",
    "ProcessPoolBackend",
    "SMMicrosimulator",
    "SECTOR_BYTES",
    "SerialBackend",
    "SiliconExecutor",
    "Simulator",
    "StopMonitor",
    "TaskFailure",
    "TaskOutcome",
    "WindowSample",
    "analytic_kernel_cycles",
    "analyze_kernel",
    "auto_worker_count",
    "block_durations",
    "compute_shard_partials",
    "fold_chunk_ranges",
    "build_memory_profile",
    "measure_mean_error",
    "resolve_backend",
    "simulate_kernel",
]
