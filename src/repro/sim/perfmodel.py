"""Shared performance kernel: how long one thread block takes.

Both the silicon executor (closed-form) and the discrete-event simulator
derive per-block durations from this module, so silicon and simulation
disagree only where the simulator's injected modeling error says they
should, not because they embody different performance models.

The model is a contention-aware roofline at block granularity:

* ``compute``  — the block's warp instructions issued at the SM's rate,
  stretched by the number of co-resident blocks sharing the SM;
* ``memory``   — the block's DRAM bytes served at the GPU's bandwidth,
  stretched by the total number of resident blocks sharing DRAM;
* ``latency``  — a floor modelling launch and memory latency that no block
  goes below.

A block's duration is the max of the three.

Known corner: ramp/drain overhead is charged in units of the steady-state
block duration, which grows with residency.  For memory-bound or
straggler-dominated kernels with only a couple of waves this can make a
*smaller* machine finish a few percent sooner — a deliberate simplicity
trade-off that both the silicon model and the simulator share, so no
method sees it as error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.architectures import GPUConfig
from repro.gpu.kernels import KernelLaunch, KernelSpec
from repro.gpu.occupancy import Occupancy, compute_occupancy
from repro.sim.memory import MemoryProfile, build_memory_profile

__all__ = [
    "BLOCK_LATENCY_FLOOR",
    "KERNEL_LAUNCH_OVERHEAD",
    "KernelPerformance",
    "analyze_kernel",
    "analytic_kernel_cycles",
]

# Minimum cycles any thread block occupies an SM: pipeline fill, first
# memory round-trips, CTA launch handshake.
BLOCK_LATENCY_FLOOR = 1_200.0
# Cycles the GPU sits idle between back-to-back kernel launches (driver
# and launch latency), charged once per launch at the application level.
KERNEL_LAUNCH_OVERHEAD = 2_500.0


@dataclass(frozen=True)
class KernelPerformance:
    """Steady-state performance summary of one launch on one GPU.

    Attributes
    ----------
    occupancy:
        Residency limits for the kernel's spec.
    memory:
        Per-block traffic profile.
    resident_blocks:
        Blocks actually co-resident (grid-limited below one full wave).
    warp_insts_per_block:
        Issued warp instructions per block (divergence-adjusted).
    base_block_cycles:
        Duration of an average block at steady-state contention.
    bottleneck:
        "compute", "memory" or "latency" — which roofline bound.
    """

    occupancy: Occupancy
    memory: MemoryProfile
    resident_blocks: int
    warp_insts_per_block: float
    base_block_cycles: float
    bottleneck: str

    @property
    def steady_state_ipc(self) -> float:
        """GPU-wide warp IPC while the kernel keeps the machine full."""
        return self.resident_blocks * self.warp_insts_per_block / self.base_block_cycles

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Steady-state DRAM traffic rate of the kernel."""
        return (
            self.resident_blocks
            * self.memory.dram_bytes_per_block
            / self.base_block_cycles
        )


def _warp_issue_cycles(spec: KernelSpec, gpu: GPUConfig) -> tuple[float, float]:
    """Return (warp instructions per block, solo issue cycles per block)."""
    threads = spec.threads_per_block
    thread_insts = threads * spec.mix.per_thread_total
    warp_insts = thread_insts / (gpu.warp_size * spec.divergence_efficiency)

    tensor_warp_insts = (
        threads
        * spec.mix.tensor_ops
        / (gpu.warp_size * spec.divergence_efficiency)
    )
    plain_warp_insts = warp_insts - tensor_warp_insts
    tensor_rate_factor = gpu.tensor_speedup if spec.uses_tensor_cores else 1.0
    issue_cycles = (
        plain_warp_insts + tensor_warp_insts / tensor_rate_factor
    ) / gpu.issue_rate_per_sm
    return warp_insts, issue_cycles


def analyze_kernel(launch: KernelLaunch, gpu: GPUConfig) -> KernelPerformance:
    """Steady-state per-block duration and bottleneck of ``launch`` on ``gpu``."""
    spec = launch.spec
    occupancy: Occupancy = compute_occupancy(spec, gpu)
    resident = min(launch.grid_blocks, occupancy.wave_size)
    memory: MemoryProfile = build_memory_profile(spec, gpu)

    warp_insts, issue_cycles = _warp_issue_cycles(spec, gpu)

    # With fewer resident blocks than SMs, each block has an SM (and its
    # issue slots) to itself; above that they multiplex.
    blocks_sharing_sm = max(1.0, resident / gpu.num_sms)
    compute_cycles = issue_cycles * blocks_sharing_sm
    memory_cycles = (
        memory.dram_bytes_per_block * resident / gpu.dram_bytes_per_cycle
    )

    candidates = {
        "compute": compute_cycles,
        "memory": memory_cycles,
        "latency": BLOCK_LATENCY_FLOOR,
    }
    bottleneck = max(candidates, key=candidates.get)  # type: ignore[arg-type]

    return KernelPerformance(
        occupancy=occupancy,
        memory=memory,
        resident_blocks=resident,
        warp_insts_per_block=warp_insts,
        base_block_cycles=candidates[bottleneck],
        bottleneck=bottleneck,
    )


def analytic_kernel_cycles(launch: KernelLaunch, gpu: GPUConfig) -> float:
    """Closed-form total cycles for ``launch`` on ``gpu`` (the silicon truth).

    Steady-state throughput applied over all waves, plus half a block
    duration of ramp/drain, plus the mean phase-drift stretch.  O(1) per
    launch, so full MLPerf-scale applications are costed in milliseconds.
    """
    perf = analyze_kernel(launch, gpu)
    spec = launch.spec
    waves = launch.grid_blocks / perf.resident_blocks
    phase_mean = 1.0 + spec.phase_drift / 2.0
    if launch.grid_blocks <= perf.resident_blocks:
        # One partial wave: every block runs in parallel and the kernel
        # ends when the *slowest* block does, so irregular kernels are
        # straggler-dominated.
        straggler = _expected_extreme(spec.duration_cv, launch.grid_blocks)
        total = (
            perf.base_block_cycles
            * phase_mean
            * (1.0 + spec.cold_start_factor)
            * straggler
        )
    else:
        # Steady state over all waves, the cold first wave's extra cycles,
        # half a block of ramp/drain skew, and the final wave's straggler.
        drain_straggler = _expected_extreme(spec.duration_cv, perf.resident_blocks)
        total = perf.base_block_cycles * (
            waves * phase_mean
            + spec.cold_start_factor
            + 0.5
            + (drain_straggler - 1.0)
        )
    return total


def _expected_extreme(duration_cv: float, n_blocks: int) -> float:
    """E[max of n unit-mean log-normal block durations], approximately.

    Uses the standard extreme-value approximation
    ``exp(sigma * sqrt(2 ln n) - sigma^2 / 2)`` with the log-normal sigma
    implied by the coefficient of variation.  Regular kernels (cv ~ 0)
    return ~1; a BFS-like kernel (cv 0.7) with 256 parallel blocks is
    straggler-stretched several-fold.
    """
    if duration_cv <= 0 or n_blocks <= 1:
        return 1.0
    sigma = math.sqrt(math.log1p(duration_cv**2))
    return math.exp(sigma * math.sqrt(2.0 * math.log(n_blocks)) - 0.5 * sigma**2)
