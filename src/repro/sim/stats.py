"""Result containers for silicon and simulated application runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.architectures import GPUConfig

__all__ = ["KernelRecord", "AppRunResult"]


@dataclass(frozen=True)
class KernelRecord:
    """Per-kernel outcome inside an application run.

    Attributes
    ----------
    launch_id:
        Chronological launch index within the application.
    name:
        Kernel name.
    cycles:
        Cycles this kernel contributes to the application total (after
        any projection).
    instructions:
        Warp instructions it contributes (after any projection).
    dram_bytes:
        DRAM traffic it contributes (after any projection).
    simulated_cycles:
        Cycles of simulator work actually *paid* for this kernel; zero
        for kernels skipped by PKS, less than ``cycles`` when PKP stopped
        the kernel early, equal to ``cycles`` under full simulation.
    projected:
        True if any part of this record was projected rather than run.
    """

    launch_id: int
    name: str
    cycles: float
    instructions: float
    dram_bytes: float
    simulated_cycles: float
    projected: bool = False


@dataclass(frozen=True)
class AppRunResult:
    """Application-level outcome of one (possibly sampled) run.

    ``total_cycles`` is the run's *estimate of the application's cycles*
    (what gets compared against silicon), while ``simulated_cycles`` is
    the amount of simulation actually performed (what determines
    simulation wall-clock time and hence speedup).
    """

    workload: str
    gpu: GPUConfig
    method: str
    total_cycles: float
    total_instructions: float
    total_dram_bytes: float
    simulated_cycles: float
    kernel_records: tuple[KernelRecord, ...] = field(default_factory=tuple)

    @property
    def ipc(self) -> float:
        """Application-level warp IPC estimate."""
        return self.total_instructions / self.total_cycles if self.total_cycles else 0.0

    @property
    def dram_util_percent(self) -> float:
        """Average DRAM bandwidth utilization estimate, in percent."""
        if self.total_cycles <= 0:
            return 0.0
        rate = self.total_dram_bytes / self.total_cycles
        return min(100.0, 100.0 * rate / self.gpu.dram_bytes_per_cycle)

    @property
    def silicon_seconds(self) -> float:
        """Wall-clock seconds the estimated cycles take on silicon."""
        return self.gpu.cycles_to_seconds(self.total_cycles)

    @property
    def sim_wall_seconds(self) -> float:
        """Wall-clock seconds the performed simulation takes."""
        return self.gpu.cycles_to_sim_seconds(self.simulated_cycles)

    @property
    def sim_wall_hours(self) -> float:
        return self.sim_wall_seconds / 3600.0
