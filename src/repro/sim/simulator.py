"""Cycle-level application simulator (the Accel-Sim stand-in).

Wraps the per-kernel discrete-event engine with

* a deterministic per-kernel *modeling error* — real simulators disagree
  with silicon by a kernel-dependent factor, and the whole point of the
  paper's Figure-8 comparison is how sampling errors compose with that
  baseline error.  The bias depends only on the kernel spec (never on the
  GPU config), so relative-accuracy studies across architectures behave
  the way Section 5.3 reports;
* memoization of full-kernel runs keyed on (spec, grid) — identical
  dynamic instances of one kernel produce identical simulations;
* application-level accounting: estimated cycles versus simulation cost.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.gpu.architectures import GPUConfig
from repro.gpu.kernels import KernelLaunch
from repro.obs import obs_count, obs_span
from repro.sim.engine import (
    DEFAULT_WINDOW_CYCLES,
    KernelSimResult,
    StopMonitor,
    WindowSample,
    simulate_kernel,
)
from repro.sim.parallel import (
    CHUNKS_PER_WORKER,
    ExecutionBackend,
    chunked,
    resolve_backend,
    simulate_batch_task,
)
from repro.sim.perfmodel import KERNEL_LAUNCH_OVERHEAD
from repro.sim.stats import AppRunResult, KernelRecord

__all__ = ["ModelErrorConfig", "Simulator", "kernel_bias_factor"]

_BIAS_SALT = 0x5151_DEAD_BEEF


def _behavior_bucket_hash(spec) -> int:
    """Coarse behavioural identity of a kernel spec.

    Two kernels that land in the same bucket — same order of magnitude of
    per-thread work, similar memory intensity, divergence and footprint —
    exercise the same simulator code paths and therefore share its
    modeling error.
    """
    mix = spec.mix
    bucket = (
        int(round(np.log10(max(mix.per_thread_total, 1.0)) * 2)),
        int(round(mix.memory_fraction * 5)),
        spec.uses_tensor_cores,
        int(round(spec.divergence_efficiency * 4)),
        int(round(np.log10(max(spec.working_set_bytes, 1.0)))),
        int(round(spec.sectors_per_global_access / 8.0)),
    )
    import zlib

    return zlib.crc32(repr(bucket).encode("utf-8"))


@dataclass(frozen=True)
class ModelErrorConfig:
    """Shape of the simulator's per-kernel error versus silicon.

    Simulator error is *systematic by kernel behaviour*: a simulator that
    mis-models coalescing mispredicts every scatter-heavy kernel the same
    way.  So the bias is drawn per behaviour bucket (work magnitude,
    memory intensity, divergence, tensor-core use...) with a log-normal
    whose sigma is itself bucket-drawn from [sigma_min, sigma_max] — some
    behaviours are modelled well, some poorly (the paper's sgemm shows
    154% error) — plus a small per-spec idiosyncratic jitter
    (``spec_sigma``).  Kernels PKS would group together therefore share
    nearly the same bias, which is why sampled simulation errors track
    full-simulation errors in the paper.

    ``enabled=False`` makes the simulator silicon-faithful, which tests
    use to isolate sampling error from modeling error.
    """

    enabled: bool = True
    sigma_min: float = 0.15
    sigma_max: float = 0.85
    spec_sigma: float = 0.05
    seed_salt: int = _BIAS_SALT

    def __post_init__(self) -> None:
        if self.sigma_min < 0 or self.sigma_max < self.sigma_min:
            raise ConfigurationError("require 0 <= sigma_min <= sigma_max")
        if self.spec_sigma < 0:
            raise ConfigurationError("spec_sigma must be >= 0")


def kernel_bias_factor(spec, model_error: "ModelErrorConfig") -> float:
    """The deterministic modeling-error bias one kernel spec carries.

    Pure function of (spec, model-error config): bucket-level
    behavioural bias times a small per-spec jitter, exactly the factor
    :meth:`Simulator.kernel_bias` applies to block durations.  Exposed
    at module level so the analytical prediction tier can price kernels
    with the *same* simulator bias without instantiating an event loop.
    """
    if not model_error.enabled:
        return 1.0
    signature = spec.signature()
    bucket_seed = (
        _behavior_bucket_hash(spec) ^ model_error.seed_salt
    ) % 2**63
    bucket_rng = np.random.default_rng(bucket_seed)
    sigma = bucket_rng.uniform(model_error.sigma_min, model_error.sigma_max)
    bucket_bias = float(bucket_rng.lognormal(mean=0.0, sigma=sigma))
    spec_rng = np.random.default_rng(
        (signature ^ model_error.seed_salt) % 2**63
    )
    jitter = float(spec_rng.lognormal(mean=0.0, sigma=model_error.spec_sigma))
    return bucket_bias * jitter


class Simulator:
    """Per-GPU cycle-level simulator with deterministic modeling error."""

    def __init__(
        self,
        gpu: GPUConfig,
        *,
        model_error: ModelErrorConfig | None = None,
        window_cycles: float = DEFAULT_WINDOW_CYCLES,
        backend: ExecutionBackend | str | int | None = None,
        intra_jobs: ExecutionBackend | str | int | None = None,
    ) -> None:
        if backend is not None and intra_jobs is not None:
            raise ConfigurationError(
                "pass either backend or intra_jobs, not both: at the "
                "simulator level they name the same worker pool"
            )
        self.gpu = gpu
        self.model_error = model_error if model_error is not None else ModelErrorConfig()
        self.window_cycles = window_cycles
        # At this level intra_jobs is an alias for backend: a Simulator's
        # pool only ever parallelizes *within* one app run (kernel-stream
        # prefetch and block sharding), never across cells.
        self.backend = resolve_backend(backend if backend is not None else intra_jobs)
        self._bias_cache: dict[int, float] = {}
        self._full_run_cache: dict[tuple[int, int], KernelSimResult] = {}

    def kernel_bias(self, launch: KernelLaunch) -> float:
        """The simulator's deterministic cycle bias for this kernel spec.

        Bucket-level (behavioural) bias times a small per-spec jitter;
        independent of the GPU config so relative-accuracy studies see a
        consistent simulator (Section 5.3).
        """
        if not self.model_error.enabled:
            return 1.0
        signature = launch.spec.signature()
        cached = self._bias_cache.get(signature)
        if cached is None:
            cached = kernel_bias_factor(launch.spec, self.model_error)
            self._bias_cache[signature] = cached
        return cached

    def memoized_kernel_cycles(self) -> dict[tuple[int, int], float]:
        """Simulated cycles of every full kernel run memoized so far,
        keyed by (spec signature, grid blocks).

        The prediction tier's observe path reads this right after a
        computed full run to harvest per-kernel ground truth without
        re-simulating anything.
        """
        return {
            key: result.cycles for key, result in self._full_run_cache.items()
        }

    def run_kernel(
        self,
        launch: KernelLaunch,
        *,
        monitor: StopMonitor | Callable[[WindowSample], bool] | None = None,
        collect_series: bool = False,
        window_cycles: float | None = None,
    ) -> KernelSimResult:
        """Simulate one launch; full runs (no monitor/series) are memoized."""
        plain = monitor is None and not collect_series
        key = (launch.spec.signature(), launch.grid_blocks)
        if plain:
            cached = self._full_run_cache.get(key)
            if cached is not None:
                obs_count("sim.kernel_memo_hits")
                return cached
        obs_count("sim.kernels_simulated")
        result = simulate_kernel(
            launch,
            self.gpu,
            bias=self.kernel_bias(launch),
            window_cycles=window_cycles if window_cycles else self.window_cycles,
            monitor=monitor,
            collect_series=collect_series,
            # Plain full runs may shard one huge kernel's blocks across
            # the pool; the engine recombines in fixed chunk order, so
            # the memoized result is bitwise independent of the backend.
            intra=self.backend if plain and self.backend.jobs > 1 else None,
        )
        if plain:
            self._full_run_cache[key] = result
        return result

    def run_full(
        self,
        workload_name: str,
        launches: Iterable[KernelLaunch],
        *,
        keep_records: bool = False,
        max_simulated_cycles: float | None = None,
    ) -> AppRunResult:
        """Full (unsampled) simulation of an application.

        ``max_simulated_cycles`` lets callers enforce a simulation budget
        — the way practitioners abandon full runs that would take months.
        Launches beyond the budget are *not* simulated and do not
        contribute; the result then under-reports the application.

        With a parallel backend, distinct kernels are simulated across
        worker processes first and the accumulation below then runs over
        the prefetched results in launch order — bit-identical to the
        serial path.  A simulation budget forces the serial path: which
        launches fall inside the budget depends on the results of the
        ones before them.
        """
        launches = list(launches)
        with obs_span(
            "sim.run_full",
            workload=workload_name,
            gpu=self.gpu.name,
            launches=len(launches),
        ):
            if max_simulated_cycles is not None:
                return self._run_budgeted(
                    workload_name,
                    launches,
                    keep_records=keep_records,
                    max_simulated_cycles=max_simulated_cycles,
                )
            # A launch stream is dominated by repeats of few distinct
            # kernels, so group it up front (first-occurrence order) and
            # accumulate each distinct kernel's contribution once.  The
            # accumulation order is fixed by the stream itself — never by
            # the backend — so serial and sharded runs agree bitwise.
            counts: dict[tuple[int, int], int] = {}
            reps: dict[tuple[int, int], KernelLaunch] = {}
            for launch in launches:
                key = (launch.spec.signature(), launch.grid_blocks)
                if key in counts:
                    counts[key] += 1
                else:
                    counts[key] = 1
                    reps[key] = launch
            obs_count("sim.intra.stream_groups", len(reps))
            if self.backend.jobs > 1:
                self._prefetch_parallel(list(reps.values()))
            results = {key: self.run_kernel(rep) for key, rep in reps.items()}
            total_cycles = 0.0
            total_insts = 0.0
            total_bytes = 0.0
            simulated = 0.0
            for key in reps:
                result = results[key]
                count = counts[key]
                total_cycles += count * (result.cycles + KERNEL_LAUNCH_OVERHEAD)
                total_insts += count * result.warp_instructions
                total_bytes += count * result.dram_bytes
                simulated += count * result.cycles
            records: list[KernelRecord] = []
            if keep_records:
                for launch in launches:
                    key = (launch.spec.signature(), launch.grid_blocks)
                    result = results[key]
                    records.append(
                        KernelRecord(
                            launch_id=launch.launch_id,
                            name=launch.spec.name,
                            cycles=result.cycles,
                            instructions=result.warp_instructions,
                            dram_bytes=result.dram_bytes,
                            simulated_cycles=result.cycles,
                        )
                    )
            obs_count("sim.simulated_cycles", simulated)
        return AppRunResult(
            workload=workload_name,
            gpu=self.gpu,
            method="full_sim",
            total_cycles=total_cycles,
            total_instructions=total_insts,
            total_dram_bytes=total_bytes,
            simulated_cycles=simulated,
            kernel_records=tuple(records),
        )

    def _run_budgeted(
        self,
        workload_name: str,
        launches: list[KernelLaunch],
        *,
        keep_records: bool,
        max_simulated_cycles: float,
    ) -> AppRunResult:
        """Sequential accumulation under a simulation budget.

        Which launches fall inside the budget depends on the cycles of
        the launches before them, so this path stays a per-launch loop.
        """
        total_cycles = 0.0
        total_insts = 0.0
        total_bytes = 0.0
        simulated = 0.0
        records: list[KernelRecord] = []
        for launch in launches:
            if simulated >= max_simulated_cycles:
                break
            result = self.run_kernel(launch)
            total_cycles += result.cycles + KERNEL_LAUNCH_OVERHEAD
            total_insts += result.warp_instructions
            total_bytes += result.dram_bytes
            simulated += result.cycles
            if keep_records:
                records.append(
                    KernelRecord(
                        launch_id=launch.launch_id,
                        name=launch.spec.name,
                        cycles=result.cycles,
                        instructions=result.warp_instructions,
                        dram_bytes=result.dram_bytes,
                        simulated_cycles=result.cycles,
                    )
                )
        obs_count("sim.simulated_cycles", simulated)
        return AppRunResult(
            workload=workload_name,
            gpu=self.gpu,
            method="full_sim",
            total_cycles=total_cycles,
            total_instructions=total_insts,
            total_dram_bytes=total_bytes,
            simulated_cycles=simulated,
            kernel_records=tuple(records),
        )

    def _prefetch_parallel(self, launches: list[KernelLaunch]) -> None:
        """Fan distinct, not-yet-memoized kernels out across the backend.

        Per-kernel simulation is a pure function of (spec, grid, GPU,
        model error), so workers compute exactly what the serial path
        would have and the results land in the same memo table the
        serial accumulation reads.
        """
        pending: dict[tuple[int, int], KernelLaunch] = {}
        for launch in launches:
            key = (launch.spec.signature(), launch.grid_blocks)
            if key not in self._full_run_cache and key not in pending:
                pending[key] = launch
        if len(pending) < 2:
            return
        with obs_span("sim.prefetch", distinct_kernels=len(pending)):
            batches = chunked(
                list(pending.values()), self.backend.jobs * CHUNKS_PER_WORKER
            )
            payloads = [
                (self.gpu, self.model_error, self.window_cycles, tuple(batch))
                for batch in batches
            ]
            for results in self.backend.map_tasks(simulate_batch_task, payloads):
                for result in results:
                    key = (
                        result.launch.spec.signature(),
                        result.launch.grid_blocks,
                    )
                    self._full_run_cache[key] = result
