"""Block-level discrete-event simulation of one kernel launch.

The engine schedules thread blocks onto the GPU with a static interleaved
assignment: block ``i`` runs on residency slot ``i % slots`` and each slot
executes its chain of blocks back to back, like a hardware CTA scheduler
with a fixed issue order.  The static assignment is what makes the
simulation decomposable: a slot's finish time is a plain sum of its block
durations, so any contiguous, wave-aligned span of blocks reduces to a
per-slot partial sum that can be computed vectorized, out of order, or on
another worker process — and the recombined result is bitwise identical
to the serial scalar loop.  While running in windowed mode the engine
emits fixed-width *windows* of GPU state — IPC, L2 miss rate, DRAM
utilization, finished-block count — which is the online signal Principal
Kernel Projection consumes to detect IPC stability and stop the
simulation early.

Per-block durations come from :mod:`repro.sim.perfmodel` stretched by

* a deterministic, seeded log-normal variation (the spec's
  ``duration_cv`` — regular kernels near zero, BFS-like kernels large),
* a linear phase drift across the grid (``phase_drift``),
* the caller-supplied ``bias`` — the simulator's per-kernel modeling
  error; silicon-faithful runs pass 1.0.

The variation stream is drawn in fixed ``DURATION_CHUNK_BLOCKS`` chunks,
each with its own seed derived from (spec signature, grid, chunk index),
so ``block_durations`` can produce any half-open block range exactly —
the same values whether the caller asks for the whole grid or for one
shard of it.  Chunk 0 keeps the historical seed, so grids that fit in a
single chunk reproduce the exact streams of the original implementation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Protocol

import numpy as np

from repro.errors import SimulationError
from repro.gpu.architectures import GPUConfig
from repro.gpu.kernels import KernelLaunch
from repro.obs import obs_count, obs_span
from repro.sim.perfmodel import KernelPerformance, analyze_kernel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sim.parallel import ExecutionBackend

__all__ = [
    "DEFAULT_WINDOW_CYCLES",
    "DURATION_CHUNK_BLOCKS",
    "KernelSimResult",
    "StopMonitor",
    "WindowSample",
    "block_durations",
    "compute_shard_partials",
    "fold_chunk_ranges",
    "simulate_kernel",
]

DEFAULT_WINDOW_CYCLES = 500.0

# The variation RNG is drawn in fixed-size chunks so any block range can
# be regenerated independently (intra-run sharding).  The chunk size is a
# block count, deliberately independent of the GPU: the duration stream
# of a kernel must not change with the architecture it runs on.
DURATION_CHUNK_BLOCKS = 65_536

_SEED_MOD = 2**63
# Odd 64-bit golden-ratio stride decorrelates per-chunk seeds.
_CHUNK_SEED_STRIDE = 0x9E37_79B9_7F4A_7C15


@dataclass(frozen=True)
class WindowSample:
    """One fixed-width observation window of simulated GPU state.

    Attributes
    ----------
    cycle:
        Cycle at the *end* of the window.
    ipc:
        Warp instructions retired per cycle during the window.
    l2_miss_rate:
        Percentage of L2 sector requests that missed during the window.
    dram_util:
        Percentage of peak DRAM bandwidth consumed during the window.
    blocks_finished:
        Cumulative thread blocks retired by the end of the window.
    """

    cycle: float
    ipc: float
    l2_miss_rate: float
    dram_util: float
    blocks_finished: int


class StopMonitor(Protocol):
    """Online observer that can end a kernel simulation early (PKP)."""

    def observe(self, sample: WindowSample) -> bool:
        """Ingest one window; return True to stop simulating now."""
        ...


@dataclass(frozen=True)
class KernelSimResult:
    """Outcome of simulating (part of) one kernel launch.

    ``cycles`` and the traffic counters cover only the simulated portion;
    when ``stopped_early`` the caller is expected to *project* totals from
    them (that is Principal Kernel Projection's job, not the engine's).
    """

    launch: KernelLaunch
    perf: KernelPerformance
    cycles: float
    blocks_finished: int
    warp_instructions: float
    dram_bytes: float
    stopped_early: bool
    samples: tuple[WindowSample, ...] = ()

    @property
    def grid_blocks(self) -> int:
        return self.launch.grid_blocks

    @property
    def ipc(self) -> float:
        """Mean warp IPC over the simulated portion."""
        return self.warp_instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def blocks_remaining(self) -> int:
        return self.launch.grid_blocks - self.blocks_finished


def _variation_seed(signature: int, grid: int, chunk: int) -> int:
    """Seed for one ``DURATION_CHUNK_BLOCKS`` chunk of the variation RNG.

    Chunk 0 uses the historical ``(signature, grid)`` seed unchanged so
    grids up to one chunk reproduce the original duration streams bit for
    bit; later chunks offset it by a golden-ratio stride.
    """
    base = (signature * 1_000_003 + grid) % _SEED_MOD
    if chunk == 0:
        return base
    return (base + chunk * _CHUNK_SEED_STRIDE) % _SEED_MOD


def _variation_slice(
    signature: int, grid: int, sigma: float, start: int, stop: int
) -> np.ndarray:
    """Log-normal variation for blocks ``[start, stop)`` of ``grid``.

    Every chunk is always drawn from its own seed at its full in-grid
    length, so the values returned for a block never depend on which
    range the caller asked for.
    """
    if start == stop:
        return np.empty(0)
    mean = -0.5 * sigma**2
    first = start // DURATION_CHUNK_BLOCKS
    last = (stop - 1) // DURATION_CHUNK_BLOCKS
    parts: list[np.ndarray] = []
    for chunk in range(first, last + 1):
        lo = chunk * DURATION_CHUNK_BLOCKS
        hi = min(lo + DURATION_CHUNK_BLOCKS, grid)
        rng = np.random.default_rng(_variation_seed(signature, grid, chunk))
        draw = rng.lognormal(mean=mean, sigma=sigma, size=hi - lo)
        parts.append(draw[max(start, lo) - lo : min(stop, hi) - lo])
    if len(parts) == 1:
        return parts[0]
    return np.concatenate(parts)


def block_durations(
    launch: KernelLaunch,
    perf: KernelPerformance,
    bias: float = 1.0,
    start: int = 0,
    stop: int | None = None,
) -> np.ndarray:
    """Deterministic per-block durations for blocks ``[start, stop)``.

    Seeded by the kernel spec's signature and the grid size so the same
    launch always produces the same durations, on every GPU, in every
    process, and — because the variation stream is drawn in fixed chunks
    — for every requested sub-range: ``block_durations(l, p)[a:b]`` is
    bitwise equal to ``block_durations(l, p, start=a, stop=b)``.
    """
    spec = launch.spec
    grid = launch.grid_blocks
    if stop is None:
        stop = grid
    if not 0 <= start <= stop <= grid:
        raise SimulationError(
            f"invalid block range [{start}, {stop}) for grid {grid}"
        )
    count = stop - start

    if spec.duration_cv > 0:
        sigma = float(np.sqrt(np.log1p(spec.duration_cv**2)))
        variation = _variation_slice(spec.signature(), grid, sigma, start, stop)
    else:
        variation = np.ones(count)

    if grid > 1 and spec.phase_drift != 0.0:
        phase = 1.0 + spec.phase_drift * np.arange(start, stop) / (grid - 1)
        phase = np.maximum(phase, 0.05)
    else:
        phase = np.ones(count)

    # Cold caches slow the first wave down, producing the IPC ramp-up
    # phase that PKP's wave constraint exists to wait out.
    if spec.cold_start_factor > 0:
        first_wave = min(grid, perf.occupancy.wave_size)
        if start < first_wave:
            cold = np.ones(count)
            cold[: min(first_wave, stop) - start] *= 1.0 + spec.cold_start_factor
            phase = phase * cold

    durations = perf.base_block_cycles * variation * phase * bias
    return np.maximum(durations, 1.0)


def fold_chunk_ranges(grid: int, slots: int) -> list[tuple[int, int]]:
    """Wave-aligned block ranges whose per-slot sums fold to finish times.

    Every range starts on a wave boundary (a multiple of ``slots``), so
    block ``i`` of the grid occupies position ``i % slots`` in every row
    of its chunk, and the chunk reduces to one partial-sum vector per
    slot.  The chunk layout depends only on (grid, slots) — never on how
    chunks are distributed across workers — which is what keeps the
    recombined fold bitwise identical for every ``intra_jobs`` setting.
    """
    if slots <= 0:
        raise SimulationError("slots must be positive")
    step = max(1, DURATION_CHUNK_BLOCKS // slots) * slots
    return [(lo, min(lo + step, grid)) for lo in range(0, grid, step)]


def compute_shard_partials(
    launch: KernelLaunch,
    perf: KernelPerformance,
    bias: float,
    slots: int,
    ranges: list[tuple[int, int]],
) -> list[np.ndarray]:
    """Per-slot partial finish times for contiguous fold-chunk ``ranges``.

    Returns one length-``slots`` vector per range.  Chunks are *not*
    merged here: the caller folds the individual chunk partials in global
    chunk order, so the floating-point accumulation order is one fixed
    left fold regardless of how chunks were sharded across workers.
    """
    lo = ranges[0][0]
    hi = ranges[-1][1]
    durations = block_durations(launch, perf, bias, start=lo, stop=hi)
    partials: list[np.ndarray] = []
    for a, b in ranges:
        chunk = durations[a - lo : b - lo]
        partial = np.zeros(slots)
        for off in range(0, b - a, slots):
            row = chunk[off : off + slots]
            partial[: len(row)] += row
        partials.append(partial)
    return partials


def simulate_kernel(
    launch: KernelLaunch,
    gpu: GPUConfig,
    *,
    bias: float = 1.0,
    window_cycles: float = DEFAULT_WINDOW_CYCLES,
    monitor: StopMonitor | Callable[[WindowSample], bool] | None = None,
    collect_series: bool = False,
    intra: "ExecutionBackend | None" = None,
) -> KernelSimResult:
    """Simulate ``launch`` on ``gpu``, optionally stopping early.

    Parameters
    ----------
    bias:
        Per-kernel duration multiplier modelling simulator-vs-silicon
        error; 1.0 reproduces the performance model exactly.
    window_cycles:
        Width of the observation windows fed to ``monitor``.
    monitor:
        Online stop condition (e.g. a PKP stability detector).  When it
        returns True the engine stops at that window boundary.
    collect_series:
        Keep every window sample on the result (needed for Figure-5-style
        time-series plots); otherwise samples are discarded after the
        monitor sees them.
    intra:
        Optional execution backend for intra-kernel block sharding.  With
        a multi-worker backend and a grid spanning several fold chunks,
        the fast path fans chunk partial-sums out across workers and
        recombines them in chunk order — bitwise identical to serial.

    Notes
    -----
    When neither ``monitor`` nor ``collect_series`` is given the engine
    takes a vectorized fast path that computes the identical interleaved
    schedule without window bookkeeping.
    """
    if bias <= 0:
        raise SimulationError("bias must be positive")
    if window_cycles <= 0:
        raise SimulationError("window_cycles must be positive")

    perf = analyze_kernel(launch, gpu)
    slots = min(launch.grid_blocks, perf.occupancy.wave_size)

    if monitor is None and not collect_series:
        return _run_fast(launch, perf, slots, bias, intra)
    durations = block_durations(launch, perf, bias)
    return _run_windowed(
        launch, gpu, perf, durations, slots, window_cycles, monitor, collect_series
    )


def _run_fast(
    launch: KernelLaunch,
    perf: KernelPerformance,
    slots: int,
    bias: float,
    intra: "ExecutionBackend | None",
) -> KernelSimResult:
    """Interleaved static scheduling without window bookkeeping.

    Block ``i`` runs on slot ``i % slots``; a slot's finish time is the
    sum of its blocks' durations and the kernel's makespan is the slowest
    slot.  The sum is accumulated as a fixed left fold over wave-aligned
    fold chunks, which is the property the sharded path preserves.
    """
    grid = launch.grid_blocks
    ranges = fold_chunk_ranges(grid, slots)
    if intra is not None and getattr(intra, "jobs", 1) > 1 and len(ranges) > 1:
        from repro.sim.parallel import CHUNKS_PER_WORKER, block_shard_task, chunked

        shards = chunked(ranges, intra.jobs * CHUNKS_PER_WORKER)
        obs_count("sim.intra.sharded_kernels")
        obs_count("sim.intra.shards", len(shards))
        obs_count("sim.intra.block_chunks", len(ranges))
        with obs_span(
            "sim.intra.fanout",
            kernel=launch.spec.name,
            grid=grid,
            shards=len(shards),
            chunks=len(ranges),
        ):
            payloads = [
                (launch, perf, bias, slots, tuple(shard)) for shard in shards
            ]
            shard_results = intra.map_tasks(block_shard_task, payloads)
        partials = [partial for shard in shard_results for partial in shard]
    else:
        partials = compute_shard_partials(launch, perf, bias, slots, ranges)
    finish = np.zeros(slots)
    for partial in partials:
        finish += partial
    makespan = float(finish.max())
    total_insts = perf.warp_insts_per_block * grid
    total_bytes = perf.memory.dram_bytes_per_block * grid
    return KernelSimResult(
        launch=launch,
        perf=perf,
        cycles=makespan,
        blocks_finished=grid,
        warp_instructions=total_insts,
        dram_bytes=total_bytes,
        stopped_early=False,
    )


def _run_windowed(
    launch: KernelLaunch,
    gpu: GPUConfig,
    perf: KernelPerformance,
    durations: np.ndarray,
    slots: int,
    window_cycles: float,
    monitor: StopMonitor | Callable[[WindowSample], bool] | None,
    collect_series: bool,
) -> KernelSimResult:
    """Event loop with per-window IPC/L2/DRAM emission and early stop.

    Runs the same interleaved schedule as the fast path — each slot's
    chain of blocks executes back to back — with a heap merging the
    slots' completion streams into time order.
    """
    observe = _resolve_monitor(monitor)
    grid = launch.grid_blocks
    inst_per_block = perf.warp_insts_per_block
    bytes_per_block = perf.memory.dram_bytes_per_block
    base_miss = (1.0 - perf.memory.l2_hit_rate) * 100.0
    peak_dram = gpu.dram_bytes_per_cycle
    miss_rng = np.random.default_rng(launch.spec.signature() % 2**63)
    # Windowed IPC is bursty in proportion to the kernel's irregularity:
    # memory bursts, instruction replays and uneven intra-block progress
    # show up as window-to-window jitter that the uniform-rate attribution
    # would otherwise smooth away.  This is the signal PKP's stability
    # detector actually contends with (Figure 5b's noisy BFS trace).
    ipc_noise_sigma = 0.45 * launch.spec.duration_cv
    noise_rng = np.random.default_rng((launch.spec.signature() * 31 + 7) % 2**63)
    # On top of white jitter, IPC *wanders* at low frequency while blocks
    # work through their phases (cache warm-up, loop progression, DRAM row
    # locality shifts); the wander dies out over roughly one block
    # lifetime.  Kernels with many short blocks therefore calm down after
    # a wave (syr2k-style, where PKP saves 50x), while a handful of huge
    # blocks keep the signal moving for much of the kernel (DeepBench
    # GEMMs, where PKP saves ~2x).
    wander = 0.0
    wander_rho = 0.8
    wander_amp0 = 0.12
    first_wave = durations[: min(slots, len(durations))]
    block_lifetime = float(first_wave.mean()) if len(first_wave) else 1.0

    # Slot state: the block currently resident on each slot and its
    # uniform retire rates; the heap holds (completion_cycle, slot).
    heap: list[tuple[float, int]] = []
    slot_block = list(range(slots))
    slot_rates: list[tuple[float, float]] = [(0.0, 0.0)] * slots
    inst_rate = 0.0
    byte_rate = 0.0
    for slot in range(slots):
        duration = float(durations[slot])
        block_inst_rate = inst_per_block / duration
        block_byte_rate = bytes_per_block / duration
        heapq.heappush(heap, (duration, slot))
        slot_rates[slot] = (block_inst_rate, block_byte_rate)
        inst_rate += block_inst_rate
        byte_rate += block_byte_rate

    finished = 0
    now = 0.0
    win_insts = 0.0
    win_bytes = 0.0
    window_end = window_cycles
    total_insts = 0.0
    total_bytes = 0.0
    samples: list[WindowSample] = []
    stopped = False

    while finished < grid and not stopped:
        next_completion = heap[0][0]
        # Emit any windows that close before the next block completion.
        while window_end <= next_completion and not stopped:
            elapsed = window_end - now
            win_insts += inst_rate * elapsed
            win_bytes += byte_rate * elapsed
            total_insts += inst_rate * elapsed
            total_bytes += byte_rate * elapsed
            now = window_end
            observed_ipc = win_insts / window_cycles
            amp = wander_amp0 * np.exp(-3.0 * now / block_lifetime)
            wander = wander_rho * wander + amp * float(noise_rng.standard_normal())
            observed_ipc *= 1.0 + wander
            if ipc_noise_sigma > 0:
                observed_ipc *= 1.0 + ipc_noise_sigma * float(
                    noise_rng.standard_normal()
                )
            observed_ipc = max(0.0, observed_ipc)
            sample = WindowSample(
                cycle=window_end,
                ipc=observed_ipc,
                l2_miss_rate=min(
                    100.0,
                    max(0.0, base_miss * (1.0 + 0.04 * miss_rng.standard_normal())),
                ),
                dram_util=min(100.0, 100.0 * win_bytes / (window_cycles * peak_dram)),
                blocks_finished=finished,
            )
            if collect_series:
                samples.append(sample)
            if observe is not None and observe(sample):
                stopped = True
            win_insts = 0.0
            win_bytes = 0.0
            window_end += window_cycles
        if stopped:
            break
        # Advance to the completion and retire every block ending there,
        # starting each retiring slot's next chained block at the exact
        # completion cycle (the same left fold as the fast path).
        elapsed = next_completion - now
        win_insts += inst_rate * elapsed
        win_bytes += byte_rate * elapsed
        total_insts += inst_rate * elapsed
        total_bytes += byte_rate * elapsed
        now = next_completion
        while heap and heap[0][0] <= now + 1e-9:
            end, slot = heapq.heappop(heap)
            done_inst_rate, done_byte_rate = slot_rates[slot]
            inst_rate -= done_inst_rate
            byte_rate -= done_byte_rate
            finished += 1
            successor = slot_block[slot] + slots
            if successor < grid:
                duration = float(durations[successor])
                slot_block[slot] = successor
                block_inst_rate = inst_per_block / duration
                block_byte_rate = bytes_per_block / duration
                slot_rates[slot] = (block_inst_rate, block_byte_rate)
                inst_rate += block_inst_rate
                byte_rate += block_byte_rate
                heapq.heappush(heap, (end + duration, slot))

    return KernelSimResult(
        launch=launch,
        perf=perf,
        cycles=now,
        blocks_finished=finished,
        warp_instructions=total_insts,
        dram_bytes=total_bytes,
        stopped_early=stopped,
        samples=tuple(samples),
    )


def _resolve_monitor(
    monitor: StopMonitor | Callable[[WindowSample], bool] | None,
) -> Callable[[WindowSample], bool] | None:
    if monitor is None:
        return None
    if hasattr(monitor, "observe"):
        return monitor.observe  # type: ignore[union-attr]
    return monitor
