"""Block-level discrete-event simulation of one kernel launch.

The engine schedules thread blocks onto the GPU greedily (a finished block
immediately frees its residency slot for the next one), exactly like a
hardware CTA scheduler.  While running it emits fixed-width *windows* of
GPU state — IPC, L2 miss rate, DRAM utilization, finished-block count —
which is the online signal Principal Kernel Projection consumes to detect
IPC stability and stop the simulation early.

Per-block durations come from :mod:`repro.sim.perfmodel` stretched by

* a deterministic, seeded log-normal variation (the spec's
  ``duration_cv`` — regular kernels near zero, BFS-like kernels large),
* a linear phase drift across the grid (``phase_drift``),
* the caller-supplied ``bias`` — the simulator's per-kernel modeling
  error; silicon-faithful runs pass 1.0.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

from repro.errors import SimulationError
from repro.gpu.architectures import GPUConfig
from repro.gpu.kernels import KernelLaunch
from repro.sim.perfmodel import KernelPerformance, analyze_kernel

__all__ = [
    "DEFAULT_WINDOW_CYCLES",
    "KernelSimResult",
    "StopMonitor",
    "WindowSample",
    "block_durations",
    "simulate_kernel",
]

DEFAULT_WINDOW_CYCLES = 500.0


@dataclass(frozen=True)
class WindowSample:
    """One fixed-width observation window of simulated GPU state.

    Attributes
    ----------
    cycle:
        Cycle at the *end* of the window.
    ipc:
        Warp instructions retired per cycle during the window.
    l2_miss_rate:
        Percentage of L2 sector requests that missed during the window.
    dram_util:
        Percentage of peak DRAM bandwidth consumed during the window.
    blocks_finished:
        Cumulative thread blocks retired by the end of the window.
    """

    cycle: float
    ipc: float
    l2_miss_rate: float
    dram_util: float
    blocks_finished: int


class StopMonitor(Protocol):
    """Online observer that can end a kernel simulation early (PKP)."""

    def observe(self, sample: WindowSample) -> bool:
        """Ingest one window; return True to stop simulating now."""
        ...


@dataclass(frozen=True)
class KernelSimResult:
    """Outcome of simulating (part of) one kernel launch.

    ``cycles`` and the traffic counters cover only the simulated portion;
    when ``stopped_early`` the caller is expected to *project* totals from
    them (that is Principal Kernel Projection's job, not the engine's).
    """

    launch: KernelLaunch
    perf: KernelPerformance
    cycles: float
    blocks_finished: int
    warp_instructions: float
    dram_bytes: float
    stopped_early: bool
    samples: tuple[WindowSample, ...] = ()

    @property
    def grid_blocks(self) -> int:
        return self.launch.grid_blocks

    @property
    def ipc(self) -> float:
        """Mean warp IPC over the simulated portion."""
        return self.warp_instructions / self.cycles if self.cycles > 0 else 0.0

    @property
    def blocks_remaining(self) -> int:
        return self.launch.grid_blocks - self.blocks_finished


def block_durations(
    launch: KernelLaunch,
    perf: KernelPerformance,
    bias: float = 1.0,
) -> np.ndarray:
    """Deterministic per-block durations for ``launch``.

    Seeded by the kernel spec's signature and the grid size so the same
    launch always produces the same schedule, on every GPU and in every
    process.
    """
    spec = launch.spec
    grid = launch.grid_blocks
    rng = np.random.default_rng((spec.signature() * 1_000_003 + grid) % 2**63)

    if spec.duration_cv > 0:
        sigma = float(np.sqrt(np.log1p(spec.duration_cv**2)))
        variation = rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma, size=grid)
    else:
        variation = np.ones(grid)

    if grid > 1 and spec.phase_drift != 0.0:
        phase = 1.0 + spec.phase_drift * np.arange(grid) / (grid - 1)
        phase = np.maximum(phase, 0.05)
    else:
        phase = np.ones(grid)

    # Cold caches slow the first wave down, producing the IPC ramp-up
    # phase that PKP's wave constraint exists to wait out.
    if spec.cold_start_factor > 0:
        first_wave = min(grid, perf.occupancy.wave_size)
        cold = np.ones(grid)
        cold[:first_wave] *= 1.0 + spec.cold_start_factor
        phase = phase * cold

    durations = perf.base_block_cycles * variation * phase * bias
    return np.maximum(durations, 1.0)


def simulate_kernel(
    launch: KernelLaunch,
    gpu: GPUConfig,
    *,
    bias: float = 1.0,
    window_cycles: float = DEFAULT_WINDOW_CYCLES,
    monitor: StopMonitor | Callable[[WindowSample], bool] | None = None,
    collect_series: bool = False,
) -> KernelSimResult:
    """Simulate ``launch`` on ``gpu``, optionally stopping early.

    Parameters
    ----------
    bias:
        Per-kernel duration multiplier modelling simulator-vs-silicon
        error; 1.0 reproduces the performance model exactly.
    window_cycles:
        Width of the observation windows fed to ``monitor``.
    monitor:
        Online stop condition (e.g. a PKP stability detector).  When it
        returns True the engine stops at that window boundary.
    collect_series:
        Keep every window sample on the result (needed for Figure-5-style
        time-series plots); otherwise samples are discarded after the
        monitor sees them.

    Notes
    -----
    When neither ``monitor`` nor ``collect_series`` is given the engine
    takes a fast path that computes the identical greedy schedule without
    window bookkeeping.
    """
    if bias <= 0:
        raise SimulationError("bias must be positive")
    if window_cycles <= 0:
        raise SimulationError("window_cycles must be positive")

    perf = analyze_kernel(launch, gpu)
    durations = block_durations(launch, perf, bias)
    slots = min(launch.grid_blocks, perf.occupancy.wave_size)

    if monitor is None and not collect_series:
        return _run_fast(launch, perf, durations, slots)
    return _run_windowed(
        launch, gpu, perf, durations, slots, window_cycles, monitor, collect_series
    )


def _run_fast(
    launch: KernelLaunch,
    perf: KernelPerformance,
    durations: np.ndarray,
    slots: int,
) -> KernelSimResult:
    """Greedy list scheduling without window bookkeeping (full-run totals)."""
    grid = launch.grid_blocks
    if grid <= slots:
        makespan = float(durations.max())
    else:
        heap = list(durations[:slots])
        heapq.heapify(heap)
        for idx in range(slots, grid):
            start = heapq.heappop(heap)
            heapq.heappush(heap, start + float(durations[idx]))
        makespan = max(heap)
    total_insts = perf.warp_insts_per_block * grid
    total_bytes = perf.memory.dram_bytes_per_block * grid
    return KernelSimResult(
        launch=launch,
        perf=perf,
        cycles=makespan,
        blocks_finished=grid,
        warp_instructions=total_insts,
        dram_bytes=total_bytes,
        stopped_early=False,
    )


def _run_windowed(
    launch: KernelLaunch,
    gpu: GPUConfig,
    perf: KernelPerformance,
    durations: np.ndarray,
    slots: int,
    window_cycles: float,
    monitor: StopMonitor | Callable[[WindowSample], bool] | None,
    collect_series: bool,
) -> KernelSimResult:
    """Event loop with per-window IPC/L2/DRAM emission and early stop."""
    observe = _resolve_monitor(monitor)
    grid = launch.grid_blocks
    inst_per_block = perf.warp_insts_per_block
    bytes_per_block = perf.memory.dram_bytes_per_block
    base_miss = (1.0 - perf.memory.l2_hit_rate) * 100.0
    peak_dram = gpu.dram_bytes_per_cycle
    miss_rng = np.random.default_rng(launch.spec.signature() % 2**63)
    # Windowed IPC is bursty in proportion to the kernel's irregularity:
    # memory bursts, instruction replays and uneven intra-block progress
    # show up as window-to-window jitter that the uniform-rate attribution
    # would otherwise smooth away.  This is the signal PKP's stability
    # detector actually contends with (Figure 5b's noisy BFS trace).
    ipc_noise_sigma = 0.45 * launch.spec.duration_cv
    noise_rng = np.random.default_rng((launch.spec.signature() * 31 + 7) % 2**63)
    # On top of white jitter, IPC *wanders* at low frequency while blocks
    # work through their phases (cache warm-up, loop progression, DRAM row
    # locality shifts); the wander dies out over roughly one block
    # lifetime.  Kernels with many short blocks therefore calm down after
    # a wave (syr2k-style, where PKP saves 50x), while a handful of huge
    # blocks keep the signal moving for much of the kernel (DeepBench
    # GEMMs, where PKP saves ~2x).
    wander = 0.0
    wander_rho = 0.8
    wander_amp0 = 0.12
    first_wave = durations[: min(slots, len(durations))]
    block_lifetime = float(first_wave.mean()) if len(first_wave) else 1.0

    # Resident blocks as a heap of (end_cycle, inst_rate, byte_rate).
    heap: list[tuple[float, float, float]] = []
    inst_rate = 0.0
    byte_rate = 0.0
    next_block = 0
    finished = 0
    now = 0.0
    win_insts = 0.0
    win_bytes = 0.0
    window_end = window_cycles
    total_insts = 0.0
    total_bytes = 0.0
    samples: list[WindowSample] = []
    stopped = False

    def start_blocks() -> None:
        nonlocal next_block, inst_rate, byte_rate
        while next_block < grid and len(heap) < slots:
            duration = float(durations[next_block])
            block_inst_rate = inst_per_block / duration
            block_byte_rate = bytes_per_block / duration
            heapq.heappush(heap, (now + duration, block_inst_rate, block_byte_rate))
            inst_rate += block_inst_rate
            byte_rate += block_byte_rate
            next_block += 1

    start_blocks()
    while finished < grid and not stopped:
        next_completion = heap[0][0]
        # Emit any windows that close before the next block completion.
        while window_end <= next_completion and not stopped:
            elapsed = window_end - now
            win_insts += inst_rate * elapsed
            win_bytes += byte_rate * elapsed
            total_insts += inst_rate * elapsed
            total_bytes += byte_rate * elapsed
            now = window_end
            observed_ipc = win_insts / window_cycles
            amp = wander_amp0 * np.exp(-3.0 * now / block_lifetime)
            wander = wander_rho * wander + amp * float(noise_rng.standard_normal())
            observed_ipc *= 1.0 + wander
            if ipc_noise_sigma > 0:
                observed_ipc *= 1.0 + ipc_noise_sigma * float(
                    noise_rng.standard_normal()
                )
            observed_ipc = max(0.0, observed_ipc)
            sample = WindowSample(
                cycle=window_end,
                ipc=observed_ipc,
                l2_miss_rate=min(
                    100.0,
                    max(0.0, base_miss * (1.0 + 0.04 * miss_rng.standard_normal())),
                ),
                dram_util=min(100.0, 100.0 * win_bytes / (window_cycles * peak_dram)),
                blocks_finished=finished,
            )
            if collect_series:
                samples.append(sample)
            if observe is not None and observe(sample):
                stopped = True
            win_insts = 0.0
            win_bytes = 0.0
            window_end += window_cycles
        if stopped:
            break
        # Advance to the completion and retire every block ending there.
        elapsed = next_completion - now
        win_insts += inst_rate * elapsed
        win_bytes += byte_rate * elapsed
        total_insts += inst_rate * elapsed
        total_bytes += byte_rate * elapsed
        now = next_completion
        while heap and heap[0][0] <= now + 1e-9:
            _, done_inst_rate, done_byte_rate = heapq.heappop(heap)
            inst_rate -= done_inst_rate
            byte_rate -= done_byte_rate
            finished += 1
        start_blocks()

    return KernelSimResult(
        launch=launch,
        perf=perf,
        cycles=now,
        blocks_finished=finished,
        warp_instructions=total_insts,
        dram_bytes=total_bytes,
        stopped_early=stopped,
        samples=tuple(samples),
    )


def _resolve_monitor(
    monitor: StopMonitor | Callable[[WindowSample], bool] | None,
) -> Callable[[WindowSample], bool] | None:
    if monitor is None:
        return None
    if hasattr(monitor, "observe"):
        return monitor.observe  # type: ignore[union-attr]
    return monitor
