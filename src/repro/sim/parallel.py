"""Parallel execution backends for the simulation substrate.

The paper's pitch is tractability, and per-kernel simulation is
embarrassingly parallel: every distinct (kernel spec, grid) pair is an
independent, deterministic computation.  This module provides the
execution backends the rest of the stack fans work out through:

* :class:`SerialBackend` — in-process, in-order execution (the default);
* :class:`ProcessPoolBackend` — a ``ProcessPoolExecutor`` fan-out with a
  *deterministic reduce*: results always come back in submission order,
  so callers accumulate them exactly as the serial path would and
  parallel results are bit-identical to serial ones.

Workers are plain module-level functions over picklable payloads
(frozen dataclasses all the way down), with per-process caches so one
worker builds its :class:`~repro.sim.simulator.Simulator` or
:class:`~repro.sim.silicon.SiliconExecutor` once and reuses it across
batches.

Backends are specified as ``None``/"serial" (serial), "auto"/0 (process
pool, one worker per CPU), an integer worker count, or a ready-made
backend object; :func:`resolve_backend` normalizes all of these.

On top of the order-preserving ``map_tasks`` sits the **fault-tolerant
runtime**: ``run_tasks`` executes every task under a
:class:`FaultPolicy` (bounded retries with deterministic seeded
exponential backoff, an optional wall-clock timeout) and returns one
:class:`TaskOutcome` per task — a value or a structured
:class:`TaskFailure` — instead of aborting the whole batch on the first
problem.  The pool backend additionally detects dead workers: a
``BrokenProcessPool`` round is re-run at single-task granularity until
the poison task is isolated, charged a :class:`~repro.errors.WorkerCrashError`
and (once retries are exhausted) quarantined, while every innocent
bystander task is recomputed for free.  Hung tasks past the policy
timeout have their workers terminated and are retried the same way.
Recovery never reorders results, so the bit-identical serial == parallel
guarantee holds for every non-quarantined task.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Protocol, runtime_checkable

from repro.errors import (
    ConfigurationError,
    RetryExhaustedError,
    TaskFailureError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.obs import ObsSnapshot, capture_tracer, get_tracer, obs_count, obs_span
from repro.sim.faults import DEFAULT_HANG_SECONDS, FaultPlan, run_with_fault

__all__ = [
    "FAIL_FAST",
    "ExecutionBackend",
    "FaultPolicy",
    "ProcessPoolBackend",
    "SerialBackend",
    "TaskFailure",
    "TaskOutcome",
    "auto_worker_count",
    "chunked",
    "resolve_backend",
]


def auto_worker_count() -> int:
    """Worker count for ``jobs="auto"``: one per available CPU."""
    return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# Fault policy and task outcomes.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultPolicy:
    """How the runtime treats a failing task.

    ``max_retries`` bounds how many times one task is re-attempted after
    its first failure; ``timeout_seconds`` bounds the wall clock one
    attempt may consume (``None`` disables the watchdog).  Backoff
    between attempts grows exponentially with a *deterministic seeded
    jitter*: the jitter for ``(task, attempt)`` is a pure function of
    ``jitter_seed``, so a replayed sweep sleeps exactly as long as the
    original did and stays reproducible.

    Timeout enforcement differs by backend, by necessity: the process
    pool enforces it preemptively (hung workers are terminated), the
    serial backend post-hoc (an attempt that returns after its deadline
    is discarded and classified as a timeout).  Both classify the task
    identically, which is what the serial == parallel guarantee needs.
    """

    max_retries: int = 2
    timeout_seconds: float | None = None
    backoff_base_seconds: float = 0.02
    backoff_multiplier: float = 2.0
    jitter_fraction: float = 0.25
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ConfigurationError("timeout_seconds must be positive or None")
        if self.backoff_base_seconds < 0:
            raise ConfigurationError("backoff_base_seconds must be >= 0")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def backoff_seconds(self, task_index: int, attempt: int) -> float:
        """Sleep before re-attempting ``task_index`` after ``attempt`` failed.

        Exponential in the attempt number, with a jitter fraction drawn
        deterministically from ``sha256(jitter_seed, task_index, attempt)``
        — no shared clock, no RNG state, same value on every replay.
        """
        base = self.backoff_base_seconds * self.backoff_multiplier ** (attempt - 1)
        seed = f"{self.jitter_seed}:{task_index}:{attempt}".encode("utf-8")
        digest = hashlib.sha256(seed).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 + self.jitter_fraction * fraction)

    def hang_seconds(self) -> float:
        """How long an injected hang sleeps when the fault doesn't say."""
        if self.timeout_seconds is None:
            return DEFAULT_HANG_SECONDS
        return self.timeout_seconds * 1.5


#: Zero retries, no timeout: the policy ``map_tasks`` runs under, which
#: preserves its historical fail-fast semantics exactly.
FAIL_FAST = FaultPolicy(max_retries=0, backoff_base_seconds=0.0)


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one task's final, post-retry failure.

    ``kind`` is the runtime's classification — ``"exception"`` (the task
    body raised), ``"timeout"`` (an attempt outlived the policy
    deadline) or ``"crash"`` (the worker process died) — and
    ``error_type``/``message`` describe the last underlying error.
    The record is plain data: it serializes into sweep manifests and
    reconstructs a typed exception via :meth:`to_error`.
    """

    index: int
    label: str
    kind: str
    error_type: str
    message: str
    attempts: int

    def to_error(self) -> TaskFailureError:
        """The typed exception equivalent of this record."""
        if self.kind == "timeout":
            cls: type[TaskFailureError] = TaskTimeoutError
        elif self.kind == "crash":
            cls = WorkerCrashError
        else:
            cls = RetryExhaustedError
        return cls(
            f"{self.label}: {self.error_type}: {self.message} "
            f"(after {self.attempts} attempt{'s' if self.attempts != 1 else ''})",
            task_index=self.index,
            task_label=self.label,
            attempts=self.attempts,
        )


@dataclass
class TaskOutcome:
    """One task's result under ``run_tasks``: a value or a failure.

    ``exception`` carries the original in-flight exception object for
    strict re-raising (parent-side only; excluded from equality so
    outcomes compare on what they *mean*).
    """

    index: int
    label: str
    value: Any = None
    failure: TaskFailure | None = None
    exception: BaseException | None = field(
        default=None, compare=False, repr=False
    )
    #: Worker-side spans/counters captured while the task ran (pool
    #: backend with tracing enabled only).  Excluded from equality:
    #: telemetry must never break the bit-identical serial == parallel
    #: comparison.
    obs: ObsSnapshot | None = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        return self.failure is None


class _TaskState:
    """Mutable bookkeeping for one task across retry rounds."""

    __slots__ = ("index", "item", "label", "attempt", "outcome")

    def __init__(self, index: int, item: Any, label: str) -> None:
        self.index = index
        self.item = item
        self.label = label
        self.attempt = 1
        self.outcome: TaskOutcome | None = None


def _labels_for(work: Sequence[Any], labels: Sequence[str] | None) -> list[str]:
    if labels is None:
        return [f"task {index}" for index in range(len(work))]
    labels = list(labels)
    if len(labels) != len(work):
        raise ConfigurationError(
            f"got {len(labels)} labels for {len(work)} tasks"
        )
    return labels


def _raise_outcome(outcome: TaskOutcome) -> None:
    """Strict mode: re-raise a failed outcome as the caller should see it.

    A plain exception that was never retried surfaces with its original
    type and message (the historical ``map_tasks`` contract); everything
    else surfaces as the typed :class:`~repro.errors.TaskFailureError`
    subclass, chained to the underlying cause when one was captured.
    """
    failure = outcome.failure
    assert failure is not None
    if (
        failure.kind == "exception"
        and failure.attempts == 1
        and outcome.exception is not None
    ):
        raise outcome.exception
    if outcome.exception is not None:
        raise failure.to_error() from outcome.exception
    raise failure.to_error()


def _classify(exc: BaseException) -> str:
    return "crash" if isinstance(exc, WorkerCrashError) else "exception"


def _final_failure(
    state: _TaskState, kind: str, exc: BaseException | None
) -> TaskFailure:
    if exc is None:
        if kind == "timeout":
            error_type, message = "TaskTimeoutError", "attempt exceeded the policy timeout"
        else:
            error_type, message = "WorkerCrashError", "worker process died mid-task"
    else:
        error_type, message = type(exc).__name__, str(exc)
    return TaskFailure(
        index=state.index,
        label=state.label,
        kind=kind,
        error_type=error_type,
        message=message,
        attempts=state.attempt,
    )


def _observed_pool_task(payload: tuple) -> tuple[Any, ObsSnapshot | None]:
    """Worker: run one fault-wrapped task, optionally capturing telemetry.

    ``payload`` is ``((fn, item, fault, attempt, True), label, capture)``.
    With ``capture`` set (the parent's tracer was enabled at submission),
    the task runs under an isolated tracer and its spans/counters are
    shipped back alongside the value; the parent merges them into its own
    timeline and attaches them to the :class:`TaskOutcome`.  The inner
    payload is exactly what :func:`~repro.sim.faults.run_with_fault`
    expects, so fault-injection semantics are untouched.
    """
    inner, label, capture = payload
    if not capture:
        return run_with_fault(inner), None
    attempt = inner[3]
    with capture_tracer() as tracer:
        with tracer.span("task", label=label, attempt=attempt, worker=os.getpid()):
            value = run_with_fault(inner)
        return value, tracer.snapshot()


def _run_tasks_inline(
    fn: Callable[[Any], Any],
    work: Sequence[Any],
    policy: FaultPolicy,
    labels: Sequence[str] | None,
    fault_plan: FaultPlan | None,
    strict: bool,
    on_outcome: Callable[[TaskOutcome], None] | None = None,
    in_worker: bool = False,
) -> list[TaskOutcome]:
    """The in-process fault-tolerant loop both backends share.

    Used directly by :class:`SerialBackend` and as the pool backend's
    degenerate path (one task, or one worker).  ``in_worker`` defaults to
    False, so injected crashes are simulated as
    :class:`~repro.errors.WorkerCrashError` instead of taking the caller
    down; fleet worker processes pass True (via the harness's
    ``crash_in_process``) so a "crash" fault genuinely kills them and
    exercises the supervisor's dead-worker recovery.
    """
    names = _labels_for(work, labels)
    outcomes: list[TaskOutcome] = []
    for index, item in enumerate(work):
        state = _TaskState(index, item, names[index])
        fault = (
            fault_plan.resolved(index, policy.hang_seconds())
            if fault_plan
            else None
        )
        while True:
            started = time.monotonic()
            try:
                with obs_span("task", label=state.label, attempt=state.attempt):
                    value = run_with_fault(
                        (fn, item, fault, state.attempt, in_worker)
                    )
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                kind, last_exc = _classify(exc), exc
            else:
                elapsed = time.monotonic() - started
                if (
                    policy.timeout_seconds is not None
                    and elapsed > policy.timeout_seconds
                ):
                    kind, last_exc = "timeout", None
                else:
                    state.outcome = TaskOutcome(index, state.label, value=value)
                    break
            if state.attempt < policy.max_attempts:
                time.sleep(policy.backoff_seconds(index, state.attempt))
                state.attempt += 1
                obs_count("tasks.retries")
                continue
            obs_count("tasks.quarantined")
            state.outcome = TaskOutcome(
                index,
                state.label,
                failure=_final_failure(state, kind, last_exc),
                exception=last_exc,
            )
            break
        if on_outcome is not None:
            on_outcome(state.outcome)
        if strict and not state.outcome.ok:
            _raise_outcome(state.outcome)
        outcomes.append(state.outcome)
    return outcomes


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can map a picklable task over items, in order."""

    jobs: int

    def map_tasks(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every item; results in item order."""
        ...


class SerialBackend:
    """In-process execution: the reference the pool must reproduce."""

    jobs = 1

    def map_tasks(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> list[Any]:
        return [fn(item) for item in items]

    def run_tasks(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        policy: FaultPolicy | None = None,
        labels: Sequence[str] | None = None,
        fault_plan: FaultPlan | None = None,
        strict: bool = False,
        on_outcome: Callable[[TaskOutcome], None] | None = None,
    ) -> list[TaskOutcome]:
        """Fault-tolerant in-order execution; see :class:`FaultPolicy`.

        ``on_outcome`` is invoked once per task, as its outcome is
        decided — the hook the serving layer uses to complete jobs at
        task granularity instead of batch granularity.
        """
        return _run_tasks_inline(
            fn, list(items), policy or FAIL_FAST, labels, fault_plan, strict,
            on_outcome,
        )

    def close(self) -> None:
        """Nothing to release; present for backend-lifecycle symmetry."""

    def __repr__(self) -> str:
        return "SerialBackend()"


class ProcessPoolBackend:
    """Process-pool fan-out with a deterministic, order-preserving reduce.

    Tasks are submitted in item order and results gathered in the same
    order regardless of completion order, so any reduction the caller
    performs over the returned list happens exactly as it would have
    serially.  If several workers fail, the exception of the
    *earliest-submitted* failing task is raised — again independent of
    scheduling — and it carries the worker's original type and message.
    Pool-infrastructure failures are re-raised as :mod:`repro.errors`
    types at this boundary: a dead worker surfaces as
    :class:`~repro.errors.WorkerCrashError` naming the task that killed
    it (isolated by re-running the broken round at single-task
    granularity), a blown deadline as
    :class:`~repro.errors.TaskTimeoutError`.
    """

    def __init__(self, jobs: int | None = None, *, persistent: bool = False) -> None:
        if jobs is not None and jobs < 1:
            raise ConfigurationError("jobs must be >= 1 (or None for auto)")
        self.jobs = jobs if jobs is not None else auto_worker_count()
        #: With ``persistent=True`` one executor (and its warm workers,
        #: with their per-process simulator/harness caches) is kept alive
        #: across ``run_tasks`` calls instead of being rebuilt per round —
        #: what a long-lived server wants.  The pool is discarded and
        #: lazily rebuilt after a worker crash or a timeout kill, since a
        #: broken executor cannot be reused.  Call :meth:`close` when done.
        self.persistent = persistent
        self._pool: ProcessPoolExecutor | None = None

    def _acquire_pool(self, workers: int) -> tuple[ProcessPoolExecutor, bool]:
        """The executor for one round, and whether it is round-scoped."""
        if not self.persistent:
            return (
                ProcessPoolExecutor(
                    max_workers=workers, mp_context=self._context()
                ),
                True,
            )
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=self._context()
            )
            obs_count("backend.pool_starts")
        return self._pool, False

    def _discard_pool(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def close(self) -> None:
        """Shut down the persistent pool (no-op in round-scoped mode)."""
        self._discard_pool()

    def map_tasks(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> list[Any]:
        work = list(items)
        if len(work) <= 1 or self.jobs == 1:
            # Nothing to fan out; run inline (identical semantics, no
            # pool startup cost).
            return [fn(item) for item in work]
        results = []
        for outcome in self.run_tasks(fn, work, policy=FAIL_FAST):
            if not outcome.ok:
                _raise_outcome(outcome)
            results.append(outcome.value)
        return results

    def run_tasks(
        self,
        fn: Callable[[Any], Any],
        items: Iterable[Any],
        *,
        policy: FaultPolicy | None = None,
        labels: Sequence[str] | None = None,
        fault_plan: FaultPlan | None = None,
        strict: bool = False,
        on_outcome: Callable[[TaskOutcome], None] | None = None,
    ) -> list[TaskOutcome]:
        """Fault-tolerant fan-out: retries, timeouts, crash isolation.

        Pending tasks run in rounds.  A round that loses a worker
        (``BrokenProcessPool``) cannot tell which of its in-flight tasks
        was responsible, so the unresolved tasks are re-run one per pool
        — the poison task identifies itself by crashing alone, is
        charged the attempt, and every bystander completes unharmed.
        Tasks still running at the policy deadline have their workers
        terminated and are charged a timeout.  Charged tasks retry with
        deterministic backoff until the policy quarantines them.
        """
        policy = policy or FAIL_FAST
        work = list(items)
        names = _labels_for(work, labels)
        if len(work) <= 1 or self.jobs == 1:
            return _run_tasks_inline(
                fn, work, policy, names, fault_plan, strict, on_outcome
            )
        states = [
            _TaskState(index, item, names[index])
            for index, item in enumerate(work)
        ]
        pending: list[_TaskState] = list(states)
        isolation: list[_TaskState] = []
        while pending or isolation:
            if isolation:
                # A broken round with several unresolved tasks: re-run
                # them at single-task granularity to find the poison.
                batch, isolation = [isolation[0]], isolation[1:]
            else:
                batch, pending = pending, []
            statuses = self._run_round(fn, batch, policy, fault_plan)
            for state, (status, payload) in zip(batch, statuses, strict=True):
                if status == "ok":
                    value, shipped = payload
                    if shipped is not None:
                        get_tracer().merge(shipped)
                    state.outcome = TaskOutcome(
                        state.index, state.label, value=value, obs=shipped
                    )
                    if on_outcome is not None:
                        on_outcome(state.outcome)
                    continue
                if status == "suspect":
                    isolation.append(state)  # uncharged: maybe innocent
                    continue
                if status == "requeue":
                    pending.append(state)  # uncharged teardown victim
                    continue
                kind = status  # "error" | "crash" | "timeout"
                exc = payload if status == "error" else None
                kind = _classify(exc) if exc is not None else kind
                if state.attempt < policy.max_attempts:
                    time.sleep(policy.backoff_seconds(state.index, state.attempt))
                    state.attempt += 1
                    obs_count("tasks.retries")
                    pending.append(state)
                    continue
                obs_count("tasks.quarantined")
                state.outcome = TaskOutcome(
                    state.index,
                    state.label,
                    failure=_final_failure(state, kind, exc),
                    exception=exc,
                )
                if on_outcome is not None:
                    on_outcome(state.outcome)
        outcomes = sorted(
            (state.outcome for state in states), key=lambda o: o.index
        )
        if strict:
            for outcome in outcomes:
                if not outcome.ok:
                    _raise_outcome(outcome)
        return outcomes

    def _run_round(
        self,
        fn: Callable[[Any], Any],
        states: Sequence[_TaskState],
        policy: FaultPolicy,
        fault_plan: FaultPlan | None,
    ) -> list[tuple[str, Any]]:
        """One pool lifetime over ``states``.

        Returns, per state and in state order, one of ``("ok", value)``,
        ``("error", exception)``, ``("timeout", None)`` (the task's own
        deadline expired), ``("crash", None)`` (exactly one unresolved
        task in a broken pool — it is the culprit), ``("suspect", None)``
        (several unresolved tasks in a broken pool; the caller must
        isolate) or ``("requeue", None)`` (an innocent task torn down
        with the pool when a *different* task hung; re-run uncharged).

        The timeout clock for each task starts when its future is first
        *observed executing* — not at submission — so queueing behind a
        full pool never counts against a task's budget and a large
        batch cannot mass-expire.  ``Future.running()`` alone is not
        that signal: the pool flips it when a work item enters the call
        queue, which buffers one item beyond the worker count.  Worker
        pickup is FIFO, however, so the futures actually on a worker are
        always the earliest ``max_workers`` unfinished ones in
        submission order; only those can start their clocks.
        Observation happens on a polling loop, so enforcement lags the
        true deadline by at most one poll interval.
        """
        workers = min(self.jobs, len(states))
        pool, round_scoped = self._acquire_pool(workers)
        results: dict[int, tuple[str, Any]] = {}
        futures: dict[Future, _TaskState] = {}
        timed_out: set[Future] = set()
        broken: list[_TaskState] = []
        capture = get_tracer().enabled
        try:
            for state in states:
                fault = (
                    fault_plan.resolved(state.index, policy.hang_seconds())
                    if fault_plan
                    else None
                )
                future = pool.submit(
                    _observed_pool_task,
                    (
                        (fn, state.item, fault, state.attempt, True),
                        state.label,
                        capture,
                    ),
                )
                futures[future] = state
            timeout = policy.timeout_seconds
            poll = None if timeout is None else max(0.01, min(0.05, timeout / 4))
            started_at: dict[Future, float] = {}
            ordered = list(futures)  # submission order
            unfinished = set(futures)
            while unfinished:
                _done, unfinished = wait(unfinished, timeout=poll)
                if timeout is None:
                    continue  # single blocking wait already drained
                now = time.monotonic()
                executing = [f for f in ordered if not f.done()][:workers]
                for future in executing:
                    if future not in started_at and future.running():
                        started_at[future] = now
                timed_out = {
                    future
                    for future in unfinished
                    if future in started_at and now - started_at[future] > timeout
                }
                if timed_out:
                    break
            for future, state in futures.items():
                if future in timed_out:
                    results[state.index] = ("timeout", None)
                elif not future.done():
                    # Torn down with the pool while another task hung.
                    results[state.index] = ("requeue", None)
                elif future.cancelled():
                    broken.append(state)
                else:
                    exc = future.exception()
                    if exc is None:
                        results[state.index] = ("ok", future.result())
                    elif isinstance(exc, BrokenExecutor):
                        broken.append(state)
                    else:
                        results[state.index] = ("error", exc)
            if broken:
                status = "crash" if len(broken) == 1 else "suspect"
                for state in broken:
                    results[state.index] = (status, None)
        finally:
            if timed_out:
                # Hung workers never return; kill them so shutdown's
                # join is immediate instead of waiting out the hang.
                for process in list(getattr(pool, "_processes", {}).values()):
                    try:
                        process.terminate()
                    except OSError:
                        pass
            if round_scoped:
                pool.shutdown(wait=True, cancel_futures=True)
            elif timed_out or broken:
                # A persistent pool that lost workers (crash) or had them
                # terminated (hang) is unusable; discard it so the next
                # round lazily builds a fresh one.
                self._discard_pool()
        return [results[state.index] for state in states]

    @staticmethod
    def _context():
        # Fork is the fast path and inherits loaded modules; fall back to
        # the platform default where fork is unavailable (e.g. Windows).
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else None)

    def __repr__(self) -> str:
        suffix = ", persistent=True" if self.persistent else ""
        return f"ProcessPoolBackend(jobs={self.jobs}{suffix})"


def resolve_backend(
    spec: ExecutionBackend | str | int | None,
) -> ExecutionBackend:
    """Normalize a backend specification into a backend object.

    Accepts ``None``/""/"serial"/1 (serial), "auto"/0 (process pool with
    one worker per CPU), a positive integer worker count (as int or
    numeric string), or an object already implementing the backend
    protocol.
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, (SerialBackend, ProcessPoolBackend)):
        return spec
    if isinstance(spec, str):
        text = spec.strip().lower()
        if text in ("", "serial"):
            return SerialBackend()
        if text in ("auto", "process", "process-pool"):
            return ProcessPoolBackend()
        try:
            spec = int(text)
        except ValueError as exc:
            raise ConfigurationError(
                f"unknown backend spec {text!r}; use 'serial', 'auto' or a "
                "worker count"
            ) from exc
    if isinstance(spec, int):
        if spec < 0:
            raise ConfigurationError("worker count must be >= 0")
        if spec == 0:
            return ProcessPoolBackend()
        if spec == 1:
            return SerialBackend()
        return ProcessPoolBackend(spec)
    if isinstance(spec, ExecutionBackend):
        return spec
    raise ConfigurationError(f"cannot interpret backend spec {spec!r}")


def chunked(items: Sequence[Any], n_chunks: int) -> list[list[Any]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, even chunks."""
    if n_chunks < 1:
        raise ConfigurationError("n_chunks must be >= 1")
    items = list(items)
    if not items:
        return []
    n_chunks = min(n_chunks, len(items))
    base, extra = divmod(len(items), n_chunks)
    chunks: list[list[Any]] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


# ---------------------------------------------------------------------------
# Worker tasks.  Module-level so they pickle by reference; each keeps a
# per-process cache so one worker builds its executor once.
# ---------------------------------------------------------------------------

_WORKER_SIMULATORS: dict[tuple, Any] = {}
_WORKER_SILICON: dict[Any, Any] = {}

#: Batches submitted per worker — small enough to amortize dispatch,
#: large enough to balance uneven kernels across the pool.
CHUNKS_PER_WORKER = 4


def simulate_batch_task(payload: tuple) -> list:
    """Worker: fully simulate a batch of launches on one simulator.

    ``payload`` is ``(gpu, model_error, window_cycles, launches)``; the
    simulator is built once per (config, process) and reused.
    """
    gpu, model_error, window_cycles, launches = payload
    key = (gpu, model_error, window_cycles)
    simulator = _WORKER_SIMULATORS.get(key)
    if simulator is None:
        from repro.sim.simulator import Simulator

        simulator = Simulator(
            gpu, model_error=model_error, window_cycles=window_cycles
        )
        _WORKER_SIMULATORS[key] = simulator
    return [simulator.run_kernel(launch) for launch in launches]


def block_shard_task(payload: tuple) -> list:
    """Worker: per-slot partial finish times for one shard of a kernel.

    ``payload`` is ``(launch, perf, bias, slots, ranges)`` where
    ``ranges`` are contiguous wave-aligned fold chunks of the grid (see
    :func:`repro.sim.engine.fold_chunk_ranges`).  Returns the individual
    chunk partial-sum vectors, *not* their merge: the parent folds all
    chunks in global order so the accumulation order — and therefore the
    result, bitwise — is independent of the shard boundaries.
    """
    launch, perf, bias, slots, ranges = payload
    from repro.sim.engine import compute_shard_partials

    blocks = ranges[-1][1] - ranges[0][0]
    with obs_span(
        "sim.intra.shard",
        kernel=launch.spec.name,
        chunks=len(ranges),
        blocks=blocks,
    ):
        return compute_shard_partials(launch, perf, bias, slots, list(ranges))


def silicon_batch_task(payload: tuple) -> list[tuple]:
    """Worker: price a batch of launches on one silicon model.

    Returns ``(signature, grid_blocks, cycles, dram_bytes_per_block)``
    tuples — exactly the entries the parent's memo tables hold.
    """
    gpu, launches = payload
    executor = _WORKER_SILICON.get(gpu)
    if executor is None:
        from repro.sim.silicon import SiliconExecutor

        executor = SiliconExecutor(gpu)
        _WORKER_SILICON[gpu] = executor
    rows = []
    for launch in launches:
        rows.append(
            (
                launch.spec.signature(),
                launch.grid_blocks,
                executor.kernel_cycles(launch),
                executor.kernel_dram_bytes_per_block(launch),
            )
        )
    return rows
