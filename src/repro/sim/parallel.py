"""Parallel execution backends for the simulation substrate.

The paper's pitch is tractability, and per-kernel simulation is
embarrassingly parallel: every distinct (kernel spec, grid) pair is an
independent, deterministic computation.  This module provides the
execution backends the rest of the stack fans work out through:

* :class:`SerialBackend` — in-process, in-order execution (the default);
* :class:`ProcessPoolBackend` — a ``ProcessPoolExecutor`` fan-out with a
  *deterministic reduce*: results always come back in submission order,
  so callers accumulate them exactly as the serial path would and
  parallel results are bit-identical to serial ones.

Workers are plain module-level functions over picklable payloads
(frozen dataclasses all the way down), with per-process caches so one
worker builds its :class:`~repro.sim.simulator.Simulator` or
:class:`~repro.sim.silicon.SiliconExecutor` once and reuses it across
batches.

Backends are specified as ``None``/"serial" (serial), "auto"/0 (process
pool, one worker per CPU), an integer worker count, or a ready-made
backend object; :func:`resolve_backend` normalizes all of these.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Protocol, runtime_checkable

from repro.errors import ConfigurationError

__all__ = [
    "ExecutionBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "auto_worker_count",
    "chunked",
    "resolve_backend",
]


def auto_worker_count() -> int:
    """Worker count for ``jobs="auto"``: one per available CPU."""
    return max(1, os.cpu_count() or 1)


@runtime_checkable
class ExecutionBackend(Protocol):
    """Anything that can map a picklable task over items, in order."""

    jobs: int

    def map_tasks(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> list[Any]:
        """Apply ``fn`` to every item; results in item order."""
        ...


class SerialBackend:
    """In-process execution: the reference the pool must reproduce."""

    jobs = 1

    def map_tasks(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> list[Any]:
        return [fn(item) for item in items]

    def __repr__(self) -> str:
        return "SerialBackend()"


class ProcessPoolBackend:
    """Process-pool fan-out with a deterministic, order-preserving reduce.

    Tasks are submitted in item order and results gathered in the same
    order regardless of completion order, so any reduction the caller
    performs over the returned list happens exactly as it would have
    serially.  If several workers fail, the exception of the
    *earliest-submitted* failing task is raised — again independent of
    scheduling — and it carries the worker's original type and message.
    """

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ConfigurationError("jobs must be >= 1 (or None for auto)")
        self.jobs = jobs if jobs is not None else auto_worker_count()

    def map_tasks(
        self, fn: Callable[[Any], Any], items: Iterable[Any]
    ) -> list[Any]:
        work = list(items)
        if len(work) <= 1 or self.jobs == 1:
            # Nothing to fan out; run inline (identical semantics, no
            # pool startup cost).
            return [fn(item) for item in work]
        context = self._context()
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(work)), mp_context=context
        ) as pool:
            futures: list[Future] = [pool.submit(fn, item) for item in work]
            return [future.result() for future in futures]

    @staticmethod
    def _context():
        # Fork is the fast path and inherits loaded modules; fall back to
        # the platform default where fork is unavailable (e.g. Windows).
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else None)

    def __repr__(self) -> str:
        return f"ProcessPoolBackend(jobs={self.jobs})"


def resolve_backend(
    spec: ExecutionBackend | str | int | None,
) -> ExecutionBackend:
    """Normalize a backend specification into a backend object.

    Accepts ``None``/""/"serial"/1 (serial), "auto"/0 (process pool with
    one worker per CPU), a positive integer worker count (as int or
    numeric string), or an object already implementing the backend
    protocol.
    """
    if spec is None:
        return SerialBackend()
    if isinstance(spec, (SerialBackend, ProcessPoolBackend)):
        return spec
    if isinstance(spec, str):
        text = spec.strip().lower()
        if text in ("", "serial"):
            return SerialBackend()
        if text in ("auto", "process", "process-pool"):
            return ProcessPoolBackend()
        try:
            spec = int(text)
        except ValueError as exc:
            raise ConfigurationError(
                f"unknown backend spec {text!r}; use 'serial', 'auto' or a "
                "worker count"
            ) from exc
    if isinstance(spec, int):
        if spec < 0:
            raise ConfigurationError("worker count must be >= 0")
        if spec == 0:
            return ProcessPoolBackend()
        if spec == 1:
            return SerialBackend()
        return ProcessPoolBackend(spec)
    if isinstance(spec, ExecutionBackend):
        return spec
    raise ConfigurationError(f"cannot interpret backend spec {spec!r}")


def chunked(items: Sequence[Any], n_chunks: int) -> list[list[Any]]:
    """Split ``items`` into at most ``n_chunks`` contiguous, even chunks."""
    if n_chunks < 1:
        raise ConfigurationError("n_chunks must be >= 1")
    items = list(items)
    if not items:
        return []
    n_chunks = min(n_chunks, len(items))
    base, extra = divmod(len(items), n_chunks)
    chunks: list[list[Any]] = []
    start = 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


# ---------------------------------------------------------------------------
# Worker tasks.  Module-level so they pickle by reference; each keeps a
# per-process cache so one worker builds its executor once.
# ---------------------------------------------------------------------------

_WORKER_SIMULATORS: dict[tuple, Any] = {}
_WORKER_SILICON: dict[Any, Any] = {}

#: Batches submitted per worker — small enough to amortize dispatch,
#: large enough to balance uneven kernels across the pool.
CHUNKS_PER_WORKER = 4


def simulate_batch_task(payload: tuple) -> list:
    """Worker: fully simulate a batch of launches on one simulator.

    ``payload`` is ``(gpu, model_error, window_cycles, launches)``; the
    simulator is built once per (config, process) and reused.
    """
    gpu, model_error, window_cycles, launches = payload
    key = (gpu, model_error, window_cycles)
    simulator = _WORKER_SIMULATORS.get(key)
    if simulator is None:
        from repro.sim.simulator import Simulator

        simulator = Simulator(
            gpu, model_error=model_error, window_cycles=window_cycles
        )
        _WORKER_SIMULATORS[key] = simulator
    return [simulator.run_kernel(launch) for launch in launches]


def silicon_batch_task(payload: tuple) -> list[tuple]:
    """Worker: price a batch of launches on one silicon model.

    Returns ``(signature, grid_blocks, cycles, dram_bytes_per_block)``
    tuples — exactly the entries the parent's memo tables hold.
    """
    gpu, launches = payload
    executor = _WORKER_SILICON.get(gpu)
    if executor is None:
        from repro.sim.silicon import SiliconExecutor

        executor = SiliconExecutor(gpu)
        _WORKER_SILICON[gpu] = executor
    rows = []
    for launch in launches:
        rows.append(
            (
                launch.spec.signature(),
                launch.grid_blocks,
                executor.kernel_cycles(launch),
                executor.kernel_dram_bytes_per_block(launch),
            )
        )
    return rows
