"""Silicon execution model: the ground truth every method is scored against.

Real hardware executes a workload in closed form here — per-launch cycles
come from :func:`repro.sim.perfmodel.analytic_kernel_cycles`, memoized on
(kernel signature, grid, GPU) because scaled workloads launch the same few
specs millions of times.  The silicon model is deterministic: the paper's
"error versus silicon" metrics need a stable reference.

With a parallel backend, distinct kernels are priced across worker
processes before the (order-preserving) accumulation loop runs, so
parallel results are bit-identical to serial ones.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import ConfigurationError
from repro.gpu.architectures import GPUConfig
from repro.gpu.kernels import KernelLaunch
from repro.obs import obs_count, obs_span
from repro.sim.memory import build_memory_profile
from repro.sim.parallel import (
    CHUNKS_PER_WORKER,
    ExecutionBackend,
    chunked,
    resolve_backend,
    silicon_batch_task,
)
from repro.sim.perfmodel import KERNEL_LAUNCH_OVERHEAD, analytic_kernel_cycles
from repro.sim.stats import AppRunResult, KernelRecord

__all__ = ["SiliconExecutor"]


class SiliconExecutor:
    """Executes workloads "on silicon" (analytically) for one GPU."""

    def __init__(
        self,
        gpu: GPUConfig,
        *,
        backend: ExecutionBackend | str | int | None = None,
        intra_jobs: ExecutionBackend | str | int | None = None,
    ) -> None:
        if backend is not None and intra_jobs is not None:
            raise ConfigurationError(
                "pass either backend or intra_jobs, not both: at the "
                "executor level they name the same worker pool"
            )
        self.gpu = gpu
        # Like the Simulator, an executor's pool only parallelizes within
        # one app run, so intra_jobs is an alias for backend here.
        self.backend = resolve_backend(backend if backend is not None else intra_jobs)
        self._cycle_cache: dict[tuple[int, int], float] = {}
        self._traffic_cache: dict[int, float] = {}

    def kernel_cycles(self, launch: KernelLaunch) -> float:
        """Ground-truth cycles for one launch, memoized."""
        key = (launch.spec.signature(), launch.grid_blocks)
        cached = self._cycle_cache.get(key)
        if cached is None:
            cached = analytic_kernel_cycles(launch, self.gpu)
            self._cycle_cache[key] = cached
        return cached

    def kernel_dram_bytes_per_block(self, launch: KernelLaunch) -> float:
        """Ground-truth DRAM traffic per thread block, memoized."""
        signature = launch.spec.signature()
        per_block = self._traffic_cache.get(signature)
        if per_block is None:
            per_block = build_memory_profile(launch.spec, self.gpu).dram_bytes_per_block
            self._traffic_cache[signature] = per_block
        return per_block

    def kernel_dram_bytes(self, launch: KernelLaunch) -> float:
        """Ground-truth DRAM traffic for one launch, memoized."""
        return self.kernel_dram_bytes_per_block(launch) * launch.grid_blocks

    def run(
        self,
        workload_name: str,
        launches: Iterable[KernelLaunch],
        *,
        keep_records: bool = False,
    ) -> AppRunResult:
        """Execute the whole application on silicon.

        ``simulated_cycles`` is zero — silicon pays no simulation cost;
        real time comes from :attr:`AppRunResult.silicon_seconds`.
        """
        launches = list(launches)
        with obs_span(
            "silicon.run",
            workload=workload_name,
            gpu=self.gpu.name,
            launches=len(launches),
        ):
            if self.backend.jobs > 1:
                self._prefetch_parallel(launches)
            total_cycles = 0.0
            total_insts = 0.0
            total_bytes = 0.0
            records: list[KernelRecord] = []
            for launch in launches:
                cycles = self.kernel_cycles(launch)
                insts = launch.warp_instructions
                dram = self.kernel_dram_bytes(launch)
                total_cycles += cycles + KERNEL_LAUNCH_OVERHEAD
                total_insts += insts
                total_bytes += dram
                if keep_records:
                    records.append(
                        KernelRecord(
                            launch_id=launch.launch_id,
                            name=launch.spec.name,
                            cycles=cycles,
                            instructions=insts,
                            dram_bytes=dram,
                            simulated_cycles=0.0,
                        )
                    )
            obs_count("silicon.kernels", len(launches))
        return AppRunResult(
            workload=workload_name,
            gpu=self.gpu,
            method="silicon",
            total_cycles=total_cycles,
            total_instructions=total_insts,
            total_dram_bytes=total_bytes,
            simulated_cycles=0.0,
            kernel_records=tuple(records),
        )

    def _prefetch_parallel(self, launches: list[KernelLaunch]) -> None:
        """Price distinct, not-yet-memoized kernels across the backend."""
        pending: dict[tuple[int, int], KernelLaunch] = {}
        for launch in launches:
            key = (launch.spec.signature(), launch.grid_blocks)
            if key not in self._cycle_cache and key not in pending:
                pending[key] = launch
        if len(pending) < 2:
            return
        batches = chunked(
            list(pending.values()), self.backend.jobs * CHUNKS_PER_WORKER
        )
        payloads = [(self.gpu, tuple(batch)) for batch in batches]
        for rows in self.backend.map_tasks(silicon_batch_task, payloads):
            for signature, grid_blocks, cycles, per_block in rows:
                self._cycle_cache[(signature, grid_blocks)] = cycles
                self._traffic_cache[signature] = per_block