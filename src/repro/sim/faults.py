"""Deterministic fault injection for the execution backends.

Month-scale sweeps die in ways unit tests of happy paths never exercise:
a malformed kernel raises, a worker process is OOM-killed, a task hangs
past any reasonable deadline.  This module provides a *seeded, replayable*
way to manufacture exactly those failures at chosen task indices, so the
recovery machinery in :mod:`repro.sim.parallel` and
:mod:`repro.analysis.harness` is proven by tests rather than trusted.

A :class:`FaultPlan` is a frozen set of :class:`InjectedFault` records,
each naming a task index, a fault ``kind`` and how many attempts it
poisons:

* ``"exception"`` — raise :class:`~repro.errors.FaultInjectedError`
  before the task body runs;
* ``"hang"`` — sleep past the policy timeout, then return normally
  (the backend must detect and kill it);
* ``"crash"`` — ``os._exit`` the worker process mid-task (only in a
  real pool worker; in-process execution simulates the crash by raising
  :class:`~repro.errors.WorkerCrashError`, since exiting would take the
  caller down with it).

``attempts=1`` (the default) makes a fault *transient*: the first
attempt fails, a retry succeeds.  A large ``attempts`` makes it
*persistent*: the task is poison and must be quarantined.

Plans come from three places: explicit construction in tests,
:meth:`FaultPlan.seeded` (a deterministic pseudo-random plan for
property tests), and :meth:`FaultPlan.parse` (the CLI's
``--inject-faults "exception@3,crash@7x99,hang@11"`` chaos flag).
"""

from __future__ import annotations

import dataclasses
import os
import random
import time
from dataclasses import dataclass

from repro.errors import ConfigurationError, FaultInjectedError, WorkerCrashError

__all__ = [
    "DEFAULT_HANG_SECONDS",
    "FAULT_KINDS",
    "PERSISTENT",
    "FaultPlan",
    "InjectedFault",
    "run_with_fault",
]

FAULT_KINDS = ("exception", "hang", "crash")

#: ``attempts`` value that outlives any sane retry budget: the fault is
#: permanent and the task must be quarantined.
PERSISTENT = 1_000_000

#: Hang duration when neither the fault nor the policy pins one down.
DEFAULT_HANG_SECONDS = 0.25

#: Worker exit status used by injected crashes (distinctive in core CI logs).
CRASH_EXIT_CODE = 73


@dataclass(frozen=True)
class InjectedFault:
    """One manufactured failure: which task, how, and for how many attempts."""

    task_index: int
    kind: str
    attempts: int = 1
    hang_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; choose one of {FAULT_KINDS}"
            )
        if self.task_index < 0:
            raise ConfigurationError("fault task_index must be >= 0")
        if self.attempts < 1:
            raise ConfigurationError("fault attempts must be >= 1")

    @property
    def persistent(self) -> bool:
        return self.attempts >= PERSISTENT

    def spec(self) -> str:
        """The ``kind@index[xattempts]`` form :meth:`FaultPlan.parse` reads."""
        suffix = "" if self.attempts == 1 else f"x{self.attempts}"
        return f"{self.kind}@{self.task_index}{suffix}"


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, replayable set of faults keyed by task index."""

    faults: tuple[InjectedFault, ...] = ()

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for fault in self.faults:
            if fault.task_index in seen:
                raise ConfigurationError(
                    f"duplicate fault for task index {fault.task_index}"
                )
            seen.add(fault.task_index)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def fault_for(self, task_index: int) -> InjectedFault | None:
        for fault in self.faults:
            if fault.task_index == task_index:
                return fault
        return None

    def resolved(
        self, task_index: int, default_hang_seconds: float
    ) -> InjectedFault | None:
        """The fault for one task, with hang duration made concrete."""
        fault = self.fault_for(task_index)
        if fault is None or fault.kind != "hang" or fault.hang_seconds is not None:
            return fault
        return dataclasses.replace(fault, hang_seconds=default_hang_seconds)

    def spec(self) -> str:
        return ",".join(fault.spec() for fault in self.faults)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse ``"exception@3,crash@7x99,hang@11"`` into a plan.

        Each entry is ``kind@index`` with an optional ``xN`` suffix for
        the number of poisoned attempts (``xP`` for persistent).
        """
        faults = []
        for entry in text.split(","):
            entry = entry.strip()
            if not entry:
                continue
            try:
                kind, _, position = entry.partition("@")
                index_text, _, attempts_text = position.partition("x")
                attempts = 1
                if attempts_text:
                    attempts = (
                        PERSISTENT
                        if attempts_text.lower() == "p"
                        else int(attempts_text)
                    )
                faults.append(
                    InjectedFault(
                        task_index=int(index_text), kind=kind, attempts=attempts
                    )
                )
            except ValueError as exc:
                raise ConfigurationError(
                    f"cannot parse fault spec {entry!r}; expected "
                    "kind@index[xattempts], e.g. 'crash@7x99'"
                ) from exc
        return cls(faults=tuple(faults))

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_tasks: int,
        *,
        n_faults: int | None = None,
        kinds: tuple[str, ...] = FAULT_KINDS,
        persistent_fraction: float = 0.5,
    ) -> "FaultPlan":
        """A deterministic pseudo-random plan over ``n_tasks`` task slots.

        The same ``(seed, n_tasks, ...)`` always yields the same plan, so
        property tests can replay any failing chaos scenario exactly.
        """
        if n_tasks <= 0:
            return cls()
        rng = random.Random(seed)
        count = n_faults if n_faults is not None else rng.randint(1, max(1, n_tasks // 4))
        count = min(count, n_tasks)
        indices = rng.sample(range(n_tasks), count)
        faults = tuple(
            InjectedFault(
                task_index=index,
                kind=rng.choice(list(kinds)),
                attempts=PERSISTENT if rng.random() < persistent_fraction else 1,
            )
            for index in sorted(indices)
        )
        return cls(faults=faults)


def _fire(fault: InjectedFault, *, in_worker: bool) -> None:
    """Carry out one fault, as destructively as the setting allows."""
    if fault.kind == "exception":
        raise FaultInjectedError(
            f"injected exception at task {fault.task_index}"
        )
    if fault.kind == "hang":
        time.sleep(
            fault.hang_seconds if fault.hang_seconds is not None else DEFAULT_HANG_SECONDS
        )
        return
    # "crash": only a real pool worker may take the process down.
    if in_worker:
        os._exit(CRASH_EXIT_CODE)
    raise WorkerCrashError(
        f"injected worker crash at task {fault.task_index} (simulated in-process)",
        task_index=fault.task_index,
    )


def run_with_fault(payload: tuple):
    """Execute one task under fault injection.  Module-level: pickles by
    reference, so process-pool backends submit it directly.

    ``payload`` is ``(fn, item, fault, attempt, in_worker)``; the fault
    fires only while ``attempt <= fault.attempts``, which is what makes
    transient faults recoverable and persistent ones quarantinable.
    """
    fn, item, fault, attempt, in_worker = payload
    if fault is not None and attempt <= fault.attempts:
        _fire(fault, in_worker=in_worker)
    return fn(item)
