"""Cache and DRAM traffic model.

Reduces a kernel's memory behaviour to the two quantities the performance
model needs: the DRAM bytes one thread block moves, and the L2 hit rate it
achieves.  Both derive only from the kernel spec and the GPU's L2
capacity, mirroring how the paper's arch-agnostic counters (sector counts)
relate to arch-dependent outcomes (miss rates) through the cache model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.architectures import GPUConfig
from repro.gpu.kernels import KernelSpec

__all__ = ["MemoryProfile", "build_memory_profile", "SECTOR_BYTES"]

SECTOR_BYTES = 32
# Atomics are serialized read-modify-writes at the L2; charge each one a
# full sector round-trip regardless of locality.
_ATOMIC_BYTES = 2 * SECTOR_BYTES


@dataclass(frozen=True)
class MemoryProfile:
    """Per-block memory behaviour of one kernel on one GPU.

    Attributes
    ----------
    l2_hit_rate:
        Fraction of sector requests served by the L2.
    l2_sectors_per_block:
        Sector requests one block presents to the L2.
    dram_bytes_per_block:
        Bytes one block moves to/from DRAM after L2 filtering.
    """

    l2_hit_rate: float
    l2_sectors_per_block: float
    dram_bytes_per_block: float


def l2_hit_rate(spec: KernelSpec, gpu: GPUConfig) -> float:
    """Effective L2 hit rate of ``spec`` on ``gpu``.

    The spec's ``l2_locality`` is the hit rate an infinite cache would
    achieve; a finite cache degrades it by the square root of the
    capacity/footprint ratio, a standard smooth approximation of
    reuse-distance truncation.
    """
    capacity_ratio = min(1.0, gpu.l2_size_bytes / spec.working_set_bytes)
    return spec.l2_locality * capacity_ratio**0.5


def build_memory_profile(
    spec: KernelSpec, gpu: GPUConfig
) -> MemoryProfile:
    """Compute the memory traffic one block of ``spec`` generates on ``gpu``."""
    threads = spec.threads_per_block
    warp_accesses = (
        threads * (spec.mix.global_loads + spec.mix.global_stores) / gpu.warp_size
    )
    global_sectors = warp_accesses * spec.sectors_per_global_access
    # Local memory is thread-private and interleaved by the compiler, so it
    # coalesces perfectly: one sector per warp-level access.
    local_sectors = threads * spec.mix.local_loads / gpu.warp_size

    sectors = global_sectors + local_sectors
    hit = l2_hit_rate(spec, gpu)
    dram_bytes = sectors * SECTOR_BYTES * (1.0 - hit)
    dram_bytes += threads * spec.mix.global_atomics * _ATOMIC_BYTES / gpu.warp_size

    return MemoryProfile(
        l2_hit_rate=hit,
        l2_sectors_per_block=sectors,
        dram_bytes_per_block=dram_bytes,
    )
