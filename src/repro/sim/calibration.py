"""Calibrating the simulator's modeling error against a target band.

The reproduction injects a deliberate per-kernel bias so the simulator
disagrees with silicon the way Accel-Sim does (~26.7% mean error in the
paper).  This module makes that calibration a first-class, repeatable
operation instead of a hand-tuned constant: given a workload sample and a
target mean error, it searches the log-normal sigma band that realizes
it.

Used once to set :class:`~repro.sim.simulator.ModelErrorConfig`'s
defaults; exposed so users retargeting another simulator's error profile
(e.g. an industrial simulator with 5% error) can derive their own config.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.gpu.architectures import GPUConfig, VOLTA_V100
from repro.sim.silicon import SiliconExecutor
from repro.sim.simulator import ModelErrorConfig, Simulator

# Implemented locally rather than imported from repro.analysis: that
# package sits above repro.sim in the layering and importing it here
# would be circular.


def _abs_pct_error(estimate: float, reference: float) -> float:
    if reference == 0:
        return 0.0 if estimate == 0 else float("inf")
    return abs(estimate - reference) / abs(reference) * 100.0

__all__ = ["CalibrationResult", "measure_mean_error", "calibrate_model_error"]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a model-error calibration search."""

    config: ModelErrorConfig
    achieved_mean_error: float
    target_mean_error: float
    iterations: int

    @property
    def residual(self) -> float:
        return abs(self.achieved_mean_error - self.target_mean_error)


def measure_mean_error(
    workloads: Sequence[tuple[str, list]],
    config: ModelErrorConfig,
    gpu: GPUConfig = VOLTA_V100,
) -> float:
    """Mean full-simulation cycle error over (name, launches) pairs."""
    silicon = SiliconExecutor(gpu)
    simulator = Simulator(gpu, model_error=config)
    errors = []
    for name, launches in workloads:
        truth = silicon.run(name, launches)
        run = simulator.run_full(name, launches)
        errors.append(_abs_pct_error(run.total_cycles, truth.total_cycles))
    return sum(errors) / len(errors) if errors else 0.0


def calibrate_model_error(
    workloads: Sequence[tuple[str, list]],
    *,
    target_mean_error: float,
    gpu: GPUConfig = VOLTA_V100,
    max_iterations: int = 12,
    tolerance: float = 1.0,
) -> CalibrationResult:
    """Find a sigma band whose full-sim mean error hits the target.

    Scales the default [sigma_min, sigma_max] band by a single factor and
    bisects on it — mean error is monotone in the band scale, so the
    search converges in a handful of full-sim sweeps over the sample.

    Parameters
    ----------
    workloads:
        (name, launches) pairs to measure error over; a dozen mid-sized
        workloads suffice.
    target_mean_error:
        Desired mean absolute cycle error, in percent.
    tolerance:
        Acceptable |achieved - target| gap, in percentage points.
    """
    if target_mean_error <= 0:
        raise ValueError("target_mean_error must be positive")
    if not workloads:
        raise ValueError("calibration needs at least one workload")

    base = ModelErrorConfig()

    def config_for(scale: float) -> ModelErrorConfig:
        return ModelErrorConfig(
            sigma_min=base.sigma_min * scale,
            sigma_max=base.sigma_max * scale,
            spec_sigma=base.spec_sigma,
        )

    low, high = 0.0, 1.0
    # Grow the bracket until the high end overshoots the target.
    iterations = 0
    while (
        measure_mean_error(workloads, config_for(high), gpu) < target_mean_error
        and iterations < max_iterations
    ):
        iterations += 1
        low, high = high, high * 2.0

    best_scale = high
    best_error = measure_mean_error(workloads, config_for(high), gpu)
    while iterations < max_iterations:
        iterations += 1
        mid = (low + high) / 2.0
        error = measure_mean_error(workloads, config_for(mid), gpu)
        if abs(error - target_mean_error) < abs(best_error - target_mean_error):
            best_scale, best_error = mid, error
        if abs(error - target_mean_error) <= tolerance:
            break
        if error < target_mean_error:
            low = mid
        else:
            high = mid

    return CalibrationResult(
        config=config_for(best_scale),
        achieved_mean_error=best_error,
        target_mean_error=target_mean_error,
        iterations=iterations,
    )
