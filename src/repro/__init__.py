"""Principal Kernel Analysis — a full reproduction of Baddouh et al.,
"Principal Kernel Analysis: A Tractable Methodology to Simulate Scaled GPU
Workloads" (MICRO 2021), including every substrate the methodology needs:
a GPU performance simulator, a silicon-execution model, Nsight-style
profiler models, a 147-workload synthetic corpus, a numpy-only ML toolkit,
and the paper's baselines.

Quickstart::

    from repro import (
        PrincipalKernelAnalysis, SiliconExecutor, Simulator, VOLTA_V100,
        get_workload,
    )

    spec = get_workload("gramschmidt")
    launches = spec.build()
    silicon = SiliconExecutor(VOLTA_V100)
    pka = PrincipalKernelAnalysis()
    selection = pka.characterize(spec.name, launches, silicon)
    result = pka.simulate(selection, Simulator(VOLTA_V100))
    print(selection.selected_count, "of", len(launches), "kernels simulated")
    print(f"projected cycles: {result.total_cycles:.3g}")
"""

from repro.core import (
    IPCStabilityMonitor,
    KernelSelection,
    PKAConfig,
    PKPConfig,
    PKSConfig,
    PrincipalKernelAnalysis,
    TwoLevelConfig,
    run_pkp,
    run_pks,
    run_two_level,
)
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    FaultInjectedError,
    NotFittedError,
    ProfilingError,
    ReproError,
    RetryExhaustedError,
    SimulationError,
    TaskFailureError,
    TaskTimeoutError,
    WorkerCrashError,
    WorkloadError,
)
from repro.gpu import (
    AMPERE_RTX3070,
    GPUConfig,
    InstructionMix,
    KernelLaunch,
    KernelSpec,
    TURING_RTX2060,
    VOLTA_V100,
    compute_occupancy,
    get_gpu,
    volta_v100_half_sms,
)
from repro.sim import (
    AppRunResult,
    KernelSimResult,
    ModelErrorConfig,
    SiliconExecutor,
    Simulator,
    simulate_kernel,
)
from repro.workloads import get_workload, iter_workloads, suite_names, workload_names

__version__ = "1.1.0"

__all__ = [
    "AMPERE_RTX3070",
    "AppRunResult",
    "ConfigurationError",
    "ConvergenceError",
    "FaultInjectedError",
    "GPUConfig",
    "IPCStabilityMonitor",
    "InstructionMix",
    "KernelLaunch",
    "KernelSelection",
    "KernelSimResult",
    "KernelSpec",
    "ModelErrorConfig",
    "NotFittedError",
    "PKAConfig",
    "PKPConfig",
    "PKSConfig",
    "PrincipalKernelAnalysis",
    "ProfilingError",
    "ReproError",
    "RetryExhaustedError",
    "SiliconExecutor",
    "SimulationError",
    "Simulator",
    "TURING_RTX2060",
    "TaskFailureError",
    "TaskTimeoutError",
    "TwoLevelConfig",
    "VOLTA_V100",
    "WorkerCrashError",
    "WorkloadError",
    "__version__",
    "compute_occupancy",
    "get_gpu",
    "get_workload",
    "iter_workloads",
    "run_pkp",
    "run_pks",
    "run_two_level",
    "simulate_kernel",
    "suite_names",
    "volta_v100_half_sms",
    "workload_names",
]
