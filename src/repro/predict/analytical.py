"""Analytical fast path: price an application without an event loop.

The discrete-event engine's per-kernel makespan is a deterministic
function of (kernel spec, grid): block durations are drawn from a
spec-seeded stream, stretched by phase drift, cold start and the
simulator's modeling bias, then folded over residency slots.  The
closed-form :func:`repro.sim.perfmodel.analytic_kernel_cycles` computes
the *expectation* of that makespan from the same occupancy × latency
arithmetic — so pricing every distinct (spec, grid) group at
``analytic_kernel_cycles × kernel_bias_factor`` and summing with the
per-launch overhead reproduces the DES total up to a per-kernel
**residual**: the gap between the realized stochastic makespan and its
extreme-value approximation.

That residual is what the prediction tiers must bound.  It is
idiosyncratic per kernel signature (re-seeding the duration stream moves
it) but its *scale* is systematic by behaviour: regular many-wave
kernels concentrate tightly around the closed form while small-grid or
straggler-dominated kernels scatter by tens of percent.  The
:class:`ResidualCalibration` here learns that scale online, keyed by the
same behaviour-bucket hash the simulator draws its modeling bias from —
kernels that share simulator code paths share residual dispersion.

Nothing in this module runs the event loop; pricing an MLPerf-scale app
costs one occupancy analysis per distinct kernel group.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpu.architectures import GPUConfig
from repro.gpu.kernels import KernelLaunch
from repro.profiling.detailed import collect_counters
from repro.sim.perfmodel import (
    KERNEL_LAUNCH_OVERHEAD,
    analyze_kernel,
    analytic_kernel_cycles,
)
from repro.sim.simulator import (
    ModelErrorConfig,
    _behavior_bucket_hash,
    kernel_bias_factor,
)

__all__ = [
    "AppEstimate",
    "GroupEstimate",
    "ResidualCalibration",
    "group_stream",
    "price_app",
]

#: Dispersion inflation applied when a bucket has no samples and the
#: global maximum stands in.  An unseen behaviour bucket can scatter
#: wider than anything observed so far — the max of a few samples from
#: *other* buckets underestimates it, so the fallback pays a premium
#: until the bucket is observed directly.
_FALLBACK_INFLATION = 1.5


@dataclass(frozen=True)
class GroupEstimate:
    """One distinct (spec, grid) kernel group of an app, priced analytically.

    ``cycles`` / ``warp_instructions`` / ``dram_bytes`` are per launch;
    ``count`` repeats them over the stream.  ``counters`` is the group's
    Table-2 vector (the surrogate's feature input) and ``bucket`` the
    simulator behaviour-bucket hash (the calibration key).
    """

    signature: int
    grid_blocks: int
    bucket: int
    count: int
    cycles: float
    warp_instructions: float
    dram_bytes: float
    counters: tuple[float, ...]

    @property
    def cycle_mass(self) -> float:
        return self.count * self.cycles


@dataclass(frozen=True)
class AppEstimate:
    """Closed-form totals for one application on one GPU."""

    total_cycles: float
    total_instructions: float
    total_dram_bytes: float
    groups: tuple[GroupEstimate, ...]

    def shares(self) -> tuple[float, ...]:
        """Each group's fraction of the predicted kernel-cycle mass."""
        mass = sum(group.cycle_mass for group in self.groups)
        if mass <= 0:
            return tuple(0.0 for _ in self.groups)
        return tuple(group.cycle_mass / mass for group in self.groups)


def group_stream(
    launches: list[KernelLaunch],
) -> list[tuple[KernelLaunch, int]]:
    """Collapse a launch stream into (representative, count) groups.

    Grouping is by (spec signature, grid blocks) in first-occurrence
    order — exactly the memoization key of the simulator's full-run
    cache, so analytical groups and DES ground-truth entries align
    one-to-one.
    """
    order: list[tuple[int, int]] = []
    reps: dict[tuple[int, int], KernelLaunch] = {}
    counts: dict[tuple[int, int], int] = {}
    for launch in launches:
        key = (launch.spec.signature(), launch.grid_blocks)
        if key in counts:
            counts[key] += 1
        else:
            order.append(key)
            reps[key] = launch
            counts[key] = 1
    return [(reps[key], counts[key]) for key in order]


def price_app(
    launches: list[KernelLaunch],
    gpu: GPUConfig,
    model_error: ModelErrorConfig,
) -> AppEstimate:
    """Price one application's launch stream analytically on ``gpu``.

    Per group: closed-form kernel cycles times the simulator's
    deterministic modeling bias (so the estimate targets what the DES
    would report, not silicon); instructions and DRAM bytes from the
    same shared perf model the engine integrates over — those two are
    exact, only cycles carry the stochastic-makespan residual.
    """
    groups: list[GroupEstimate] = []
    total_cycles = 0.0
    total_insts = 0.0
    total_bytes = 0.0
    for rep, count in group_stream(launches):
        perf = analyze_kernel(rep, gpu)
        bias = kernel_bias_factor(rep.spec, model_error)
        cycles = analytic_kernel_cycles(rep, gpu) * bias
        insts = perf.warp_insts_per_block * rep.grid_blocks
        dram = perf.memory.dram_bytes_per_block * rep.grid_blocks
        groups.append(
            GroupEstimate(
                signature=rep.spec.signature(),
                grid_blocks=rep.grid_blocks,
                bucket=_behavior_bucket_hash(rep.spec),
                count=count,
                cycles=cycles,
                warp_instructions=insts,
                dram_bytes=dram,
                counters=collect_counters(rep, gpu.generation),
            )
        )
        total_cycles += count * (cycles + KERNEL_LAUNCH_OVERHEAD)
        total_insts += count * insts
        total_bytes += count * dram
    return AppEstimate(
        total_cycles=total_cycles,
        total_instructions=total_insts,
        total_dram_bytes=total_bytes,
        groups=tuple(groups),
    )


class ResidualCalibration:
    """Online per-bucket dispersion of the closed-form-vs-DES residual.

    Every observed computed run contributes, per kernel group, the
    absolute log residual ``|log(DES cycles / analytic cycles)|``; the
    dispersion served back for a bucket is the *maximum* sample seen in
    that bucket (conservative by design — the bound contract admits no
    optimism), never below ``min_dispersion`` because a freshly
    re-seeded near-duplicate redraws its idiosyncratic part.  Buckets
    with no samples fall back to the *inflated* global maximum, and a
    completely cold calibration falls back to the caller's prior.
    """

    def __init__(self, max_samples: int = 256) -> None:
        self.max_samples = max_samples
        self._buckets: dict[int, list[float]] = {}
        self._all: list[float] = []
        self.apps_observed = 0

    def observe(self, bucket: int, log_residual: float) -> None:
        if not math.isfinite(log_residual):
            return
        sample = abs(log_residual)
        rows = self._buckets.setdefault(bucket, [])
        rows.append(sample)
        del rows[: max(0, len(rows) - self.max_samples)]
        self._all.append(sample)
        del self._all[: max(0, len(self._all) - self.max_samples)]

    def dispersion(
        self, bucket: int, prior: float, min_dispersion: float
    ) -> float:
        rows = self._buckets.get(bucket)
        if rows:
            return max(max(rows), min_dispersion)
        if self._all:
            return max(_FALLBACK_INFLATION * max(self._all), min_dispersion)
        return max(prior, min_dispersion)

    @property
    def samples(self) -> int:
        return len(self._all)

    # -- persistence ------------------------------------------------------

    def to_state(self) -> dict:
        return {
            "apps_observed": self.apps_observed,
            "buckets": {
                str(bucket): list(rows)
                for bucket, rows in self._buckets.items()
            },
            "all": list(self._all),
        }

    @classmethod
    def from_state(cls, state: dict, max_samples: int = 256) -> "ResidualCalibration":
        calibration = cls(max_samples=max_samples)
        try:
            calibration.apps_observed = int(state.get("apps_observed", 0))
            for bucket, rows in state.get("buckets", {}).items():
                calibration._buckets[int(bucket)] = [
                    float(v) for v in rows
                ][-max_samples:]
            calibration._all = [float(v) for v in state.get("all", [])][
                -max_samples:
            ]
        except (TypeError, ValueError):
            return cls(max_samples=max_samples)
        return calibration

    def merge(self, other: "ResidualCalibration") -> None:
        """Fold another process's samples in (used by stale-state reload)."""
        self.apps_observed = max(self.apps_observed, other.apps_observed)
        for bucket, rows in other._buckets.items():
            mine = self._buckets.setdefault(bucket, [])
            for sample in rows:
                if sample not in mine:
                    mine.append(sample)
            del mine[: max(0, len(mine) - self.max_samples)]
        for sample in other._all:
            if sample not in self._all:
                self._all.append(sample)
        del self._all[: max(0, len(self._all) - self.max_samples)]
