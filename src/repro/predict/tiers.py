"""Confidence/escalation layer over the two prediction tiers.

One :class:`PredictTiers` instance serves one harness context, exactly
like the semantic cache it sits beside in the consult order (digest
cache -> semcache -> predict -> DES).  A consult prices the query's
kernel groups analytically, asks both tiers for an app-level estimate
with a modeled relative error bound, and serves the **tightest** bound
that clears ``max_error_bound`` as a frozen
:class:`PredictedResult` carrying ``prediction_error_bound`` and
``predicted_by``; anything else escalates to the DES with a typed
reason (cold / coverage / bound).  The ledger reconciles by
construction: every lookup is exactly one prediction or one escalation.

Bound model (shared shape across tiers): the app-level residual is the
cycle-share-weighted combination of per-group residual terms, combined
in quadrature — per-kernel residuals are idiosyncratic by signature, so
independent errors average out across diverse groups while a
single-kernel app keeps its full per-kernel dispersion:

* analytical: ``s_g`` = calibrated per-behaviour-bucket dispersion;
* surrogate:  ``s_g`` = out-of-fold error + lipschitz * nearest-row
  distance (extrapolation widens the bound).

``bound = error_floor + safety_factor * sqrt(sum share_g^2 s_g^2)``.

Every served estimate is remembered against its cell digest; when a
computed ground truth later arrives for that digest (predict disabled,
another process escalated), the realized error is recorded against the
advertised bound — the same observed-error feedback loop the semantic
cache keeps.  Predictions are memoized in memory only and never written
to the digest cache, and prediction answers are never ingested as
training data: the exact cache stays exact and the model never trains
on its own output.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ReproError
from repro.gpu.architectures import GPUConfig
from repro.gpu.kernels import KernelLaunch
from repro.obs import obs_count
from repro.predict.analytical import (
    AppEstimate,
    ResidualCalibration,
    price_app,
)
from repro.predict.surrogate import CycleSurrogate
from repro.sim.simulator import ModelErrorConfig
from repro.sim.stats import AppRunResult

__all__ = [
    "PREDICT_STATE_VERSION",
    "PREDICTABLE_METHODS",
    "PredictConfig",
    "PredictTiers",
    "PredictedResult",
    "resolve_predict_config",
]

#: Bump when the state document layout changes; mismatched states are
#: discarded (calibration is derived data — rebuilding costs warm-up).
PREDICT_STATE_VERSION = 1

#: Methods the tiers may answer.  Full simulation is the one method
#: whose result is a pure function of the launch stream on one GPU —
#: the closed form prices it directly and its per-kernel ground truth
#: is harvestable from the simulator's memo cache.  Sampled methods
#: (pks/pka/tbpoint) fold a Volta-side selection into the answer and
#: silicon is already closed-form; both escalate.
PREDICTABLE_METHODS = ("full_sim",)


@dataclass(frozen=True)
class PredictedResult(AppRunResult):
    """An :class:`AppRunResult` served by a prediction tier.

    ``simulated_cycles`` is zero — no event loop ran.
    ``prediction_error_bound`` is the modeled *relative* error bound on
    ``total_cycles`` versus the DES ground truth; ``predicted_by`` names
    the tier ("analytical" or "surrogate").
    """

    prediction_error_bound: float = 0.0
    predicted_by: str = ""


@dataclass(frozen=True)
class PredictConfig:
    """Tuning knobs of the prediction tiers.

    ``max_error_bound`` escalates estimates whose modeled bound is too
    loose to serve.  ``error_floor``/``safety_factor`` shape every
    advertised bound over the modeled residual.  ``min_calibration``
    (observed apps) gates the analytical tier; ``min_training_rows``
    gates the surrogate; ``coverage_radius`` is the surrogate's maximum
    nearest-training-row distance; ``lipschitz`` converts that distance
    into bound width.  ``dispersion_prior`` prices unseen behaviour
    buckets; ``min_dispersion`` keeps calibrated buckets honest about
    re-seeded idiosyncrasy.  ``max_samples`` caps the stores FIFO-style.
    """

    max_error_bound: float = 0.35
    error_floor: float = 0.05
    safety_factor: float = 2.0
    min_calibration: int = 3
    min_training_rows: int = 8
    coverage_radius: float = 0.25
    lipschitz: float = 1.0
    dispersion_prior: float = 0.35
    min_dispersion: float = 0.05
    max_samples: int = 256
    methods: tuple[str, ...] = PREDICTABLE_METHODS

    def __post_init__(self) -> None:
        if self.max_error_bound <= 0:
            raise ReproError("max_error_bound must be > 0")
        if self.error_floor < 0:
            raise ReproError("error_floor must be >= 0")
        if self.safety_factor < 1.0:
            raise ReproError("safety_factor must be >= 1")
        if self.min_calibration < 1 or self.min_training_rows < 1:
            raise ReproError(
                "min_calibration and min_training_rows must be >= 1"
            )
        if self.coverage_radius <= 0:
            raise ReproError("coverage_radius must be > 0")
        if self.lipschitz < 0:
            raise ReproError("lipschitz must be >= 0")
        if self.dispersion_prior < 0 or self.min_dispersion < 0:
            raise ReproError(
                "dispersion_prior and min_dispersion must be >= 0"
            )
        if self.max_samples < 1:
            raise ReproError("max_samples must be >= 1")


class _Partition:
    """Per method@gpu calibration + surrogate state."""

    def __init__(self, config: PredictConfig) -> None:
        self.calibration = ResidualCalibration(max_samples=config.max_samples)
        self.surrogate = CycleSurrogate(
            max_rows=config.max_samples, min_rows=config.min_training_rows
        )


class PredictTiers:
    """The two estimator tiers plus their escalation bookkeeping.

    One instance serves one harness (one context fingerprint).  State
    persists through the harness's run cache under
    ``<cache>/predict/<context>.json`` — LRU-exempt like manifests —
    and is merged back on load, so worker processes sharing a cache
    directory pool their calibration.  All public methods are
    thread-safe (the serving scheduler consults from request threads).
    """

    def __init__(self, config: PredictConfig, run_cache, context: str) -> None:
        self.config = config
        self.run_cache = run_cache
        self.context = context
        self._partitions: dict[str, _Partition] = {}
        self._predictions: dict[str, tuple[float, float]] = {}
        self._lock = threading.RLock()
        self._loaded = False
        self._state_mtime: float | None = None
        # Tallies (also mirrored into obs counters under "predict.").
        self.lookups = 0
        self.predictions = 0
        self.predictions_analytical = 0
        self.predictions_surrogate = 0
        self.escalations_cold = 0
        self.escalations_coverage = 0
        self.escalations_bound = 0
        self.observations = 0
        self.observed_errors: list[float] = []
        self.observed_violations = 0

    # -- tallies ---------------------------------------------------------

    @property
    def escalations(self) -> int:
        return (
            self.escalations_cold
            + self.escalations_coverage
            + self.escalations_bound
        )

    def snapshot(self) -> dict:
        """JSON-ready metrics section (the ``/metricsz`` ``predict`` block).

        ``reconciles`` asserts the lookup ledger: every consult either
        predicted or escalated — ``predictions + escalations ==
        lookups`` exactly.
        """
        with self._lock:
            errors = list(self.observed_errors)
            rows = sum(
                len(partition.surrogate.rows)
                for partition in self._partitions.values()
            )
            samples = sum(
                partition.calibration.samples
                for partition in self._partitions.values()
            )
            return {
                "enabled": True,
                "max_error_bound": self.config.max_error_bound,
                "partitions": len(self._partitions),
                "calibration_samples": samples,
                "training_rows": rows,
                "lookups": self.lookups,
                "predictions": self.predictions,
                "predictions_analytical": self.predictions_analytical,
                "predictions_surrogate": self.predictions_surrogate,
                "escalations": self.escalations,
                "escalations_cold": self.escalations_cold,
                "escalations_coverage": self.escalations_coverage,
                "escalations_bound": self.escalations_bound,
                "observations": self.observations,
                "reconciles": self.predictions + self.escalations
                == self.lookups,
                "prediction_error": {
                    "samples": len(errors),
                    "observed_mean": (
                        float(np.mean(errors)) if errors else None
                    ),
                    "observed_max": float(max(errors)) if errors else None,
                    "violations": self.observed_violations,
                },
            }

    # -- the prediction decision ------------------------------------------

    def consult(
        self,
        *,
        workload: str,
        method: str,
        gpu: GPUConfig,
        launches: list[KernelLaunch],
        model_error: ModelErrorConfig,
        digest: str,
    ) -> PredictedResult | None:
        """Try to answer a cold cell by prediction; None escalates.

        Counts exactly one lookup, and exactly one of prediction /
        escalation — the ledger ``snapshot()`` reconciles.
        """
        if method not in self.config.methods:
            return None
        with self._lock:
            self._load_if_stale()
            self.lookups += 1
            obs_count("predict.lookups")
            estimate = price_app(launches, gpu, model_error)
            if not estimate.groups or estimate.total_cycles <= 0:
                return self._escalate("coverage")
            partition = self._partitions.get(
                self._partition_key(method, gpu)
            )
            if partition is None:
                return self._escalate("cold")
            candidates: list[tuple[float, float, str]] = []
            analytical = self._analytical_bound(partition, estimate)
            if analytical is not None:
                candidates.append(
                    (analytical, estimate.total_cycles, "analytical")
                )
            surrogate = self._surrogate_estimate(partition, estimate)
            if surrogate is not None:
                bound, cycles = surrogate
                candidates.append((bound, cycles, "surrogate"))
            if not candidates:
                return self._escalate("cold")
            bound, cycles, tier = min(candidates, key=lambda c: c[0])
            if bound > self.config.max_error_bound:
                return self._escalate("bound")
            result = PredictedResult(
                workload=workload,
                gpu=gpu,
                method=method,
                total_cycles=float(cycles),
                total_instructions=float(estimate.total_instructions),
                total_dram_bytes=float(estimate.total_dram_bytes),
                simulated_cycles=0.0,
                prediction_error_bound=float(bound),
                predicted_by=tier,
            )
            self._predictions[digest] = (float(cycles), float(bound))
            self.predictions += 1
            obs_count("predict.predictions")
            if tier == "analytical":
                self.predictions_analytical += 1
                obs_count("predict.predictions_analytical")
            else:
                self.predictions_surrogate += 1
                obs_count("predict.predictions_surrogate")
            return result

    def tier_estimates(
        self,
        *,
        method: str,
        gpu: GPUConfig,
        launches: list[KernelLaunch],
        model_error: ModelErrorConfig,
    ) -> dict[str, tuple[float, float | None]]:
        """Both tiers' (cycles, bound) for a query — no ledger mutation.

        The report/figures layer uses this to chart each tier's accuracy
        side by side with the DES methods.  The analytical entry is
        always present (bound None until calibrated); the surrogate
        entry appears only when trained and covered.
        """
        with self._lock:
            self._load_if_stale()
            estimate = price_app(launches, gpu, model_error)
            out: dict[str, tuple[float, float | None]] = {}
            if not estimate.groups or estimate.total_cycles <= 0:
                return out
            partition = self._partitions.get(self._partition_key(method, gpu))
            bound = (
                self._analytical_bound(partition, estimate)
                if partition is not None
                else None
            )
            out["analytical"] = (estimate.total_cycles, bound)
            if partition is not None:
                surrogate = self._surrogate_estimate(partition, estimate)
                if surrogate is not None:
                    s_bound, s_cycles = surrogate
                    out["surrogate"] = (s_cycles, s_bound)
            return out

    def _analytical_bound(
        self, partition: _Partition, estimate: AppEstimate
    ) -> float | None:
        """Calibrated bound for serving the raw analytical estimate."""
        calibration = partition.calibration
        if calibration.apps_observed < self.config.min_calibration:
            return None
        quad = 0.0
        for group, share in zip(
            estimate.groups, estimate.shares(), strict=True
        ):
            dispersion = calibration.dispersion(
                group.bucket,
                prior=self.config.dispersion_prior,
                min_dispersion=self.config.min_dispersion,
            )
            quad += (share * dispersion) ** 2
        return self.config.error_floor + self.config.safety_factor * math.sqrt(
            quad
        )

    def _surrogate_estimate(
        self, partition: _Partition, estimate: AppEstimate
    ) -> tuple[float, float] | None:
        """(bound, corrected cycles) from the learned tier, or None.

        Coverage gate: every query group must lie within
        ``coverage_radius`` of a training row; an uncovered group makes
        the whole tier ineligible (the analytical tier may still serve).
        """
        from repro.sim.perfmodel import KERNEL_LAUNCH_OVERHEAD

        surrogate = partition.surrogate
        if not surrogate.trained:
            return None
        oof = surrogate.oof_error
        if oof is None:
            return None
        total = 0.0
        quad = 0.0
        for group, share in zip(
            estimate.groups, estimate.shares(), strict=True
        ):
            predicted = surrogate.predict(group.counters)
            if predicted is None:
                return None
            ratio, distance = predicted
            if distance > self.config.coverage_radius:
                return None
            corrected = group.cycles * ratio
            total += group.count * (corrected + KERNEL_LAUNCH_OVERHEAD)
            term = oof + self.config.lipschitz * distance
            quad += (share * term) ** 2
        bound = self.config.error_floor + self.config.safety_factor * math.sqrt(
            quad
        )
        return bound, total

    def _escalate(self, kind: str) -> None:
        if kind == "cold":
            self.escalations_cold += 1
        elif kind == "coverage":
            self.escalations_coverage += 1
        else:
            self.escalations_bound += 1
        obs_count("predict.escalations")
        obs_count(f"predict.escalations_{kind}")
        return None

    # -- calibration growth -----------------------------------------------

    def observe(
        self,
        *,
        workload: str,
        method: str,
        gpu: GPUConfig,
        launches: list[KernelLaunch],
        model_error: ModelErrorConfig,
        digest: str,
        result: AppRunResult,
        kernel_cycles: dict[tuple[int, int], float] | None = None,
    ) -> None:
        """Ingest one *computed* run's ground truth and persist state.

        ``kernel_cycles`` maps (spec signature, grid blocks) to the
        DES's memoized per-kernel cycles — per-group residuals feed the
        calibration and the surrogate's training rows.  Without it only
        the observed-error feedback (realized vs advertised bound) is
        recorded.  Prediction answers are never ingested.
        """
        if method not in self.config.methods:
            return
        if isinstance(result, PredictedResult):
            return
        if result.total_cycles <= 0:
            return
        with self._lock:
            self._load_if_stale()
            self._track_observed_error(digest, result)
            if kernel_cycles:
                key = self._partition_key(method, gpu)
                partition = self._partitions.setdefault(
                    key, _Partition(self.config)
                )
                estimate = price_app(launches, gpu, model_error)
                ingested = False
                for group in estimate.groups:
                    truth = kernel_cycles.get(
                        (group.signature, group.grid_blocks)
                    )
                    if truth is None or truth <= 0 or group.cycles <= 0:
                        continue
                    log_residual = math.log(truth / group.cycles)
                    partition.calibration.observe(group.bucket, log_residual)
                    partition.surrogate.add_row(group.counters, log_residual)
                    ingested = True
                if ingested:
                    partition.calibration.apps_observed += 1
            self.observations += 1
            obs_count("predict.observations")
            self._persist()

    def _track_observed_error(self, digest: str, result: AppRunResult) -> None:
        """A computed ground truth arrived for a digest we once answered
        by prediction (an operator disabled predict, or another process
        escalated): record the realized error against the advertised
        bound."""
        prediction = self._predictions.pop(digest, None)
        if prediction is None or result.total_cycles <= 0:
            return
        predicted, bound = prediction
        error = abs(predicted - result.total_cycles) / result.total_cycles
        self.observed_errors.append(error)
        obs_count("predict.observed_samples")
        if error > bound:
            self.observed_violations += 1
            obs_count("predict.observed_violations")

    # -- persistence -------------------------------------------------------

    @staticmethod
    def _partition_key(method: str, gpu: GPUConfig) -> str:
        return f"{method}@{gpu.name}"

    def _load_if_stale(self) -> None:
        """Merge on-disk state written by other processes (mtime-gated)."""
        getter = getattr(self.run_cache, "get_predict_state", None)
        if getter is None:
            self._loaded = True
            return
        mtime = getattr(self.run_cache, "predict_state_mtime", None)
        current = mtime(self.context) if mtime is not None else None
        if self._loaded and current == self._state_mtime:
            return
        document = getter(self.context)
        self._loaded = True
        self._state_mtime = current
        if not document or document.get("version") != PREDICT_STATE_VERSION:
            return
        for key, state in document.get("partitions", {}).items():
            try:
                calibration = ResidualCalibration.from_state(
                    state.get("calibration", {}),
                    max_samples=self.config.max_samples,
                )
                surrogate = CycleSurrogate.from_state(
                    state.get("surrogate", {}),
                    max_rows=self.config.max_samples,
                    min_rows=self.config.min_training_rows,
                )
            except (KeyError, TypeError, ValueError):
                continue  # one malformed partition must not poison the rest
            partition = self._partitions.get(key)
            if partition is None:
                partition = _Partition(self.config)
                partition.calibration = calibration
                partition.surrogate = surrogate
                self._partitions[key] = partition
            else:
                partition.calibration.merge(calibration)
                partition.surrogate.merge(surrogate)

    def _persist(self) -> None:
        putter = getattr(self.run_cache, "put_predict_state", None)
        if putter is None:
            return
        document = {
            "version": PREDICT_STATE_VERSION,
            "context": self.context,
            "partitions": {
                key: {
                    "calibration": partition.calibration.to_state(),
                    "surrogate": partition.surrogate.to_state(),
                }
                for key, partition in self._partitions.items()
            },
        }
        putter(self.context, document)
        mtime = getattr(self.run_cache, "predict_state_mtime", None)
        if mtime is not None:
            self._state_mtime = mtime(self.context)


def resolve_predict_config(
    predict: PredictConfig | bool | None,
    max_error_bound: float | None = None,
) -> PredictConfig | None:
    """Normalize the harness/CLI-facing spec into a config (or None=off)."""
    if isinstance(predict, PredictConfig):
        config = predict
    elif predict:
        config = PredictConfig()
    else:
        return None
    if max_error_bound is not None:
        config = replace(config, max_error_bound=max_error_bound)
    return config
