"""Learned cycle surrogate: Table-2 counters -> per-kernel DES residual.

NeuroScalar-style fast proxy, scoped to what is actually learnable here:
the analytical tier already reproduces the DES up to a per-kernel
residual ratio, so the surrogate regresses ``log(DES / analytic)`` on
the log-compressed Table-2 counters with the mlkit SGD regressor,
trained online from every computed full run.  Predicting the residual
(instead of raw cycles) means the model starts from a strong physical
prior and only has to learn the systematic, behaviour-correlated part of
the gap.

Honesty over optimism: the advertised accuracy comes from deterministic
k-fold **out-of-fold** evaluation on the training rows — each fold is
predicted by a model that never saw it — and a query kernel is only
covered at all when it lies within ``coverage_radius`` of some training
row in mean-absolute log-counter distance (the same interpretable metric
the semantic cache uses).  Distance to the nearest row additionally
widens the per-kernel error term, so extrapolation pays for itself in
bound width rather than in silent violations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mlkit import SGDRegressor

__all__ = ["CycleSurrogate", "TrainingRow"]

#: Deterministic out-of-fold split count (row index modulo K).
_OOF_FOLDS = 4


class TrainingRow:
    """One observed kernel group: counters plus realized log residual."""

    __slots__ = ("counters", "log_residual")

    def __init__(self, counters: tuple[float, ...], log_residual: float) -> None:
        self.counters = tuple(float(v) for v in counters)
        self.log_residual = float(log_residual)

    def to_state(self) -> dict:
        return {
            "counters": list(self.counters),
            "log_residual": self.log_residual,
        }

    @classmethod
    def from_state(cls, state: dict) -> "TrainingRow":
        return cls(
            counters=tuple(float(v) for v in state["counters"]),
            log_residual=float(state["log_residual"]),
        )


class CycleSurrogate:
    """Online-fit residual regressor with out-of-fold error tracking.

    ``add_row`` appends observations and marks the model dirty; fitting
    is lazy (first prediction after new data) and deterministic — the
    regressor's seed is fixed and rows are kept in arrival order, so
    every process that loads the same persisted rows refits the same
    model.  ``oof_error`` is the maximum out-of-fold relative cycle
    error over the training set, the surrogate's honest accuracy claim
    on kernels it has *not* memorized.
    """

    def __init__(self, max_rows: int = 256, min_rows: int = 8) -> None:
        self.max_rows = max_rows
        self.min_rows = min_rows
        self.rows: list[TrainingRow] = []
        self._dirty = True
        self._model: SGDRegressor | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self._oof_error: float | None = None
        self._log_matrix: np.ndarray | None = None

    # -- training ---------------------------------------------------------

    def add_row(self, counters: tuple[float, ...], log_residual: float) -> None:
        if not math.isfinite(log_residual):
            return
        self.rows.append(TrainingRow(counters, log_residual))
        del self.rows[: max(0, len(self.rows) - self.max_rows)]
        self._dirty = True

    @property
    def trained(self) -> bool:
        return len(self.rows) >= self.min_rows

    def _features(self, matrix: np.ndarray) -> np.ndarray:
        assert self._mean is not None and self._std is not None
        return (np.log1p(matrix) - self._mean) / self._std

    def _fit_if_dirty(self) -> None:
        if not self._dirty or not self.trained:
            return
        matrix = np.asarray(
            [row.counters for row in self.rows], dtype=np.float64
        )
        targets = np.asarray(
            [row.log_residual for row in self.rows], dtype=np.float64
        )
        logs = np.log1p(matrix)
        self._log_matrix = logs
        self._mean = logs.mean(axis=0)
        std = logs.std(axis=0)
        self._std = np.where(std > 0, std, 1.0)
        features = self._features(matrix)

        # Out-of-fold: fold k is predicted by a model fit on the other
        # folds.  Deterministic (index % K), so refits reproduce.
        folds = np.arange(len(self.rows)) % _OOF_FOLDS
        oof = 0.0
        for fold in range(_OOF_FOLDS):
            train = folds != fold
            test = ~train
            if not test.any() or train.sum() < 2:
                continue
            model = SGDRegressor().fit(features[train], targets[train])
            predicted = model.predict(features[test])
            # Relative cycle error implied by the log-residual miss.
            errors = np.abs(np.expm1(predicted - targets[test]))
            oof = max(oof, float(errors.max()))
        self._oof_error = oof
        self._model = SGDRegressor().fit(features, targets)
        self._dirty = False

    # -- prediction -------------------------------------------------------

    @property
    def oof_error(self) -> float | None:
        """Max out-of-fold relative cycle error (None until trained)."""
        self._fit_if_dirty()
        return self._oof_error

    def predict(
        self, counters: tuple[float, ...]
    ) -> tuple[float, float] | None:
        """(residual ratio, nearest-row distance) for one kernel group.

        The ratio multiplies the analytical cycle estimate; the distance
        is mean-absolute log-counter distance to the nearest training
        row — the caller's coverage gate and bound-widening term.
        Returns None until enough rows have been observed.
        """
        if not self.trained:
            return None
        self._fit_if_dirty()
        assert self._model is not None and self._log_matrix is not None
        query = np.log1p(np.asarray(counters, dtype=np.float64))
        distance = float(
            np.abs(self._log_matrix - query).mean(axis=1).min()
        )
        features = self._features(
            np.asarray([counters], dtype=np.float64)
        )
        log_residual = float(self._model.predict(features)[0])
        # A runaway extrapolation must not produce absurd cycle totals;
        # the residuals this model sees are fractions of a log unit.
        log_residual = float(np.clip(log_residual, -2.0, 2.0))
        return math.exp(log_residual), distance

    # -- persistence ------------------------------------------------------

    def to_state(self) -> dict:
        return {"rows": [row.to_state() for row in self.rows]}

    @classmethod
    def from_state(
        cls, state: dict, max_rows: int = 256, min_rows: int = 8
    ) -> "CycleSurrogate":
        surrogate = cls(max_rows=max_rows, min_rows=min_rows)
        try:
            for row in state.get("rows", []):
                surrogate.rows.append(TrainingRow.from_state(row))
        except (KeyError, TypeError, ValueError):
            return cls(max_rows=max_rows, min_rows=min_rows)
        del surrogate.rows[: max(0, len(surrogate.rows) - max_rows)]
        return surrogate

    def merge(self, other: "CycleSurrogate") -> None:
        """Fold another process's rows in (stale-state reload)."""
        seen = {
            (row.counters, row.log_residual) for row in self.rows
        }
        for row in other.rows:
            if (row.counters, row.log_residual) not in seen:
                self.rows.append(row)
                self._dirty = True
        del self.rows[: max(0, len(self.rows) - self.max_rows)]
