"""Two-tier prediction subsystem: answer cold cells without the DES.

Consult order inside the evaluation harness is digest cache ->
semantic cache -> **predict tiers** -> discrete-event simulation.  The
analytical tier prices kernel groups from the shared occupancy × latency
closed form; the surrogate tier corrects it with a learned residual
model trained online from computed DES results.  Either serves only
when its modeled relative error bound clears the configured threshold;
everything else escalates to the DES with a typed reason, and the
ledger ``predictions + escalations == lookups`` always reconciles.
"""

from repro.predict.analytical import (
    AppEstimate,
    GroupEstimate,
    ResidualCalibration,
    group_stream,
    price_app,
)
from repro.predict.surrogate import CycleSurrogate, TrainingRow
from repro.predict.tiers import (
    PREDICT_STATE_VERSION,
    PREDICTABLE_METHODS,
    PredictConfig,
    PredictTiers,
    PredictedResult,
    resolve_predict_config,
)

__all__ = [
    "AppEstimate",
    "CycleSurrogate",
    "GroupEstimate",
    "PREDICTABLE_METHODS",
    "PREDICT_STATE_VERSION",
    "PredictConfig",
    "PredictTiers",
    "PredictedResult",
    "ResidualCalibration",
    "TrainingRow",
    "group_stream",
    "price_app",
]
