"""Keep the module-level tracer singleton isolated between obs tests."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _fresh_tracer():
    obs.reset()
    yield
    obs.reset()
