"""Integration tests: the tracer wired through sim, harness, pool and cache."""

from __future__ import annotations

from repro import obs
from repro.analysis import EvaluationHarness
from repro.analysis.persistence import RunCache
from repro.obs import get_tracer
from repro.sim.parallel import ProcessPoolBackend, SerialBackend


def _double(item: int) -> int:
    return item * 2


class TestHarnessSweep:
    def test_sweep_counters_and_spans(self):
        obs.enable()
        harness = EvaluationHarness()
        cells = [("fdtd2d", "silicon", None), ("fdtd2d", "selection", None)]
        results = harness.evaluate_cells(cells)
        assert all(result is not None for result in results)

        tracer = get_tracer()
        counters = tracer.counters
        assert counters["harness.cells"] == 2.0
        assert counters["harness.cells_completed"] == 2.0
        assert counters.get("harness.cell_failures", 0.0) == 0.0
        # The PKS stage behind "selection" must have reported in.
        assert counters["pks.runs"] >= 1.0

        stats = tracer.span_stats()
        assert stats["harness.evaluate_cells"]["count"] == 1
        assert stats["harness.cell"]["count"] >= 2

    def test_cell_spans_carry_source_attribution(self):
        obs.enable()
        harness = EvaluationHarness()
        harness.evaluate_cells([("fdtd2d", "silicon", None)])
        harness.evaluate_cells([("fdtd2d", "silicon", None)])  # memoized
        cell_events = [
            event for event in get_tracer().events if event.name == "harness.cell"
        ]
        assert {event.args.get("source") for event in cell_events} == {"computed"}
        # The second sweep hit the in-memory memo, recorded as a counter.
        assert get_tracer().counters["harness.memo_hits"] >= 1.0

    def test_manifest_embeds_counter_snapshot(self):
        obs.enable()
        harness = EvaluationHarness()
        harness.evaluate_cells([("fdtd2d", "silicon", None)])
        manifest = harness.last_manifest
        assert manifest is not None
        embedded = manifest["observability"]["counters"]
        assert embedded["harness.cells"] == 1.0
        # The embedded snapshot and the live tracer agree on shared keys.
        for name, value in embedded.items():
            assert get_tracer().counters[name] == value

    def test_disabled_tracer_leaves_manifest_alone(self):
        harness = EvaluationHarness()
        harness.evaluate_cells([("fdtd2d", "silicon", None)])
        assert "observability" not in harness.last_manifest


class TestSimulatorCounters:
    def test_pka_simulated_vs_projected_cycles(self):
        obs.enable()
        harness = EvaluationHarness()
        harness.evaluate_cells([("fdtd2d", "pka_sim", None)])
        counters = get_tracer().counters
        assert counters["pka.simulated_cycles"] > 0.0
        # The whole point of PKA: projected cycles dwarf simulated ones.
        assert counters["pka.projected_cycles"] >= counters["pka.simulated_cycles"]
        assert counters["pkp.kernels"] >= 1.0
        assert counters["pkp.windows_observed"] >= 1.0


class TestBackends:
    def test_serial_backend_task_spans(self):
        obs.enable()
        outcomes = SerialBackend().run_tasks(_double, [1, 2, 3])
        assert [outcome.value for outcome in outcomes] == [2, 4, 6]
        task_events = [e for e in get_tracer().events if e.name == "task"]
        assert len(task_events) == 3

    def test_pool_backend_ships_worker_spans(self):
        obs.enable()
        parent_pid = __import__("os").getpid()
        outcomes = ProcessPoolBackend(2).run_tasks(_double, [1, 2, 3, 4])
        assert [outcome.value for outcome in outcomes] == [2, 4, 6, 8]
        # Each outcome carries its worker's snapshot...
        for outcome in outcomes:
            assert outcome.obs is not None
            (event,) = [e for e in outcome.obs.events if e.name == "task"]
            assert event.pid != parent_pid
            assert event.args["worker"] == event.pid
        # ...and the parent merged all of them into its own timeline.
        merged = [e for e in get_tracer().events if e.name == "task"]
        assert len(merged) == 4

    def test_pool_backend_ships_nothing_when_disabled(self):
        outcomes = ProcessPoolBackend(2).run_tasks(_double, [1, 2, 3, 4])
        assert [outcome.value for outcome in outcomes] == [2, 4, 6, 8]
        assert all(outcome.obs is None for outcome in outcomes)

    def test_serial_equals_pool_despite_telemetry(self):
        """TaskOutcome equality must ignore the shipped snapshots."""
        obs.enable()
        serial = SerialBackend().run_tasks(_double, [5, 6])
        pooled = ProcessPoolBackend(2).run_tasks(_double, [5, 6])
        assert serial == pooled


class TestCacheCounters:
    def test_hits_misses_writes_reported(self, tmp_path):
        obs.enable()
        cache = RunCache(tmp_path)
        harness = EvaluationHarness(cache_dir=tmp_path)
        harness.evaluate_cells([("fdtd2d", "silicon", None)])
        counters = get_tracer().counters
        assert counters["cache.misses"] >= 1.0
        assert counters["cache.writes"] >= 1.0
        # A fresh harness on the same cache dir reads the entry back.
        obs.reset()
        obs.enable()
        warm = EvaluationHarness(cache_dir=tmp_path)
        warm.evaluate_cells([("fdtd2d", "silicon", None)])
        assert get_tracer().counters["cache.hits"] >= 1.0
        assert cache is not None  # silence unused warning

    def test_quarantine_reported(self, tmp_path):
        obs.enable()
        cache = RunCache(tmp_path)
        cache._write("ab" * 32, "app_run", {"bogus": True})
        entry_path = cache._path("ab" * 32)
        entry_path.write_text("not json at all", encoding="utf-8")
        assert cache.get_run("ab" * 32) is None
        counters = get_tracer().counters
        assert counters["cache.quarantined"] == 1.0
        assert counters["cache.misses"] == 1.0
