"""Unit tests for the tracing core: spans, counters, capture, exporters."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import (
    NULL_SPAN,
    ObsSnapshot,
    Tracer,
    capture_tracer,
    chrome_trace,
    get_tracer,
    obs_count,
    obs_span,
    run_summary,
    run_summary_path,
    summary_table,
    write_chrome_trace,
    write_run_summary,
)


class TestDisabledMode:
    def test_disabled_span_is_the_cached_null_span(self):
        assert obs_span("anything", key="value") is NULL_SPAN
        assert get_tracer().span("anything") is NULL_SPAN

    def test_disabled_records_nothing(self):
        with obs_span("outer"):
            obs_count("some.counter", 5)
        tracer = get_tracer()
        assert tracer.events == []
        assert tracer.counters == {}
        assert tracer.records == 0

    def test_null_span_set_is_a_noop(self):
        with obs_span("x") as span:
            span.set(a=1)  # must not raise


class TestEnabledMode:
    def test_span_records_on_exit(self):
        obs.enable()
        with obs_span("pks.cluster", kernels=3):
            pass
        (event,) = get_tracer().events
        assert event.name == "pks.cluster"
        assert event.args == {"kernels": 3}
        assert event.duration_us >= 0.0

    def test_nested_spans_record_inner_first(self):
        obs.enable()
        with obs_span("outer"):
            with obs_span("inner"):
                pass
        names = [event.name for event in get_tracer().events]
        assert names == ["inner", "outer"]
        inner, outer = get_tracer().events
        assert outer.start_us <= inner.start_us
        assert outer.start_us + outer.duration_us >= inner.start_us + inner.duration_us

    def test_span_set_attaches_attributes(self):
        obs.enable()
        with obs_span("s", a=1) as span:
            span.set(b=2)
        (event,) = get_tracer().events
        assert event.args == {"a": 1, "b": 2}

    def test_span_records_even_when_body_raises(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with obs_span("failing"):
                raise RuntimeError("boom")
        assert [event.name for event in get_tracer().events] == ["failing"]

    def test_counters_accumulate(self):
        obs.enable()
        obs_count("cache.hits")
        obs_count("cache.hits")
        obs_count("sim.simulated_cycles", 1500.0)
        counters = get_tracer().counters
        assert counters["cache.hits"] == 2.0
        assert counters["sim.simulated_cycles"] == 1500.0

    def test_records_counts_spans_and_counter_updates(self):
        obs.enable()
        with obs_span("a"):
            pass
        obs_count("c")
        obs_count("c")
        assert get_tracer().records == 3

    def test_enable_disable_toggle_preserves_state(self):
        obs.enable()
        obs_count("kept")
        obs.disable()
        obs_count("dropped")
        assert get_tracer().counters == {"kept": 1.0}
        obs.enable()
        assert get_tracer().counters == {"kept": 1.0}


class TestCaptureAndMerge:
    def test_capture_tracer_isolates_and_restores(self):
        obs.enable()
        parent = get_tracer()
        obs_count("parent.counter")
        with capture_tracer() as captured:
            obs_count("child.counter")
            assert get_tracer() is captured
        assert get_tracer() is parent
        assert "child.counter" not in parent.counters
        assert captured.counters == {"child.counter": 1.0}

    def test_snapshot_roundtrips_through_pickle(self):
        import pickle

        with capture_tracer() as captured:
            with obs_span("task", label="cell"):
                obs_count("sim.kernels_simulated", 4)
            snapshot = captured.snapshot()
        restored = pickle.loads(pickle.dumps(snapshot))
        assert restored == snapshot
        assert restored.events[0].name == "task"
        assert restored.counters == {"sim.kernels_simulated": 4.0}

    def test_merge_folds_events_and_counters(self):
        obs.enable()
        obs_count("shared", 1)
        with capture_tracer() as captured:
            with obs_span("worker.span"):
                pass
            obs_count("shared", 2)
            snapshot = captured.snapshot()
        get_tracer().merge(snapshot)
        assert get_tracer().counters["shared"] == 3.0
        assert [event.name for event in get_tracer().events] == ["worker.span"]

    def test_merge_empty_snapshot_is_a_noop(self):
        obs.enable()
        get_tracer().merge(ObsSnapshot(events=(), counters={}))
        assert get_tracer().records == 0


class TestExporters:
    def _populated_tracer(self) -> Tracer:
        tracer = Tracer(enabled=True)
        with tracer.span("harness.cell", cell="fdtd2d:silicon"):
            pass
        with tracer.span("harness.cell", cell="fdtd2d:pka_sim"):
            pass
        tracer.count("cache.hits", 3)
        tracer.count("cache.misses", 1)
        return tracer

    def test_summary_table_lists_spans_and_counters(self):
        table = summary_table(self._populated_tracer())
        assert "harness.cell" in table
        assert "cache.hits" in table
        assert "2" in table  # span count column

    def test_summary_table_empty(self):
        assert "no spans" in summary_table(Tracer(enabled=True))

    def test_chrome_trace_is_well_formed(self):
        document = chrome_trace(self._populated_tracer())
        assert json.loads(json.dumps(document)) == document
        events = document["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
        starts = [event["ts"] for event in events]
        assert starts == sorted(starts)
        assert document["otherData"]["counters"]["cache.hits"] == 3.0

    def test_run_summary_structure(self):
        document = run_summary(self._populated_tracer())
        assert document["version"] == 1
        assert document["counters"] == {"cache.hits": 3.0, "cache.misses": 1.0}
        cell = document["spans"]["harness.cell"]
        assert cell["count"] == 2
        assert cell["total_seconds"] >= cell["mean_seconds"] >= 0.0

    def test_run_summary_embeds_manifest(self):
        manifest = {
            "sweep_id": "abc123",
            "total_cells": 4,
            "completed": ["a", "b", "c"],
            "quarantined": ["d"],
        }
        document = run_summary(self._populated_tracer(), manifest=manifest)
        assert document["sweep"] == {
            "sweep_id": "abc123",
            "total_cells": 4,
            "completed": 3,
            "quarantined": 1,
        }

    def test_run_summary_path(self):
        assert run_summary_path("out/trace.json").name == "trace.summary.json"
        assert run_summary_path("trace.json").name == "trace.summary.json"

    def test_writers_create_parents_and_valid_json(self, tmp_path):
        tracer = self._populated_tracer()
        trace_path = write_chrome_trace(tmp_path / "deep" / "trace.json", tracer)
        summary_path = write_run_summary(
            run_summary_path(trace_path), tracer, manifest=None
        )
        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        summary = json.loads(summary_path.read_text(encoding="utf-8"))
        assert {event["name"] for event in trace["traceEvents"]} == {"harness.cell"}
        assert summary["counters"]["cache.misses"] == 1.0
