"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    NotFittedError,
    ProfilingError,
    ReproError,
    SimulationError,
    WorkloadError,
)

ALL_ERRORS = [
    ConfigurationError,
    ConvergenceError,
    NotFittedError,
    ProfilingError,
    SimulationError,
    WorkloadError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_every_error_derives_from_repro_error(error_type):
    assert issubclass(error_type, ReproError)
    assert issubclass(error_type, Exception)


def test_single_except_clause_catches_everything():
    for error_type in ALL_ERRORS:
        with pytest.raises(ReproError):
            raise error_type("boom")


def test_library_raises_only_its_own_types():
    """A user typo surfaces as a ReproError, not a bare KeyError."""
    from repro.workloads import get_workload

    with pytest.raises(ReproError):
        get_workload("no_such_workload")
