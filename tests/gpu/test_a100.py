"""Tests for the A100 extension config."""

from __future__ import annotations

from repro.gpu import ALL_GPUS, AMPERE_A100, AMPERE_RTX3070, VOLTA_V100, get_gpu


class TestA100:
    def test_registered(self):
        assert AMPERE_A100 in ALL_GPUS
        assert get_gpu("A100") is AMPERE_A100

    def test_generation_lookup_still_gives_the_paper_card(self):
        """The paper's Ampere is the RTX 3070; "ampere" must keep
        resolving to it so Table-4 regeneration is unaffected."""
        assert get_gpu("ampere") is AMPERE_RTX3070

    def test_datacenter_class_parameters(self):
        assert AMPERE_A100.num_sms > VOLTA_V100.num_sms
        assert AMPERE_A100.dram_bandwidth_gbps > VOLTA_V100.dram_bandwidth_gbps
        assert AMPERE_A100.l2_size_bytes > VOLTA_V100.l2_size_bytes
        assert AMPERE_A100.dram_capacity_gb >= 40.0

    def test_faster_than_v100_on_corpus_kernels(self):
        from repro.sim import analytic_kernel_cycles
        from repro.workloads import get_workload

        for name in ("parboil_sgemm", "atax", "fdtd2d"):
            launch = get_workload(name).build()[0]
            a100 = analytic_kernel_cycles(launch, AMPERE_A100)
            v100 = analytic_kernel_cycles(launch, VOLTA_V100)
            assert a100 < v100 * 1.05, name

    def test_mlperf_fits_on_a100(self):
        from repro.workloads import get_workload

        assert get_workload("mlperf_ssd_training").fits_on(AMPERE_A100)

    def test_selection_projects_onto_a100(self, harness):
        """Volta-selected kernels price A100 silicon (extension of the
        paper's cross-generation experiment)."""
        from repro.analysis import abs_pct_error
        from repro.sim import SiliconExecutor

        evaluation = harness.evaluation("histo")
        a100 = SiliconExecutor(AMPERE_A100)
        truth = a100.run("histo", evaluation.launches("volta"))
        projected = harness.pka.project_silicon(evaluation.selection(), a100)
        assert (
            abs_pct_error(projected.total_cycles, truth.total_cycles) < 10.0
        )
