"""Tests for repro.gpu.kernels."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.gpu import InstructionMix, KernelLaunch, KernelSpec


class TestInstructionMix:
    def test_per_thread_total(self, compute_mix):
        assert compute_mix.per_thread_total == pytest.approx(1_888.0)

    def test_memory_fraction(self, memory_mix):
        expected = (40 + 20) / memory_mix.per_thread_total
        assert memory_mix.memory_fraction == pytest.approx(expected)

    def test_rejects_negative_counts(self):
        with pytest.raises(WorkloadError):
            InstructionMix(fp_ops=-1.0, int_ops=2.0)

    def test_rejects_empty_mix(self):
        with pytest.raises(WorkloadError):
            InstructionMix()

    def test_scaled(self, compute_mix):
        doubled = compute_mix.scaled(2.0)
        assert doubled.per_thread_total == pytest.approx(
            2.0 * compute_mix.per_thread_total
        )
        assert doubled.memory_fraction == pytest.approx(compute_mix.memory_fraction)

    def test_scaled_rejects_nonpositive(self, compute_mix):
        with pytest.raises(WorkloadError):
            compute_mix.scaled(0.0)


class TestKernelSpec:
    def test_validation(self, compute_mix):
        with pytest.raises(WorkloadError):
            KernelSpec(name="bad", threads_per_block=0, mix=compute_mix)
        with pytest.raises(WorkloadError):
            KernelSpec(name="bad", threads_per_block=2048, mix=compute_mix)
        with pytest.raises(WorkloadError):
            KernelSpec(
                name="bad",
                threads_per_block=128,
                mix=compute_mix,
                divergence_efficiency=0.0,
            )
        with pytest.raises(WorkloadError):
            KernelSpec(
                name="bad",
                threads_per_block=128,
                mix=compute_mix,
                sectors_per_global_access=64.0,
            )
        with pytest.raises(WorkloadError):
            KernelSpec(
                name="bad", threads_per_block=128, mix=compute_mix, l2_locality=1.5
            )

    def test_signature_stable_across_instances(self, compute_mix):
        spec_a = KernelSpec(name="k", threads_per_block=256, mix=compute_mix)
        spec_b = KernelSpec(name="k", threads_per_block=256, mix=compute_mix)
        assert spec_a.signature() == spec_b.signature()

    def test_signature_differs_by_any_field(self, compute_spec):
        for field, value in [
            ("name", "other"),
            ("threads_per_block", 128),
            ("l2_locality", 0.3),
            ("duration_cv", 0.5),
            ("uses_tensor_cores", True),
            ("cold_start_factor", 0.0),
        ]:
            variant = dataclasses.replace(compute_spec, **{field: value})
            assert variant.signature() != compute_spec.signature(), field

    def test_signature_fits_63_bits(self, compute_spec):
        assert 0 <= compute_spec.signature() < 2**63

    def test_with_mix(self, compute_spec, memory_mix):
        swapped = compute_spec.with_mix(memory_mix)
        assert swapped.mix is memory_mix
        assert swapped.name == compute_spec.name


class TestKernelLaunch:
    def test_totals(self, compute_spec):
        launch = KernelLaunch(spec=compute_spec, grid_blocks=100, launch_id=0)
        assert launch.total_threads == 100 * 256
        assert launch.total_warps == pytest.approx(100 * 8)
        assert launch.thread_instructions == pytest.approx(
            100 * 256 * compute_spec.mix.per_thread_total
        )

    def test_divergence_inflates_warp_instructions(self, compute_mix):
        divergent = KernelSpec(
            name="d",
            threads_per_block=256,
            mix=compute_mix,
            divergence_efficiency=0.5,
        )
        straight = KernelSpec(name="s", threads_per_block=256, mix=compute_mix)
        launch_d = KernelLaunch(spec=divergent, grid_blocks=10, launch_id=0)
        launch_s = KernelLaunch(spec=straight, grid_blocks=10, launch_id=0)
        assert launch_d.warp_instructions == pytest.approx(
            2.0 * launch_s.warp_instructions
        )

    def test_validation(self, compute_spec):
        with pytest.raises(WorkloadError):
            KernelLaunch(spec=compute_spec, grid_blocks=0, launch_id=0)
        with pytest.raises(WorkloadError):
            KernelLaunch(spec=compute_spec, grid_blocks=1, launch_id=-1)

    def test_nvtx_defaults_empty(self, compute_spec):
        launch = KernelLaunch(spec=compute_spec, grid_blocks=1, launch_id=0)
        assert launch.nvtx == {}


@given(
    tpb=st.integers(1, 1024),
    grid=st.integers(1, 10_000),
    efficiency=st.floats(0.05, 1.0),
)
@settings(max_examples=60, deadline=None)
def test_warp_instruction_identity(tpb, grid, efficiency):
    """thread_insts == warp_insts * 32 * efficiency, always."""
    mix = InstructionMix(fp_ops=100.0, global_loads=10.0)
    spec = KernelSpec(
        name="prop",
        threads_per_block=tpb,
        mix=mix,
        divergence_efficiency=efficiency,
    )
    launch = KernelLaunch(spec=spec, grid_blocks=grid, launch_id=0)
    assert launch.thread_instructions == pytest.approx(
        launch.warp_instructions * 32.0 * efficiency, rel=1e-9
    )
