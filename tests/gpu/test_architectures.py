"""Tests for repro.gpu.architectures."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.gpu import (
    AMPERE_RTX3070,
    GENERATIONS,
    TURING_RTX2060,
    VOLTA_V100,
    get_gpu,
    volta_v100_half_sms,
)


class TestConfigs:
    def test_three_generations_registered(self):
        assert set(GENERATIONS) == {"volta", "turing", "ampere"}

    def test_volta_shape(self):
        assert VOLTA_V100.num_sms == 80
        assert VOLTA_V100.dram_capacity_gb == 32.0
        assert VOLTA_V100.generation == "volta"

    def test_turing_smaller_than_volta(self):
        assert TURING_RTX2060.num_sms < VOLTA_V100.num_sms
        assert TURING_RTX2060.dram_bandwidth_gbps < VOLTA_V100.dram_bandwidth_gbps
        assert TURING_RTX2060.dram_capacity_gb < VOLTA_V100.dram_capacity_gb

    def test_peak_ipc(self):
        assert VOLTA_V100.peak_ipc == pytest.approx(320.0)

    def test_dram_bytes_per_cycle(self):
        expected = VOLTA_V100.dram_bandwidth_gbps / VOLTA_V100.core_clock_ghz
        assert VOLTA_V100.dram_bytes_per_cycle == pytest.approx(expected)

    def test_cycles_to_seconds(self):
        one_second_cycles = VOLTA_V100.core_clock_ghz * 1e9
        assert VOLTA_V100.cycles_to_seconds(one_second_cycles) == pytest.approx(1.0)

    def test_sim_is_orders_of_magnitude_slower_than_silicon(self):
        cycles = 1e9
        sim = VOLTA_V100.cycles_to_sim_seconds(cycles)
        silicon = VOLTA_V100.cycles_to_seconds(cycles)
        assert sim / silicon > 1e6

    def test_configs_are_frozen(self):
        with pytest.raises(AttributeError):
            VOLTA_V100.num_sms = 1  # type: ignore[misc]


class TestHalfSMs:
    def test_half_sm_count(self):
        half = volta_v100_half_sms()
        assert half.num_sms == 40
        assert half.generation == "volta"

    def test_half_keeps_other_params(self):
        half = volta_v100_half_sms()
        assert half.dram_bandwidth_gbps == VOLTA_V100.dram_bandwidth_gbps
        assert half.l2_size_bytes == VOLTA_V100.l2_size_bytes

    def test_with_sms_validates(self):
        with pytest.raises(ConfigurationError):
            VOLTA_V100.with_sms(0)


class TestLookup:
    def test_by_generation(self):
        assert get_gpu("volta") is VOLTA_V100
        assert get_gpu("Turing") is TURING_RTX2060

    def test_by_name(self):
        assert get_gpu("V100") is VOLTA_V100
        assert get_gpu("rtx3070") is AMPERE_RTX3070

    def test_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_gpu("pascal")
