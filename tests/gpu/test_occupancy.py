"""Tests for repro.gpu.occupancy."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gpu import (
    InstructionMix,
    KernelSpec,
    TURING_RTX2060,
    VOLTA_V100,
    compute_occupancy,
)


def _spec(**overrides) -> KernelSpec:
    defaults = dict(
        name="occ",
        threads_per_block=256,
        mix=InstructionMix(fp_ops=100.0),
        regs_per_thread=32,
        shared_mem_per_block=0,
    )
    defaults.update(overrides)
    return KernelSpec(**defaults)


class TestComputeOccupancy:
    def test_thread_limited(self):
        occupancy = compute_occupancy(_spec(threads_per_block=256), VOLTA_V100)
        assert occupancy.blocks_per_sm == 8  # 2048 / 256
        assert occupancy.limiting_resource == "threads"
        assert occupancy.wave_size == 8 * 80

    def test_block_slot_limited(self):
        occupancy = compute_occupancy(_spec(threads_per_block=32), VOLTA_V100)
        assert occupancy.blocks_per_sm == 32
        assert occupancy.limiting_resource == "blocks"

    def test_register_limited(self):
        occupancy = compute_occupancy(
            _spec(threads_per_block=256, regs_per_thread=128), VOLTA_V100
        )
        assert occupancy.blocks_per_sm == 65_536 // (128 * 256)
        assert occupancy.limiting_resource == "registers"

    def test_shared_memory_limited(self):
        occupancy = compute_occupancy(
            _spec(shared_mem_per_block=48 * 1024), VOLTA_V100
        )
        assert occupancy.blocks_per_sm == 2  # 96KB / 48KB
        assert occupancy.limiting_resource == "shared_mem"

    def test_oversubscribed_floors_at_one(self):
        occupancy = compute_occupancy(
            _spec(threads_per_block=1024, regs_per_thread=255), VOLTA_V100
        )
        assert occupancy.blocks_per_sm == 1

    def test_max_size_block_fits_exactly_on_turing(self):
        # RTX 2060 SMs hold at most 1024 threads; a 1024-thread block fits
        # exactly, so occupancy is one block per SM.
        occupancy = compute_occupancy(_spec(threads_per_block=1024), TURING_RTX2060)
        assert occupancy.blocks_per_sm == 1

    def test_block_exceeding_sm_capacity_raises(self):
        huge = _spec(threads_per_block=1024)
        tiny_gpu = dataclasses.replace(VOLTA_V100, max_threads_per_sm=512)
        with pytest.raises(ConfigurationError):
            compute_occupancy(huge, tiny_gpu)

    def test_occupancy_fraction_full(self):
        occupancy = compute_occupancy(_spec(threads_per_block=256), VOLTA_V100)
        assert occupancy.occupancy_fraction == pytest.approx(1.0)

    def test_occupancy_fraction_partial(self):
        occupancy = compute_occupancy(
            _spec(threads_per_block=256, regs_per_thread=128), VOLTA_V100
        )
        assert occupancy.occupancy_fraction == pytest.approx(2 * 8 / 64)

    def test_wave_smaller_on_smaller_gpu(self):
        spec = _spec()
        volta = compute_occupancy(spec, VOLTA_V100)
        turing = compute_occupancy(spec, TURING_RTX2060)
        assert turing.wave_size < volta.wave_size


@given(
    tpb=st.sampled_from([32, 64, 128, 256, 512, 1024]),
    regs=st.integers(16, 255),
    smem=st.sampled_from([0, 1024, 8 * 1024, 32 * 1024, 96 * 1024]),
)
@settings(max_examples=80, deadline=None)
def test_occupancy_respects_every_limit(tpb, regs, smem):
    spec = _spec(threads_per_block=tpb, regs_per_thread=regs, shared_mem_per_block=smem)
    occupancy = compute_occupancy(spec, VOLTA_V100)
    blocks = occupancy.blocks_per_sm
    assert blocks >= 1
    if blocks > 1:
        # Never over thread, block, register or shared-memory capacity.
        assert blocks * tpb <= VOLTA_V100.max_threads_per_sm
        assert blocks <= VOLTA_V100.max_blocks_per_sm
        assert blocks * regs * tpb <= VOLTA_V100.registers_per_sm
        if smem:
            assert blocks * smem <= VOLTA_V100.shared_mem_per_sm
    assert occupancy.wave_size == blocks * VOLTA_V100.num_sms
    assert 0.0 < occupancy.occupancy_fraction <= 1.0
