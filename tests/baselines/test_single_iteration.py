"""Tests for the NVArchSim-style single-iteration baseline."""

from __future__ import annotations

import pytest

from repro.baselines import (
    iteration_key,
    run_single_iteration,
    split_iterations,
)
from repro.errors import ReproError
from repro.gpu import KernelLaunch, VOLTA_V100
from repro.workloads import get_workload, tiny_spec


def _tagged_app(iterations=5, kernels_per=4):
    spec = tiny_spec("iter_kernel", work=100.0)
    launches = []
    for iteration in range(iterations):
        for _ in range(kernels_per):
            launches.append(
                KernelLaunch(
                    spec=spec,
                    grid_blocks=64,
                    launch_id=len(launches),
                    nvtx={"layer": f"iter{iteration}.stage"},
                )
            )
    return launches


class TestSplitIterations:
    def test_iteration_key(self):
        launch = _tagged_app()[0]
        assert iteration_key(launch) == "iter0"

    def test_untagged_has_no_key(self, compute_launch):
        assert iteration_key(compute_launch) is None

    def test_splits_by_tag(self):
        iterations = split_iterations(_tagged_app(iterations=5, kernels_per=4))
        assert len(iterations) == 5
        assert all(len(chunk) == 4 for chunk in iterations)

    def test_untagged_launches_attach_to_current(self, compute_spec):
        launches = _tagged_app(iterations=2, kernels_per=2)
        launches.insert(
            1, KernelLaunch(spec=compute_spec, grid_blocks=8, launch_id=99)
        )
        iterations = split_iterations(launches)
        assert len(iterations) == 2
        assert len(iterations[0]) == 3

    def test_resnet_batches_detected(self):
        launches = get_workload("mlperf_resnet50_64b").build()
        iterations = split_iterations(launches)
        assert len(iterations) == 200  # 12800 images / batch 64


class TestRunSingleIteration:
    def test_uniform_app_is_exact(self, faithful_simulator):
        launches = _tagged_app(iterations=6, kernels_per=3)
        result = run_single_iteration("app", launches, faithful_simulator)
        full = faithful_simulator.run_full("app", launches)
        assert result.total_cycles == pytest.approx(full.total_cycles, rel=0.02)

    def test_cost_is_one_iteration(self, faithful_simulator):
        launches = _tagged_app(iterations=6, kernels_per=3)
        result = run_single_iteration("app", launches, faithful_simulator)
        full = faithful_simulator.run_full("app", launches)
        assert result.simulated_cycles == pytest.approx(
            full.simulated_cycles / 6, rel=0.05
        )

    def test_needs_iteration_structure(self, faithful_simulator, compute_launch):
        with pytest.raises(ReproError):
            run_single_iteration("app", [compute_launch], faithful_simulator)

    def test_skips_first_iteration_by_default(self, faithful_simulator):
        """The default picks iteration index 1, avoiding warm-up effects."""
        launches = _tagged_app(iterations=3, kernels_per=2)
        result = run_single_iteration(
            "app", launches, faithful_simulator, iteration_index=1
        )
        assert result.method == "single_iteration"

    def test_simulates_more_than_pka_on_resnet(self, harness):
        """The Section-6 comparison: comparable accuracy, far more cost."""
        evaluation = harness.evaluation("mlperf_resnet50_64b")
        launches = evaluation.launches("volta")
        simulator = harness.simulator(VOLTA_V100)
        single = run_single_iteration(
            "mlperf_resnet50_64b", launches, simulator
        )
        pka = evaluation.pka_sim()
        assert single.simulated_cycles > 5.0 * pka.simulated_cycles
