"""Tests for the first-N-instructions baseline."""

from __future__ import annotations

import pytest

from repro.baselines import run_first_n_instructions
from repro.errors import ReproError
from repro.gpu import KernelLaunch


def _app(spec, count, grid=500):
    return [
        KernelLaunch(spec=spec, grid_blocks=grid, launch_id=index)
        for index in range(count)
    ]


class TestFirstN:
    def test_generous_budget_equals_full_sim(
        self, faithful_simulator, compute_spec
    ):
        launches = _app(compute_spec, 10)
        result = run_first_n_instructions(
            "app", launches, faithful_simulator, instruction_budget=1e18
        )
        full = faithful_simulator.run_full("app", launches)
        assert result.total_cycles == pytest.approx(full.total_cycles)
        assert result.simulated_cycles == pytest.approx(full.simulated_cycles)

    def test_budget_truncates_and_extrapolates(
        self, faithful_simulator, compute_spec
    ):
        launches = _app(compute_spec, 20)
        one_kernel_insts = launches[0].thread_instructions
        result = run_first_n_instructions(
            "app",
            launches,
            faithful_simulator,
            instruction_budget=one_kernel_insts * 3.5,
        )
        full = faithful_simulator.run_full("app", launches)
        # Uniform app: extrapolation is nearly exact, cost is ~4/20.
        assert result.total_cycles == pytest.approx(full.total_cycles, rel=0.05)
        assert result.simulated_cycles < full.simulated_cycles / 4

    def test_phased_app_misleads_the_prefix(self, faithful_simulator, compute_spec):
        """If early kernels are atypically slow per instruction, the prefix
        overestimates the app — the paper's Figure-8 effect."""
        import dataclasses

        slow = dataclasses.replace(
            compute_spec,
            name="warmup_probe",
            mix=compute_spec.mix,
            l2_locality=0.0,
            sectors_per_global_access=32.0,
            working_set_bytes=5e8,
        )
        launches = [
            KernelLaunch(spec=slow, grid_blocks=500, launch_id=0),
            KernelLaunch(spec=slow, grid_blocks=500, launch_id=1),
        ] + [
            KernelLaunch(spec=compute_spec, grid_blocks=500, launch_id=i)
            for i in range(2, 40)
        ]
        truth = faithful_simulator.run_full("app", launches)
        result = run_first_n_instructions(
            "app",
            launches,
            faithful_simulator,
            instruction_budget=launches[0].thread_instructions * 4,
        )
        assert result.total_cycles > 1.5 * truth.total_cycles

    def test_instruction_totals_exact(self, faithful_simulator, compute_spec):
        launches = _app(compute_spec, 10)
        result = run_first_n_instructions(
            "app",
            launches,
            faithful_simulator,
            instruction_budget=launches[0].thread_instructions,
        )
        exact = sum(launch.warp_instructions for launch in launches)
        assert result.total_instructions == pytest.approx(exact)

    def test_validation(self, faithful_simulator, compute_launch):
        with pytest.raises(ReproError):
            run_first_n_instructions(
                "app", [], faithful_simulator
            )
        with pytest.raises(ReproError):
            run_first_n_instructions(
                "app", [compute_launch], faithful_simulator, instruction_budget=0
            )

    def test_method_label(self, faithful_simulator, compute_launch):
        result = run_first_n_instructions(
            "app", [compute_launch], faithful_simulator
        )
        assert result.method == "first_1b"
