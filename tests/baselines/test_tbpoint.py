"""Tests for the TBPoint baseline."""

from __future__ import annotations

import pytest

from repro.baselines import select_tbpoint, simulate_tbpoint
from repro.errors import ReproError
from repro.gpu import KernelLaunch, VOLTA_V100
from repro.mlkit import ClusteringCapacityError
from repro.profiling import DetailedProfiler
from repro.sim import SiliconExecutor
from repro.workloads import compute_spec, get_workload, tiny_spec

HEAVY = compute_spec("tb_heavy", flops=5_000.0, shared=400.0)
LIGHT = tiny_spec("tb_light", work=50.0)


def _profiles(launches):
    return DetailedProfiler(SiliconExecutor(VOLTA_V100)).profile(launches)


def _two_family_app(count_each=15):
    launches = []
    for index in range(count_each * 2):
        spec, grid = (HEAVY, 1_000) if index % 2 == 0 else (LIGHT, 4)
        launches.append(KernelLaunch(spec=spec, grid_blocks=grid, launch_id=index))
    return launches


class TestSelectTBPoint:
    def test_finds_the_two_families(self):
        launches = _two_family_app()
        selection = select_tbpoint("app", _profiles(launches))
        assert selection.n_clusters == 2
        assert sorted(selection.weights) == [15, 15]
        assert selection.projection_error < 0.05

    def test_threshold_from_the_paper_sweep(self):
        launches = _two_family_app()
        selection = select_tbpoint("app", _profiles(launches))
        assert 0.01 <= selection.threshold <= 0.2

    def test_representatives_are_medoids_not_first(self):
        """TBPoint picks cluster medoids; with identical members any member
        qualifies, but ids must belong to the right families."""
        launches = _two_family_app()
        selection = select_tbpoint("app", _profiles(launches))
        by_id = {launch.launch_id: launch for launch in launches}
        names = {
            by_id[launch_id].spec.name
            for launch_id in selection.representative_launch_ids
        }
        assert names == {"tb_heavy", "tb_light"}

    def test_capacity_wall(self):
        launches = _two_family_app(count_each=30)
        with pytest.raises(ClusteringCapacityError):
            select_tbpoint("app", _profiles(launches), max_points=50)

    def test_mlperf_scale_hits_the_wall(self):
        """The scalability failure the paper reports: TBPoint cannot
        cluster MLPerf kernel counts."""
        spec = get_workload("mlperf_ssd_training")
        launches = spec.build()
        profiles = _profiles(launches[:25_000])
        with pytest.raises(ClusteringCapacityError):
            select_tbpoint(spec.name, profiles)

    def test_empty_raises(self):
        with pytest.raises(ReproError):
            select_tbpoint("app", [])


class TestSimulateTBPoint:
    def test_projection_close_to_full_sim(self, faithful_simulator):
        launches = _two_family_app()
        selection = select_tbpoint("app", _profiles(launches))
        run = simulate_tbpoint(selection, launches, faithful_simulator)
        full = faithful_simulator.run_full("app", launches)
        error = abs(run.total_cycles - full.total_cycles) / full.total_cycles
        assert error < 0.05

    def test_more_conservative_than_sampled_cost_alone(self, faithful_simulator):
        """The warmup fraction makes TBPoint pay extra simulation."""
        launches = _two_family_app()
        selection = select_tbpoint("app", _profiles(launches))
        lean = simulate_tbpoint(
            selection, launches, faithful_simulator, warmup_fraction=0.0
        )
        standard = simulate_tbpoint(selection, launches, faithful_simulator)
        assert standard.simulated_cycles == pytest.approx(
            1.5 * lean.simulated_cycles
        )

    def test_method_label(self, faithful_simulator):
        launches = _two_family_app()
        selection = select_tbpoint("app", _profiles(launches))
        run = simulate_tbpoint(selection, launches, faithful_simulator)
        assert run.method == "tbpoint"
