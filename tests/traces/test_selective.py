"""Tests for selective tracing plans."""

from __future__ import annotations

import pytest

from repro.traces import build_tracing_plan, read_trace, write_selected_traces


@pytest.fixture(scope="module")
def gramschmidt(harness):
    evaluation = harness.evaluation("gramschmidt")
    return evaluation.selection(), evaluation.launches("volta")


class TestTracingPlan:
    def test_plan_covers_selected_ids(self, gramschmidt):
        selection, launches = gramschmidt
        plan = build_tracing_plan(selection, launches)
        assert plan.selected_launch_ids == selection.selected_launch_ids
        assert plan.selected_count == selection.selected_count

    def test_massive_trace_reduction(self, gramschmidt):
        selection, launches = gramschmidt
        plan = build_tracing_plan(selection, launches)
        assert plan.reduction_factor > 50.0
        assert plan.selected_trace_bytes < plan.full_trace_bytes

    def test_bytes_consistent_with_format_estimate(self, gramschmidt):
        from repro.traces import estimated_trace_bytes

        selection, launches = gramschmidt
        plan = build_tracing_plan(selection, launches)
        manual = sum(estimated_trace_bytes(launch) for launch in launches)
        assert plan.full_trace_bytes == pytest.approx(manual)


class TestWriteSelectedTraces:
    def test_writes_one_file_per_representative(self, gramschmidt, tmp_path):
        selection, launches = gramschmidt
        paths = write_selected_traces(selection, launches, tmp_path)
        assert len(paths) == selection.selected_count
        for path in paths:
            assert path.exists()
            name, restored = read_trace(path)
            assert name == "gramschmidt"
            assert len(restored) == 1
            assert restored[0].launch_id in selection.selected_launch_ids

    def test_traces_replayable_in_simulator(self, gramschmidt, tmp_path, harness):
        """A written trace drives the simulator to the identical result."""
        from repro.gpu import VOLTA_V100

        selection, launches = gramschmidt
        (path, *_rest) = write_selected_traces(selection, launches, tmp_path)
        _, (restored,) = read_trace(path)
        simulator = harness.simulator(VOLTA_V100)
        original = next(
            launch
            for launch in launches
            if launch.launch_id == restored.launch_id
        )
        assert (
            simulator.run_kernel(restored).cycles
            == simulator.run_kernel(original).cycles
        )
