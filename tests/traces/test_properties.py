"""Property-based tests: trace serialization over random kernel specs."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import InstructionMix, KernelLaunch, KernelSpec
from repro.traces import dumps_trace, loads_trace


@st.composite
def random_launch(draw):
    mix = InstructionMix(
        fp_ops=draw(st.floats(0.0, 1e4)),
        int_ops=draw(st.floats(0.0, 1e4)),
        tensor_ops=draw(st.floats(0.0, 1e3)),
        global_loads=draw(st.floats(0.0, 1e3)),
        global_stores=draw(st.floats(0.0, 1e3)),
        shared_loads=draw(st.floats(0.0, 1e3)),
        control_ops=draw(st.floats(0.1, 100.0)),  # keeps the mix non-empty
    )
    spec = KernelSpec(
        name=draw(
            st.text(
                alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                min_size=1,
                max_size=40,
            )
        ),
        threads_per_block=draw(st.integers(1, 1024)),
        mix=mix,
        regs_per_thread=draw(st.integers(1, 255)),
        shared_mem_per_block=draw(st.integers(0, 96 * 1024)),
        divergence_efficiency=draw(st.floats(0.05, 1.0)),
        sectors_per_global_access=draw(st.floats(1.0, 32.0)),
        l2_locality=draw(st.floats(0.0, 1.0)),
        working_set_bytes=draw(st.floats(1.0, 1e12)),
        duration_cv=draw(st.floats(0.0, 2.0)),
        phase_drift=draw(st.floats(-0.9, 3.0)),
        cold_start_factor=draw(st.floats(0.0, 2.0)),
        uses_tensor_cores=draw(st.booleans()),
    )
    return KernelLaunch(
        spec=spec,
        grid_blocks=draw(st.integers(1, 10**7)),
        launch_id=draw(st.integers(0, 10**7)),
        nvtx={
            "layer": draw(st.text(max_size=20)),
            "tensor_volume": str(draw(st.floats(0.0, 1e12))),
        },
    )


@given(st.lists(random_launch(), min_size=1, max_size=5))
@settings(max_examples=60, deadline=None)
def test_trace_roundtrip_preserves_specs(launches):
    name, restored = loads_trace(dumps_trace("prop_app", launches))
    assert name == "prop_app"
    assert len(restored) == len(launches)
    for original, loaded in zip(launches, restored):
        assert loaded.spec == original.spec
        assert loaded.spec.signature() == original.spec.signature()
        assert loaded.grid_blocks == original.grid_blocks
        assert loaded.launch_id == original.launch_id
        assert loaded.nvtx == original.nvtx


@given(random_launch())
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_simulation_behaviour(launch):
    """A restored launch prices identically on the silicon model."""
    from repro.gpu import VOLTA_V100
    from repro.sim import analytic_kernel_cycles

    _, (restored,) = loads_trace(dumps_trace("app", [launch]))
    assert analytic_kernel_cycles(restored, VOLTA_V100) == analytic_kernel_cycles(
        launch, VOLTA_V100
    )
