"""Tests for the .pkatrace serialization format."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.traces import (
    TRACE_FORMAT_VERSION,
    dumps_trace,
    estimated_trace_bytes,
    loads_trace,
    read_trace,
    write_trace,
)
from repro.workloads import get_workload


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, compute_launch, memory_launch):
        text = dumps_trace("app", [compute_launch, memory_launch])
        name, launches = loads_trace(text)
        assert name == "app"
        assert len(launches) == 2
        for original, restored in zip([compute_launch, memory_launch], launches):
            assert restored.launch_id == original.launch_id
            assert restored.grid_blocks == original.grid_blocks
            assert restored.spec == original.spec
            assert restored.spec.signature() == original.spec.signature()

    def test_roundtrip_preserves_nvtx(self):
        launches = get_workload("mlperf_3dunet_inference").build()[:5]
        name, restored = loads_trace(dumps_trace("unet", launches))
        assert all(a.nvtx == b.nvtx for a, b in zip(launches, restored))

    def test_roundtrip_through_file(self, tmp_path, compute_launch):
        path = write_trace(tmp_path / "app.pkatrace", "app", [compute_launch])
        name, launches = read_trace(path)
        assert name == "app"
        assert launches[0].spec == compute_launch.spec

    def test_roundtrip_whole_workload(self):
        launches = get_workload("cutcp").build()
        _, restored = loads_trace(dumps_trace("cutcp", launches))
        assert [l.spec.signature() for l in restored] == [
            l.spec.signature() for l in launches
        ]


class TestValidation:
    def test_rejects_non_trace(self):
        with pytest.raises(WorkloadError):
            loads_trace("hello world\n")

    def test_rejects_wrong_version(self, compute_launch):
        text = dumps_trace("app", [compute_launch])
        bad = text.replace(
            f'"version": {TRACE_FORMAT_VERSION}', '"version": 999'
        )
        with pytest.raises(WorkloadError):
            loads_trace(bad)

    def test_rejects_truncated_document(self, compute_launch, memory_launch):
        text = dumps_trace("app", [compute_launch, memory_launch])
        truncated = "\n".join(text.splitlines()[:-1]) + "\n"
        with pytest.raises(WorkloadError):
            loads_trace(truncated)

    def test_rejects_malformed_record(self, compute_launch):
        text = dumps_trace("app", [compute_launch])
        lines = text.splitlines()
        lines[1] = '{"launch_id": 0}'
        with pytest.raises(WorkloadError):
            loads_trace("\n".join(lines))


class TestSizeEstimate:
    def test_scales_with_instructions(self, compute_spec):
        from repro.gpu import KernelLaunch

        small = KernelLaunch(spec=compute_spec, grid_blocks=10, launch_id=0)
        large = KernelLaunch(spec=compute_spec, grid_blocks=100, launch_id=1)
        assert estimated_trace_bytes(large) == pytest.approx(
            10.0 * estimated_trace_bytes(small)
        )

    def test_mlperf_full_trace_is_huge(self):
        spec = get_workload("mlperf_ssd_training")
        launches = spec.build()
        total = sum(estimated_trace_bytes(l) for l in launches) * spec.scale
        assert total > 1e12  # terabytes at paper scale
