"""Advanced engine behaviours: window overrides, stop edges, signal
determinism."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.gpu import KernelLaunch, VOLTA_V100
from repro.sim import Simulator, simulate_kernel
from repro.sim.perfmodel import KERNEL_LAUNCH_OVERHEAD


class TestWindowOverride:
    def test_window_size_changes_sampling_not_totals(self, compute_launch):
        narrow = simulate_kernel(
            compute_launch, VOLTA_V100, window_cycles=250.0, collect_series=True
        )
        wide = simulate_kernel(
            compute_launch, VOLTA_V100, window_cycles=2_000.0, collect_series=True
        )
        assert len(narrow.samples) > len(wide.samples)
        assert narrow.cycles == pytest.approx(wide.cycles, rel=1e-6)

    def test_simulator_run_kernel_window_override(self, compute_launch):
        simulator = Simulator(VOLTA_V100)
        result = simulator.run_kernel(
            compute_launch, collect_series=True, window_cycles=1_000.0
        )
        spacing = result.samples[1].cycle - result.samples[0].cycle
        assert spacing == pytest.approx(1_000.0)


class TestStopEdges:
    def test_stop_at_first_window(self, compute_launch):
        result = simulate_kernel(
            compute_launch, VOLTA_V100, monitor=lambda _sample: True
        )
        assert result.stopped_early
        assert result.cycles == pytest.approx(500.0)
        assert result.blocks_finished == 0

    def test_monitor_never_firing_completes(self, compute_launch):
        result = simulate_kernel(
            compute_launch, VOLTA_V100, monitor=lambda _sample: False
        )
        assert not result.stopped_early
        assert result.blocks_finished == compute_launch.grid_blocks

    def test_stop_preserves_partial_totals(self, compute_launch):
        full = simulate_kernel(compute_launch, VOLTA_V100)

        def halfway(sample):
            return sample.cycle >= full.cycles / 2

        partial = simulate_kernel(compute_launch, VOLTA_V100, monitor=halfway)
        assert 0 < partial.warp_instructions < full.warp_instructions
        assert 0 < partial.dram_bytes < full.dram_bytes


class TestSignalDeterminism:
    def test_observed_series_is_deterministic(self, irregular_spec):
        launch = KernelLaunch(spec=irregular_spec, grid_blocks=1_000, launch_id=0)
        first = simulate_kernel(launch, VOLTA_V100, collect_series=True)
        second = simulate_kernel(launch, VOLTA_V100, collect_series=True)
        assert [s.ipc for s in first.samples] == [s.ipc for s in second.samples]

    def test_noise_scales_with_irregularity(self, compute_spec):
        def tail_noise(cv):
            spec = dataclasses.replace(
                compute_spec, duration_cv=cv, name=f"noise_{cv}"
            )
            launch = KernelLaunch(spec=spec, grid_blocks=3_000, launch_id=0)
            result = simulate_kernel(launch, VOLTA_V100, collect_series=True)
            values = np.array([s.ipc for s in result.samples])
            tail = values[len(values) // 2 : -len(values) // 10]
            return float(tail.std() / tail.mean())

        assert tail_noise(0.6) > tail_noise(0.05)

    def test_wander_decays_over_the_run(self, compute_spec):
        """Early windows carry the warm-up wander; late windows are calm."""
        spec = dataclasses.replace(
            compute_spec,
            mix=compute_spec.mix.scaled(20.0),
            name="wander_probe",
        )
        launch = KernelLaunch(spec=spec, grid_blocks=600, launch_id=0)
        result = simulate_kernel(launch, VOLTA_V100, collect_series=True)
        values = np.array([s.ipc for s in result.samples])
        n = len(values)
        early = values[n // 20 : n // 5]
        # Compare against the settled middle; the drain tail re-adds
        # variance as blocks retire unevenly.
        middle = values[n // 3 : n // 2]
        early_spread = early.std() / early.mean()
        middle_spread = middle.std() / middle.mean()
        assert middle_spread < early_spread


class TestOverheadAccounting:
    def test_engine_excludes_launch_overhead(self, volta_simulator, compute_launch):
        """Launch overhead is an application-level charge, not engine time."""
        kernel = volta_simulator.run_kernel(compute_launch)
        app = volta_simulator.run_full("one", [compute_launch])
        assert app.total_cycles == pytest.approx(
            kernel.cycles + KERNEL_LAUNCH_OVERHEAD
        )
        assert app.simulated_cycles == pytest.approx(kernel.cycles)
