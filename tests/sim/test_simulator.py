"""Tests for repro.sim.simulator (the Accel-Sim stand-in)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.gpu import KernelLaunch, TURING_RTX2060, VOLTA_V100
from repro.sim import ModelErrorConfig, Simulator
from repro.sim.perfmodel import KERNEL_LAUNCH_OVERHEAD


class TestKernelBias:
    def test_deterministic_per_spec(self, compute_launch):
        sim_a = Simulator(VOLTA_V100)
        sim_b = Simulator(VOLTA_V100)
        assert sim_a.kernel_bias(compute_launch) == sim_b.kernel_bias(compute_launch)

    def test_independent_of_gpu(self, compute_launch):
        volta = Simulator(VOLTA_V100).kernel_bias(compute_launch)
        turing = Simulator(TURING_RTX2060).kernel_bias(compute_launch)
        assert volta == turing

    def test_disabled_is_exact(self, faithful_simulator, compute_launch):
        assert faithful_simulator.kernel_bias(compute_launch) == 1.0

    def test_behaviourally_similar_specs_share_bias(self, compute_spec):
        """Same bucket (nearly identical behaviour) => nearly equal bias."""
        sim = Simulator(VOLTA_V100)
        sibling = dataclasses.replace(compute_spec, name="renamed_sibling")
        launch_a = KernelLaunch(spec=compute_spec, grid_blocks=10, launch_id=0)
        launch_b = KernelLaunch(spec=sibling, grid_blocks=10, launch_id=1)
        bias_a = sim.kernel_bias(launch_a)
        bias_b = sim.kernel_bias(launch_b)
        assert bias_b / bias_a == pytest.approx(1.0, rel=0.25)

    def test_different_behaviours_usually_differ(
        self, compute_launch, memory_launch
    ):
        sim = Simulator(VOLTA_V100)
        assert sim.kernel_bias(compute_launch) != sim.kernel_bias(memory_launch)

    def test_biases_centered_near_one(self, harness):
        """Across the corpus, the bias distribution stays loosely centred."""
        import numpy as np

        sim = Simulator(VOLTA_V100)
        biases = []
        seen = set()
        from repro.workloads import iter_workloads

        for spec in list(iter_workloads())[:40]:
            for launch in spec.build()[:5]:
                sig = launch.spec.signature()
                if sig in seen:
                    continue
                seen.add(sig)
                biases.append(sim.kernel_bias(launch))
        log_mean = float(np.mean(np.log(biases)))
        assert abs(log_mean) < 0.5

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ModelErrorConfig(sigma_min=-0.1)
        with pytest.raises(ConfigurationError):
            ModelErrorConfig(sigma_min=0.5, sigma_max=0.1)
        with pytest.raises(ConfigurationError):
            ModelErrorConfig(spec_sigma=-1.0)


class TestRunKernel:
    def test_full_runs_memoized(self, volta_simulator, compute_launch):
        first = volta_simulator.run_kernel(compute_launch)
        second = volta_simulator.run_kernel(compute_launch)
        assert first is second

    def test_monitored_runs_not_memoized(self, volta_simulator, compute_launch):
        def never_stop(_sample):
            return False

        first = volta_simulator.run_kernel(compute_launch, monitor=never_stop)
        second = volta_simulator.run_kernel(compute_launch, monitor=never_stop)
        assert first is not second

    def test_bias_applied(self, compute_launch):
        biased = Simulator(VOLTA_V100)
        faithful = Simulator(VOLTA_V100, model_error=ModelErrorConfig(enabled=False))
        ratio = (
            biased.run_kernel(compute_launch).cycles
            / faithful.run_kernel(compute_launch).cycles
        )
        assert ratio == pytest.approx(biased.kernel_bias(compute_launch), rel=1e-9)


class TestRunFull:
    def test_faithful_full_sim_matches_silicon(
        self, faithful_simulator, volta_silicon, compute_launch, memory_launch
    ):
        launches = [compute_launch, memory_launch]
        sim = faithful_simulator.run_full("app", launches)
        silicon = volta_silicon.run("app", launches)
        # Silicon prices kernels with the linear analytic model; the
        # engine's static interleaved schedule additionally pays the
        # tail-wave quantization (worst near small partial waves, ~+11%
        # on these grid-2000 fixtures), so faithful agreement is bounded
        # a little looser than the pure throughput comparison.
        assert sim.total_cycles == pytest.approx(silicon.total_cycles, rel=0.15)

    def test_simulated_cycles_exclude_overheads(
        self, faithful_simulator, compute_launch
    ):
        result = faithful_simulator.run_full("app", [compute_launch])
        assert result.total_cycles == pytest.approx(
            result.simulated_cycles + KERNEL_LAUNCH_OVERHEAD
        )

    def test_budget_truncates(self, volta_simulator, compute_launch, memory_launch):
        launches = [compute_launch, memory_launch]
        complete = volta_simulator.run_full("app", launches)
        truncated = volta_simulator.run_full(
            "app", launches, max_simulated_cycles=1.0
        )
        assert truncated.simulated_cycles < complete.simulated_cycles
        assert truncated.total_cycles < complete.total_cycles

    def test_keep_records(self, volta_simulator, compute_launch):
        result = volta_simulator.run_full(
            "app", [compute_launch], keep_records=True
        )
        (record,) = result.kernel_records
        assert record.simulated_cycles == record.cycles
        assert not record.projected
