"""The parallel execution backend: bit-identical to serial, by construction.

The process pool's deterministic reduce (results gathered in submission
order, accumulated by the unchanged serial loop) is what lets every other
layer offer ``backend="auto"`` without a correctness caveat; these tests
pin that property over random seeded workloads, worker-count sweeps and
failure paths.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, TaskTimeoutError, WorkerCrashError
from repro.gpu import InstructionMix, KernelLaunch, KernelSpec, VOLTA_V100
from repro.sim import SiliconExecutor, Simulator
from repro.sim.parallel import (
    ExecutionBackend,
    FaultPolicy,
    ProcessPoolBackend,
    SerialBackend,
    auto_worker_count,
    chunked,
    resolve_backend,
)

WORKER_SWEEP = sorted({1, 2, auto_worker_count()})


def _doubler(item: int) -> int:
    return item * 2


def _explode(item: int) -> int:
    if item % 3 == 0:
        raise ValueError(f"boom {item}")
    return item * 2


# -- resolve_backend ---------------------------------------------------------


def test_resolve_defaults_to_serial():
    for spec in (None, "", "serial", 1, "1"):
        assert isinstance(resolve_backend(spec), SerialBackend)


def test_resolve_auto_uses_cpu_count():
    for spec in ("auto", "process", "process-pool", 0):
        backend = resolve_backend(spec)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.jobs == auto_worker_count()


def test_resolve_worker_counts():
    assert resolve_backend(3).jobs == 3
    assert resolve_backend("4").jobs == 4
    assert isinstance(resolve_backend("4"), ProcessPoolBackend)


def test_resolve_passes_instances_through():
    backend = ProcessPoolBackend(2)
    assert resolve_backend(backend) is backend
    serial = SerialBackend()
    assert resolve_backend(serial) is serial


def test_resolve_rejects_garbage():
    with pytest.raises(ConfigurationError):
        resolve_backend("turbo")
    with pytest.raises(ConfigurationError):
        resolve_backend(-1)
    with pytest.raises(ConfigurationError):
        resolve_backend(3.5)  # type: ignore[arg-type]


def test_backends_satisfy_protocol():
    assert isinstance(SerialBackend(), ExecutionBackend)
    assert isinstance(ProcessPoolBackend(2), ExecutionBackend)


# -- chunked -----------------------------------------------------------------


@given(st.lists(st.integers(), max_size=50), st.integers(1, 12))
@settings(max_examples=60, deadline=None)
def test_chunked_partitions_in_order(items, n_chunks):
    chunks = chunked(items, n_chunks)
    assert [x for chunk in chunks for x in chunk] == items
    assert len(chunks) <= n_chunks
    if items:
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert all(sizes)


# -- map_tasks ---------------------------------------------------------------


@pytest.mark.parametrize("jobs", WORKER_SWEEP)
def test_map_tasks_preserves_order(jobs):
    items = list(range(23))
    backend = resolve_backend(jobs)
    assert backend.map_tasks(_doubler, items) == [x * 2 for x in items]


def test_map_tasks_empty_and_singleton():
    backend = ProcessPoolBackend(2)
    assert backend.map_tasks(_doubler, []) == []
    assert backend.map_tasks(_doubler, [21]) == [42]


def test_worker_exception_propagates_with_type_and_message():
    backend = ProcessPoolBackend(2)
    with pytest.raises(ValueError, match="boom 3"):
        backend.map_tasks(_explode, [1, 2, 3, 4])


def test_earliest_failure_wins_regardless_of_scheduling():
    """With several failing tasks the earliest-submitted one is reported,
    so the error a user sees does not depend on pool scheduling."""
    backend = ProcessPoolBackend(2)
    for _ in range(3):
        with pytest.raises(ValueError, match="boom 3"):
            backend.map_tasks(_explode, [1, 3, 6, 9, 12])


def test_serial_backend_raises_inline():
    with pytest.raises(ValueError, match="boom 3"):
        SerialBackend().map_tasks(_explode, [3, 1])


# -- run_tasks edge cases ----------------------------------------------------


@pytest.mark.parametrize("jobs", WORKER_SWEEP)
def test_run_tasks_empty_list(jobs):
    assert resolve_backend(jobs).run_tasks(_doubler, []) == []


@pytest.mark.parametrize("jobs", WORKER_SWEEP)
def test_run_tasks_single_task_runs_inline(jobs):
    (outcome,) = resolve_backend(jobs).run_tasks(_doubler, [21])
    assert outcome.ok
    assert outcome.index == 0
    assert outcome.value == 42


def test_intra_sharding_with_more_workers_than_blocks():
    """A one-block grid has one fold chunk: a 7-worker intra backend must
    fall back to the serial fold (no pool, no empty shards) and agree."""
    from repro.sim import simulate_kernel

    spec = KernelSpec(
        name="edge_single_block",
        threads_per_block=128,
        mix=InstructionMix(fp_ops=120.0, global_loads=8.0, control_ops=6.0),
        duration_cv=0.2,
    )
    launch = KernelLaunch(spec=spec, grid_blocks=1, launch_id=0)
    serial = simulate_kernel(launch, VOLTA_V100)
    sharded = simulate_kernel(launch, VOLTA_V100, intra=ProcessPoolBackend(7))
    assert sharded == serial


# -- typed errors at the backend boundary ------------------------------------


def _exit_on_7(item: int) -> int:
    if item == 7:
        os._exit(73)
    return item * 2


def _sleep_on_2(item: int) -> int:
    if item == 2:
        import time

        time.sleep(5.0)
    return item * 2


@pytest.mark.faults
def test_dead_worker_surfaces_as_crash_error_naming_the_task():
    """A worker taken down mid-task must not leak the stdlib's
    BrokenProcessPool: ``map_tasks`` re-raises it as WorkerCrashError
    carrying the identity of the task that killed the pool."""
    backend = ProcessPoolBackend(2)
    with pytest.raises(WorkerCrashError) as info:
        backend.map_tasks(_exit_on_7, [1, 3, 7, 9, 11, 13])
    assert info.value.task_index == 2  # position of item 7
    assert "task 2" in str(info.value)


@pytest.mark.faults
def test_hung_worker_surfaces_as_timeout_error():
    backend = ProcessPoolBackend(2)
    policy = FaultPolicy(max_retries=0, timeout_seconds=0.3)
    with pytest.raises(TaskTimeoutError) as info:
        backend.run_tasks(_sleep_on_2, [0, 1, 2, 3], policy=policy, strict=True)
    assert info.value.task_index == 2


@pytest.mark.faults
def test_run_tasks_partial_results_keep_completed_work():
    """Non-strict ``run_tasks`` returns structured failures in-slot and
    every other task's value — nothing completed is discarded."""
    backend = ProcessPoolBackend(2)
    outcomes = backend.run_tasks(_explode, [1, 3, 4, 6, 8])
    assert [o.ok for o in outcomes] == [True, False, True, False, True]
    assert [o.value for o in outcomes if o.ok] == [2, 8, 16]
    for outcome in outcomes:
        if not outcome.ok:
            assert outcome.failure.kind == "exception"
            assert outcome.failure.error_type == "ValueError"
            assert "boom" in outcome.failure.message


def _exit_mid_shard(payload):
    """A block-shard worker task that dies mid-shard, as OOM kills do."""
    os._exit(73)


_BIG_SHARD_SPEC = KernelSpec(
    name="crash_shard_kernel",
    threads_per_block=256,
    mix=InstructionMix(fp_ops=60.0, global_loads=24.0, control_ops=5.0),
    l2_locality=0.2,
    working_set_bytes=256e6,
    duration_cv=0.3,
)


@pytest.mark.faults
def test_worker_crash_mid_shard_is_typed_not_partial(monkeypatch):
    """A worker dying mid-shard must surface as WorkerCrashError — never
    as a recombination of the surviving shards' partial sums."""
    import repro.sim.parallel as parallel
    from repro.sim import simulate_kernel

    monkeypatch.setattr(parallel, "block_shard_task", _exit_mid_shard)
    launch = KernelLaunch(spec=_BIG_SHARD_SPEC, grid_blocks=150_000, launch_id=0)
    with pytest.raises(WorkerCrashError):
        simulate_kernel(launch, VOLTA_V100, intra=ProcessPoolBackend(2))


@pytest.mark.faults
def test_worker_crash_mid_shard_quarantines_cell_as_typed_failure(monkeypatch):
    """At the harness level the same mid-shard crash recombines into a
    typed CellFailure (kind="crash") in the cell's slot — the sweep
    neither aborts nor records a partial result for the cell."""
    import repro.sim.parallel as parallel
    from repro.analysis import CellFailure, EvaluationHarness
    from repro.workloads.spec import WorkloadSpec, _REGISTRY, get_workload, register

    def _build():
        return [
            KernelLaunch(spec=_BIG_SHARD_SPEC, grid_blocks=150_000, launch_id=0)
        ]

    get_workload("fdtd2d")  # force the registry load before registering
    register(WorkloadSpec("crash_shard_app", "synthetic", _build))
    try:
        monkeypatch.setattr(parallel, "block_shard_task", _exit_mid_shard)
        harness = EvaluationHarness(
            intra_jobs=2,
            fault_policy=FaultPolicy(max_retries=0, backoff_base_seconds=0.0),
        )
        (result,) = harness.evaluate_cells([("crash_shard_app", "full_sim", None)])
        assert isinstance(result, CellFailure)
        assert result.kind == "crash"
        assert result.error_type == "WorkerCrashError"
        assert result.workload == "crash_shard_app"
    finally:
        _REGISTRY.pop("crash_shard_app", None)


# -- parallel == serial on simulated workloads -------------------------------


@st.composite
def seeded_launches(draw):
    """A short seeded workload: few distinct kernels, repeated launches."""
    n_specs = draw(st.integers(1, 4))
    specs = []
    for index in range(n_specs):
        mix = InstructionMix(
            fp_ops=draw(st.floats(1.0, 2e3)),
            int_ops=draw(st.floats(0.0, 500.0)),
            global_loads=draw(st.floats(0.0, 80.0)),
            global_stores=draw(st.floats(0.0, 40.0)),
            shared_loads=draw(st.floats(0.0, 200.0)),
            control_ops=draw(st.floats(0.1, 50.0)),
        )
        specs.append(
            KernelSpec(
                name=f"prop_kernel_{index}",
                threads_per_block=draw(st.sampled_from([64, 128, 256, 512])),
                mix=mix,
                l2_locality=draw(st.floats(0.0, 1.0)),
                working_set_bytes=draw(st.floats(1e4, 1e9)),
                duration_cv=draw(st.floats(0.0, 0.5)),
                divergence_efficiency=draw(st.floats(0.3, 1.0)),
            )
        )
    launches = []
    for launch_id in range(draw(st.integers(1, 10))):
        spec = draw(st.sampled_from(specs))
        launches.append(
            KernelLaunch(
                spec=spec,
                grid_blocks=draw(st.sampled_from([80, 160, 1_000, 4_000])),
                launch_id=launch_id,
            )
        )
    return launches


@given(seeded_launches())
@settings(max_examples=10, deadline=None)
def test_parallel_full_sim_equals_serial(launches):
    serial = Simulator(VOLTA_V100).run_full("prop_app", launches, keep_records=True)
    pooled = Simulator(VOLTA_V100, backend=ProcessPoolBackend(2)).run_full(
        "prop_app", launches, keep_records=True
    )
    assert pooled == serial  # dataclass equality: exact floats, all fields


@given(seeded_launches())
@settings(max_examples=10, deadline=None)
def test_parallel_silicon_equals_serial(launches):
    serial = SiliconExecutor(VOLTA_V100).run("prop_app", launches, keep_records=True)
    pooled = SiliconExecutor(
        VOLTA_V100, backend=ProcessPoolBackend(2)
    ).run("prop_app", launches, keep_records=True)
    assert pooled == serial


@pytest.mark.parametrize("jobs", WORKER_SWEEP)
def test_worker_sweep_on_corpus_workload(jobs):
    """Every worker count produces the same AppRunResult on a real
    corpus workload (distinct kernels, repeated launches, NVTX tags)."""
    from repro.workloads import get_workload

    launches = get_workload("fdtd2d").build("volta")
    reference = Simulator(VOLTA_V100).run_full("fdtd2d", launches)
    candidate = Simulator(VOLTA_V100, backend=jobs).run_full("fdtd2d", launches)
    assert candidate == reference


def test_budgeted_run_forces_serial_path():
    """A simulation budget depends on prior results, so the parallel
    prefetch must not run (and results must still match serial)."""
    from repro.workloads import get_workload

    launches = get_workload("fdtd2d").build("volta")
    serial = Simulator(VOLTA_V100).run_full(
        "fdtd2d", launches, max_simulated_cycles=1e5
    )
    pooled = Simulator(VOLTA_V100, backend=ProcessPoolBackend(2)).run_full(
        "fdtd2d", launches, max_simulated_cycles=1e5
    )
    assert pooled == serial


def test_prefetch_fills_the_same_memo_table():
    """Parallel prefetch lands in ``_full_run_cache`` exactly where the
    serial path would have put each result."""
    from repro.workloads import get_workload

    launches = get_workload("cutcp").build("volta")
    serial_sim = Simulator(VOLTA_V100)
    serial_sim.run_full("cutcp", launches)
    pooled_sim = Simulator(VOLTA_V100, backend=ProcessPoolBackend(2))
    pooled_sim.run_full("cutcp", launches)
    assert pooled_sim._full_run_cache.keys() == serial_sim._full_run_cache.keys()
    for key, result in serial_sim._full_run_cache.items():
        assert pooled_sim._full_run_cache[key] == result


# -- harness cell dispatch ---------------------------------------------------


def test_evaluate_cells_parallel_equals_serial():
    from repro.analysis import EvaluationHarness

    cells = [
        ("fdtd2d", "silicon", None),
        ("fdtd2d", "pka_sim", None),
        ("cutcp", "silicon", "turing"),
    ]
    serial = EvaluationHarness().evaluate_cells(cells)
    pooled = EvaluationHarness(backend=ProcessPoolBackend(2)).evaluate_cells(cells)
    assert pooled == serial
    assert all(result is not None for result in serial)


def test_evaluate_cells_populates_local_memo():
    from repro.analysis import EvaluationHarness

    harness = EvaluationHarness(backend=ProcessPoolBackend(2))
    (run,) = harness.evaluate_cells([("fdtd2d", "pka_sim", None)])
    # Subsequent accessor calls must hit the in-memory memo, not recompute.
    assert harness.evaluation("fdtd2d").pka_sim() is run


def test_auto_worker_count_positive():
    assert auto_worker_count() >= 1
    assert auto_worker_count() >= (os.cpu_count() or 1)
