"""Property: the DES engine and the analytic silicon model stay coherent.

Silicon truth is the closed form; the simulator is the DES.  Their
agreement (for bias = 1) is what separates *sampling* error from
*modeling* error throughout the evaluation, so it must hold for arbitrary
kernels, not only the corpus.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import InstructionMix, KernelLaunch, KernelSpec, VOLTA_V100
from repro.sim import analytic_kernel_cycles, simulate_kernel


@st.composite
def regular_launch(draw):
    """A regular kernel (small duration_cv) with an arbitrary profile."""
    mix = InstructionMix(
        fp_ops=draw(st.floats(10.0, 5_000.0)),
        int_ops=draw(st.floats(0.0, 1_000.0)),
        global_loads=draw(st.floats(0.0, 500.0)),
        global_stores=draw(st.floats(0.0, 200.0)),
        shared_loads=draw(st.floats(0.0, 500.0)),
        control_ops=draw(st.floats(1.0, 100.0)),
    )
    spec = KernelSpec(
        name=f"consistency_{draw(st.integers(0, 10**6))}",
        threads_per_block=draw(st.sampled_from([64, 128, 256, 512])),
        mix=mix,
        l2_locality=draw(st.floats(0.0, 1.0)),
        working_set_bytes=draw(st.floats(1e5, 1e9)),
        duration_cv=draw(st.floats(0.0, 0.15)),
        phase_drift=draw(st.floats(0.0, 0.5)),
        cold_start_factor=draw(st.floats(0.0, 0.4)),
    )
    return KernelLaunch(
        spec=spec,
        grid_blocks=draw(st.integers(1, 8_000)),
        launch_id=0,
    )


@given(regular_launch())
@settings(max_examples=60, deadline=None)
def test_des_matches_analytic_for_regular_kernels(launch):
    analytic = analytic_kernel_cycles(launch, VOLTA_V100)
    simulated = simulate_kernel(launch, VOLTA_V100).cycles
    # Sub-wave launches (fewer blocks than SMs) are dominated by tail
    # effects the closed form only approximates; a single block can
    # diverge by ~40%.  At one full wave or more the models track
    # closely (worst observed ~20%).
    tolerance = 0.35 if launch.grid_blocks >= VOLTA_V100.num_sms else 0.5
    assert simulated == pytest_approx(analytic, rel=tolerance)


@given(regular_launch(), st.floats(0.2, 5.0))
@settings(max_examples=40, deadline=None)
def test_bias_is_exactly_multiplicative(launch, bias):
    base = simulate_kernel(launch, VOLTA_V100, bias=1.0).cycles
    scaled = simulate_kernel(launch, VOLTA_V100, bias=bias).cycles
    assert scaled == pytest_approx(base * bias, rel=1e-6)


@given(regular_launch())
@settings(max_examples=40, deadline=None)
def test_windowed_and_fast_paths_agree(launch):
    fast = simulate_kernel(launch, VOLTA_V100)
    windowed = simulate_kernel(launch, VOLTA_V100, collect_series=True)
    assert windowed.cycles == pytest_approx(fast.cycles, rel=1e-6)
    assert windowed.blocks_finished == fast.blocks_finished


def pytest_approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)
