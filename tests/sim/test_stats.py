"""Tests for repro.sim.stats containers."""

from __future__ import annotations

import pytest

from repro.gpu import VOLTA_V100
from repro.sim import AppRunResult, KernelRecord


def _result(**overrides) -> AppRunResult:
    defaults = dict(
        workload="app",
        gpu=VOLTA_V100,
        method="full_sim",
        total_cycles=1e6,
        total_instructions=5e7,
        total_dram_bytes=1e8,
        simulated_cycles=1e6,
    )
    defaults.update(overrides)
    return AppRunResult(**defaults)


class TestAppRunResult:
    def test_ipc(self):
        assert _result().ipc == pytest.approx(50.0)

    def test_ipc_zero_cycles(self):
        assert _result(total_cycles=0.0).ipc == 0.0

    def test_dram_util_percent(self):
        result = _result()
        expected = 100.0 * (1e8 / 1e6) / VOLTA_V100.dram_bytes_per_cycle
        assert result.dram_util_percent == pytest.approx(expected)

    def test_dram_util_capped_at_100(self):
        result = _result(total_dram_bytes=1e15)
        assert result.dram_util_percent == 100.0

    def test_silicon_seconds(self):
        result = _result(total_cycles=VOLTA_V100.core_clock_ghz * 1e9)
        assert result.silicon_seconds == pytest.approx(1.0)

    def test_sim_wall_hours(self):
        result = _result(simulated_cycles=VOLTA_V100.sim_cycles_per_second * 3600)
        assert result.sim_wall_hours == pytest.approx(1.0)

    def test_records_default_empty(self):
        assert _result().kernel_records == ()


class TestKernelRecord:
    def test_fields(self):
        record = KernelRecord(
            launch_id=3,
            name="k",
            cycles=100.0,
            instructions=5_000.0,
            dram_bytes=64.0,
            simulated_cycles=50.0,
            projected=True,
        )
        assert record.launch_id == 3
        assert record.projected
        assert record.simulated_cycles < record.cycles
