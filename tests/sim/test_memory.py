"""Tests for repro.sim.memory."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import InstructionMix, KernelSpec, TURING_RTX2060, VOLTA_V100
from repro.sim.memory import SECTOR_BYTES, build_memory_profile, l2_hit_rate


def _spec(**overrides) -> KernelSpec:
    defaults = dict(
        name="mem",
        threads_per_block=256,
        mix=InstructionMix(fp_ops=10.0, global_loads=16.0, global_stores=8.0),
        l2_locality=0.5,
        working_set_bytes=6 * 1024 * 1024,  # exactly V100 L2
        sectors_per_global_access=4.0,
    )
    defaults.update(overrides)
    return KernelSpec(**defaults)


class TestL2HitRate:
    def test_fitting_working_set_gives_full_locality(self):
        assert l2_hit_rate(_spec(), VOLTA_V100) == pytest.approx(0.5)

    def test_oversized_working_set_degrades(self):
        big = _spec(working_set_bytes=24 * 1024 * 1024)
        assert l2_hit_rate(big, VOLTA_V100) == pytest.approx(0.5 * 0.5)  # sqrt(1/4)

    def test_smaller_l2_hits_less(self):
        spec = _spec(working_set_bytes=24 * 1024 * 1024)
        assert l2_hit_rate(spec, TURING_RTX2060) < l2_hit_rate(spec, VOLTA_V100)

    def test_zero_locality_never_hits(self):
        assert l2_hit_rate(_spec(l2_locality=0.0), VOLTA_V100) == 0.0

    @given(
        locality=st.floats(0.0, 1.0),
        working_set=st.floats(1e3, 1e12),
    )
    @settings(max_examples=60, deadline=None)
    def test_hit_rate_bounded(self, locality, working_set):
        spec = _spec(l2_locality=locality, working_set_bytes=working_set)
        hit = l2_hit_rate(spec, VOLTA_V100)
        assert 0.0 <= hit <= locality + 1e-12


class TestMemoryProfile:
    def test_sector_accounting(self):
        spec = _spec(l2_locality=0.0)
        profile = build_memory_profile(spec, VOLTA_V100)
        warp_accesses = 256 * (16 + 8) / 32
        assert profile.l2_sectors_per_block == pytest.approx(warp_accesses * 4.0)
        assert profile.dram_bytes_per_block == pytest.approx(
            warp_accesses * 4.0 * SECTOR_BYTES
        )

    def test_hits_filter_dram_traffic(self):
        cold = build_memory_profile(_spec(l2_locality=0.0), VOLTA_V100)
        warm = build_memory_profile(_spec(l2_locality=0.8), VOLTA_V100)
        assert warm.dram_bytes_per_block == pytest.approx(
            cold.dram_bytes_per_block * 0.2
        )

    def test_uncoalesced_access_multiplies_traffic(self):
        coalesced = build_memory_profile(
            _spec(sectors_per_global_access=4.0, l2_locality=0.0), VOLTA_V100
        )
        scattered = build_memory_profile(
            _spec(sectors_per_global_access=32.0, l2_locality=0.0), VOLTA_V100
        )
        assert scattered.dram_bytes_per_block == pytest.approx(
            8.0 * coalesced.dram_bytes_per_block
        )

    def test_atomics_bypass_locality(self):
        mix = InstructionMix(fp_ops=10.0, global_atomics=4.0)
        spec = _spec(mix=mix, l2_locality=1.0, working_set_bytes=1024.0)
        profile = build_memory_profile(spec, VOLTA_V100)
        assert profile.dram_bytes_per_block > 0

    def test_local_loads_coalesce_perfectly(self):
        mix = InstructionMix(fp_ops=10.0, local_loads=16.0)
        spec = _spec(mix=mix, l2_locality=0.0, sectors_per_global_access=32.0)
        profile = build_memory_profile(spec, VOLTA_V100)
        warp_accesses = 256 * 16 / 32
        assert profile.l2_sectors_per_block == pytest.approx(warp_accesses)

    def test_pure_compute_kernel_has_no_traffic(self):
        spec = _spec(mix=InstructionMix(fp_ops=100.0))
        profile = build_memory_profile(spec, VOLTA_V100)
        assert profile.dram_bytes_per_block == 0.0
        assert profile.l2_sectors_per_block == 0.0
