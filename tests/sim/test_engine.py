"""Tests for repro.sim.engine (the discrete-event kernel simulator)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.gpu import InstructionMix, KernelLaunch, KernelSpec, VOLTA_V100
from repro.sim import analytic_kernel_cycles, analyze_kernel, simulate_kernel
from repro.sim.engine import block_durations


def _launch(spec: KernelSpec, grid: int = 2_000, launch_id: int = 0) -> KernelLaunch:
    return KernelLaunch(spec=spec, grid_blocks=grid, launch_id=launch_id)


class TestBlockDurations:
    def test_deterministic(self, compute_spec):
        launch = _launch(compute_spec)
        perf = analyze_kernel(launch, VOLTA_V100)
        assert np.array_equal(
            block_durations(launch, perf), block_durations(launch, perf)
        )

    def test_bias_scales_all_durations(self, compute_spec):
        launch = _launch(compute_spec)
        perf = analyze_kernel(launch, VOLTA_V100)
        base = block_durations(launch, perf, bias=1.0)
        doubled = block_durations(launch, perf, bias=2.0)
        assert np.allclose(doubled, 2.0 * base)

    def test_cold_start_slows_first_wave(self, compute_spec):
        launch = _launch(compute_spec)
        perf = analyze_kernel(launch, VOLTA_V100)
        durations = block_durations(launch, perf)
        wave = perf.occupancy.wave_size
        assert durations[:wave].mean() > durations[wave:].mean()

    def test_zero_cv_durations_equal_within_regions(self, compute_spec):
        spec = dataclasses.replace(compute_spec, duration_cv=0.0)
        launch = _launch(spec)
        perf = analyze_kernel(launch, VOLTA_V100)
        durations = block_durations(launch, perf)
        wave = perf.occupancy.wave_size
        assert np.allclose(durations[wave:], durations[wave])

    def test_mean_variation_near_one(self, compute_spec):
        spec = dataclasses.replace(
            compute_spec, duration_cv=0.5, cold_start_factor=0.0
        )
        launch = _launch(spec, grid=20_000)
        perf = analyze_kernel(launch, VOLTA_V100)
        durations = block_durations(launch, perf)
        assert durations.mean() == pytest.approx(perf.base_block_cycles, rel=0.05)


class TestFastPath:
    def test_matches_analytic_for_regular_kernel(self, compute_spec):
        # The analytic model is linear in the grid, while the engine's
        # static interleaved schedule pays a full extra block duration on
        # the slots that receive the tail wave (no work stealing).  The
        # mismatch peaks at low wave counts with a small remainder —
        # grid 2000 on a 640-slot wave is near the worst case (~+10%) —
        # and vanishes for large grids.
        launch = _launch(compute_spec)
        result = simulate_kernel(launch, VOLTA_V100)
        analytic = analytic_kernel_cycles(launch, VOLTA_V100)
        assert result.cycles == pytest.approx(analytic, rel=0.15)

    def test_matches_analytic_closely_for_many_wave_kernel(self, compute_spec):
        """With many waves the tail-wave quantization amortizes away and
        the schedule tracks the analytic throughput model tightly."""
        launch = _launch(compute_spec, grid=20_000)
        result = simulate_kernel(launch, VOLTA_V100)
        analytic = analytic_kernel_cycles(launch, VOLTA_V100)
        assert result.cycles == pytest.approx(analytic, rel=0.05)

    def test_matches_analytic_for_irregular_sub_wave(self, irregular_spec):
        launch = _launch(irregular_spec, grid=256)
        result = simulate_kernel(launch, VOLTA_V100)
        analytic = analytic_kernel_cycles(launch, VOLTA_V100)
        assert result.cycles == pytest.approx(analytic, rel=0.6)

    def test_counts_all_work(self, compute_spec):
        launch = _launch(compute_spec)
        result = simulate_kernel(launch, VOLTA_V100)
        assert result.blocks_finished == launch.grid_blocks
        assert result.warp_instructions == pytest.approx(launch.warp_instructions)
        assert not result.stopped_early

    def test_bias_scales_cycles(self, compute_spec):
        launch = _launch(compute_spec)
        base = simulate_kernel(launch, VOLTA_V100, bias=1.0)
        stretched = simulate_kernel(launch, VOLTA_V100, bias=1.7)
        assert stretched.cycles == pytest.approx(1.7 * base.cycles, rel=1e-9)

    def test_invalid_bias_rejected(self, compute_launch):
        with pytest.raises(SimulationError):
            simulate_kernel(compute_launch, VOLTA_V100, bias=0.0)

    def test_invalid_window_rejected(self, compute_launch):
        with pytest.raises(SimulationError):
            simulate_kernel(compute_launch, VOLTA_V100, window_cycles=0.0)


class TestWindowedPath:
    def test_totals_match_fast_path(self, compute_spec):
        launch = _launch(compute_spec)
        fast = simulate_kernel(launch, VOLTA_V100)
        windowed = simulate_kernel(launch, VOLTA_V100, collect_series=True)
        assert windowed.cycles == pytest.approx(fast.cycles, rel=1e-6)
        assert windowed.blocks_finished == fast.blocks_finished
        assert windowed.warp_instructions == pytest.approx(
            fast.warp_instructions, rel=1e-6
        )

    def test_series_covers_run(self, compute_spec):
        launch = _launch(compute_spec)
        result = simulate_kernel(launch, VOLTA_V100, collect_series=True)
        assert len(result.samples) > 10
        cycles = [sample.cycle for sample in result.samples]
        assert cycles == sorted(cycles)
        assert cycles[-1] <= result.cycles + 1e-6

    def test_blocks_finished_monotone(self, compute_spec):
        launch = _launch(compute_spec)
        result = simulate_kernel(launch, VOLTA_V100, collect_series=True)
        finished = [sample.blocks_finished for sample in result.samples]
        assert finished == sorted(finished)

    def test_ipc_ramp_up_visible(self, compute_spec):
        """Cold first wave -> later windows retire faster than early ones."""
        launch = _launch(compute_spec, grid=5_000)
        result = simulate_kernel(launch, VOLTA_V100, collect_series=True)
        n = len(result.samples)
        early = np.mean([s.ipc for s in result.samples[: n // 10]])
        middle = np.mean([s.ipc for s in result.samples[n // 2 : n // 2 + n // 10]])
        assert middle > early

    def test_irregular_signal_noisier_than_regular(
        self, compute_spec, irregular_spec
    ):
        def mid_rel_std(spec, grid):
            result = simulate_kernel(
                _launch(spec, grid), VOLTA_V100, collect_series=True
            )
            values = np.array([s.ipc for s in result.samples])
            mid = values[len(values) // 4 : -len(values) // 4]
            return mid.std() / mid.mean()

        assert mid_rel_std(irregular_spec, 2_000) > 2.0 * mid_rel_std(
            compute_spec, 2_000
        )

    def test_monitor_stops_simulation(self, compute_spec):
        launch = _launch(compute_spec)
        full = simulate_kernel(launch, VOLTA_V100)

        def stop_after_ten(sample):
            return sample.cycle >= 5_000

        stopped = simulate_kernel(launch, VOLTA_V100, monitor=stop_after_ten)
        assert stopped.stopped_early
        assert stopped.cycles == pytest.approx(5_000)
        assert stopped.cycles < full.cycles
        assert stopped.blocks_finished < launch.grid_blocks

    def test_monitor_object_protocol(self, compute_spec):
        class Monitor:
            def __init__(self):
                self.seen = 0

            def observe(self, sample):
                self.seen += 1
                return self.seen >= 3

        monitor = Monitor()
        result = simulate_kernel(
            _launch(compute_spec), VOLTA_V100, monitor=monitor
        )
        assert monitor.seen == 3
        assert result.stopped_early

    def test_dram_util_bounded(self, memory_spec):
        result = simulate_kernel(
            _launch(memory_spec), VOLTA_V100, collect_series=True
        )
        for sample in result.samples:
            assert 0.0 <= sample.dram_util <= 100.0
            assert 0.0 <= sample.l2_miss_rate <= 100.0

    def test_memory_bound_kernel_saturates_dram(self, memory_spec):
        result = simulate_kernel(
            _launch(memory_spec), VOLTA_V100, collect_series=True
        )
        n = len(result.samples)
        mid = [s.dram_util for s in result.samples[n // 4 : 3 * n // 4]]
        assert np.mean(mid) > 80.0


@given(grid=st.integers(1, 3_000), seed=st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_engine_invariants(grid, seed):
    """For any grid: everything retires, IPC positive, cycles positive."""
    mix = InstructionMix(fp_ops=50.0, global_loads=8.0)
    spec = KernelSpec(
        name=f"prop_{seed}",
        threads_per_block=128,
        mix=mix,
        duration_cv=0.2,
    )
    launch = KernelLaunch(spec=spec, grid_blocks=grid, launch_id=0)
    result = simulate_kernel(launch, VOLTA_V100)
    assert result.blocks_finished == grid
    assert result.cycles > 0
    assert result.ipc > 0
    assert result.warp_instructions == pytest.approx(launch.warp_instructions)
