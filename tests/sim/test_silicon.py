"""Tests for repro.sim.silicon."""

from __future__ import annotations

import pytest

from repro.gpu import KernelLaunch, TURING_RTX2060, VOLTA_V100
from repro.sim import SiliconExecutor, analytic_kernel_cycles
from repro.sim.perfmodel import KERNEL_LAUNCH_OVERHEAD


class TestSiliconExecutor:
    def test_kernel_cycles_match_analytic(self, volta_silicon, compute_launch):
        assert volta_silicon.kernel_cycles(compute_launch) == pytest.approx(
            analytic_kernel_cycles(compute_launch, VOLTA_V100)
        )

    def test_deterministic(self, compute_launch):
        a = SiliconExecutor(VOLTA_V100).kernel_cycles(compute_launch)
        b = SiliconExecutor(VOLTA_V100).kernel_cycles(compute_launch)
        assert a == b

    def test_memoization_keyed_on_spec_and_grid(
        self, volta_silicon, compute_spec
    ):
        launch_a = KernelLaunch(spec=compute_spec, grid_blocks=100, launch_id=0)
        launch_b = KernelLaunch(spec=compute_spec, grid_blocks=100, launch_id=99)
        launch_c = KernelLaunch(spec=compute_spec, grid_blocks=200, launch_id=1)
        assert volta_silicon.kernel_cycles(launch_a) == volta_silicon.kernel_cycles(
            launch_b
        )
        assert volta_silicon.kernel_cycles(launch_c) != volta_silicon.kernel_cycles(
            launch_a
        )

    def test_app_run_sums_kernels_and_overheads(
        self, volta_silicon, compute_launch, memory_launch
    ):
        launches = [compute_launch, memory_launch]
        result = volta_silicon.run("two_kernels", launches)
        expected = sum(
            volta_silicon.kernel_cycles(launch) for launch in launches
        ) + 2 * KERNEL_LAUNCH_OVERHEAD
        assert result.total_cycles == pytest.approx(expected)
        assert result.method == "silicon"
        assert result.simulated_cycles == 0.0

    def test_records_optional(self, volta_silicon, compute_launch):
        without = volta_silicon.run("app", [compute_launch])
        with_records = volta_silicon.run(
            "app", [compute_launch], keep_records=True
        )
        assert without.kernel_records == ()
        assert len(with_records.kernel_records) == 1
        assert with_records.kernel_records[0].name == compute_launch.spec.name

    def test_dram_bytes_scale_with_grid(self, volta_silicon, memory_spec):
        small = KernelLaunch(spec=memory_spec, grid_blocks=10, launch_id=0)
        large = KernelLaunch(spec=memory_spec, grid_blocks=100, launch_id=1)
        assert volta_silicon.kernel_dram_bytes(large) == pytest.approx(
            10.0 * volta_silicon.kernel_dram_bytes(small)
        )

    def test_turing_slower_than_volta(self, compute_launch):
        volta = SiliconExecutor(VOLTA_V100).kernel_cycles(compute_launch)
        turing = SiliconExecutor(TURING_RTX2060).kernel_cycles(compute_launch)
        assert turing > volta

    def test_silicon_seconds_positive(self, volta_silicon, compute_launch):
        result = volta_silicon.run("app", [compute_launch])
        assert result.silicon_seconds > 0
